"""repro — a pure-Python reproduction of the Data-Juicer LLM data-processing system.

The public API mirrors the original system's main entry points:

* :class:`repro.NestedDataset` — the columnar dataset substrate;
* :class:`repro.Executor` and :func:`repro.load_config` — run a *data recipe*
  (a configurable operator pipeline) end to end;
* :data:`repro.OPERATORS` — the registry of 50+ built-in operators
  (Formatters, Mappers, Filters, Deduplicators, Selectors);
* :class:`repro.Analyzer` — compute and summarise per-sample statistics;
* the :mod:`repro.tools` sub-packages — quality classifiers, samplers,
  hyper-parameter optimization and the proxy LLM training/evaluation harness;
* :mod:`repro.synth` — synthetic corpora standing in for the paper's datasets.
"""

from repro import ops  # noqa: F401 - operator registration side effects
from repro import formats  # noqa: F401 - formatter registration side effects
from repro.analysis.analyzer import Analyzer
from repro.api import Pipeline, validate_recipe
from repro.core import (
    CacheManager,
    CheckpointManager,
    ExecutionPlan,
    Executor,
    Exporter,
    Fields,
    HashKeys,
    NestedDataset,
    OPERATORS,
    OpSchema,
    ParamSpec,
    RecipeConfig,
    ResourceBudget,
    ResourceMonitor,
    StatsKeys,
    Tracer,
    concatenate_datasets,
    dataset_token_count,
    fuse_operators,
    load_config,
    save_config,
    schema_for,
)
from repro.formats import load_dataset, mix_datasets
from repro.ops import load_ops

__version__ = "1.0.0"

__all__ = [
    "Analyzer",
    "CacheManager",
    "CheckpointManager",
    "ExecutionPlan",
    "Executor",
    "Exporter",
    "Fields",
    "HashKeys",
    "NestedDataset",
    "OPERATORS",
    "OpSchema",
    "ParamSpec",
    "Pipeline",
    "RecipeConfig",
    "ResourceBudget",
    "ResourceMonitor",
    "StatsKeys",
    "Tracer",
    "__version__",
    "concatenate_datasets",
    "dataset_token_count",
    "fuse_operators",
    "load_config",
    "load_dataset",
    "load_ops",
    "mix_datasets",
    "save_config",
    "schema_for",
    "validate_recipe",
]
