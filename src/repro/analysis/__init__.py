"""Analysis tools: overall stats, histograms, diversity analysis and the Analyzer."""

from repro.analysis.analyzer import Analyzer, DataProbe, DEFAULT_ANALYSIS_PROCESS
from repro.analysis.diversity_analysis import DiversityAnalysis, DiversityReport, extract_verb_noun
from repro.analysis.histogram import BoxPlot, Histogram, build_box_plot, build_histogram
from repro.analysis.overall_analysis import ColumnSummary, OverallAnalysis, collect_stats_values

__all__ = [
    "Analyzer",
    "BoxPlot",
    "ColumnSummary",
    "DEFAULT_ANALYSIS_PROCESS",
    "DataProbe",
    "DiversityAnalysis",
    "DiversityReport",
    "Histogram",
    "OverallAnalysis",
    "build_box_plot",
    "build_histogram",
    "collect_stats_values",
    "extract_verb_noun",
]
