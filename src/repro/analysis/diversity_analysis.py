"""Linguistic diversity analysis: verb–noun pair extraction (the pie plots of Fig. 5).

The original system runs a dependency parser to extract the root verb and its
direct noun object from instruction texts.  This stand-in uses a heuristic
part-of-speech tagger: the first verb-like token of a text is taken as the root
verb and the first following noun-like token as its object.  The aggregated
(verb, noun) distribution is what the diversity-aware sampler and the
fine-tuning recipes consume.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.dataset import NestedDataset
from repro.core.sample import get_field
from repro.ops.common.helper_funcs import get_words_from_text, words_refinement
from repro.ops.common.stopwords import STOPWORDS_EN
from repro.ops.filters.text_action_filter import looks_like_verb


def extract_verb_noun(text: str) -> tuple[str | None, str | None]:
    """Return the first (verb, following-noun) pair found in the text."""
    words = words_refinement(get_words_from_text(text, lowercase=True))
    verb = None
    verb_index = -1
    for index, word in enumerate(words):
        if looks_like_verb(word) and word not in STOPWORDS_EN:
            verb = word
            verb_index = index
            break
    if verb is None:
        return None, None
    for word in words[verb_index + 1:]:
        if word not in STOPWORDS_EN and not looks_like_verb(word) and word.isalpha():
            return verb, word
    return verb, None


@dataclass
class DiversityReport:
    """Aggregated verb–noun diversity statistics of a dataset."""

    verb_counts: Counter = field(default_factory=Counter)
    verb_noun_counts: Counter = field(default_factory=Counter)
    num_samples: int = 0
    num_with_verb: int = 0

    @property
    def distinct_verbs(self) -> int:
        """Number of distinct root verbs observed."""
        return len(self.verb_counts)

    @property
    def distinct_pairs(self) -> int:
        """Number of distinct (verb, noun) pairs observed."""
        return len(self.verb_noun_counts)

    def diversity_score(self) -> float:
        """Simple diversity score in [0, 1]: distinct pairs per analysable sample."""
        if self.num_with_verb == 0:
            return 0.0
        return min(1.0, self.distinct_pairs / self.num_with_verb)

    def top(self, num_verbs: int = 20, nouns_per_verb: int = 4) -> dict[str, list[tuple[str, int]]]:
        """Top verbs with their top nouns — the structure behind the paper's pie plots."""
        result: dict[str, list[tuple[str, int]]] = {}
        for verb, _ in self.verb_counts.most_common(num_verbs):
            nouns = Counter()
            for (pair_verb, noun), count in self.verb_noun_counts.items():
                if pair_verb == verb and noun:
                    nouns[noun] += count
            result[verb] = nouns.most_common(nouns_per_verb)
        return result


class DiversityAnalysis:
    """Compute a :class:`DiversityReport` over a dataset's text field."""

    def __init__(self, text_key: str = "text"):
        self.text_key = text_key

    def observe(self, report: DiversityReport, row: dict) -> None:
        """Fold one sample into an existing report (streaming-friendly).

        Only the aggregated verb/noun counters grow — the text itself is
        never retained, so a streaming analysis stays bounded by the
        vocabulary, not the corpus.
        """
        report.num_samples += 1
        text = get_field(row, self.text_key, "")
        verb, noun = extract_verb_noun(text if isinstance(text, str) else "")
        if verb is None:
            return
        report.num_with_verb += 1
        report.verb_counts[verb] += 1
        report.verb_noun_counts[(verb, noun)] += 1

    def analyze(self, dataset: NestedDataset) -> DiversityReport:
        """Extract verb–noun pairs from every sample and aggregate them."""
        return self.analyze_records(dataset)

    def analyze_records(self, records) -> DiversityReport:
        """Aggregate a lazy record stream into a :class:`DiversityReport`."""
        report = DiversityReport()
        for row in records:
            self.observe(report, row)
        return report
