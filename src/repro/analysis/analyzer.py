"""The Analyzer: run stats-producing filters in analysis mode and summarise results.

This is the ``analyzer`` tool of Sec. 4.2: it applies a set of Filter operators
in *compute-stats-only* mode (no sample is removed), then produces an overall
summary, per-column histograms/box plots and a diversity report — the "data
probe" that drives the feedback loop of Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.analysis.diversity_analysis import DiversityAnalysis, DiversityReport
from repro.analysis.histogram import BoxPlot, Histogram, build_box_plot, build_histogram
from repro.analysis.overall_analysis import ColumnSummary, OverallAnalysis, collect_stats_values
from repro.core.base_op import Filter
from repro.core.dataset import NestedDataset
from repro.ops import load_ops

#: Filters whose statistics form the default 13-dimension data probe.
DEFAULT_ANALYSIS_PROCESS: list = [
    {"alphanumeric_filter": {}},
    {"average_line_length_filter": {}},
    {"character_repetition_filter": {}},
    {"flagged_words_filter": {}},
    {"language_id_score_filter": {}},
    {"maximum_line_length_filter": {}},
    {"perplexity_filter": {}},
    {"special_characters_filter": {}},
    {"stopwords_filter": {}},
    {"text_length_filter": {}},
    {"token_num_filter": {}},
    {"words_num_filter": {}},
    {"word_repetition_filter": {}},
]


@dataclass
class DataProbe:
    """The full output of one analysis pass over a dataset."""

    num_samples: int
    summaries: dict[str, ColumnSummary]
    histograms: dict[str, Histogram] = field(default_factory=dict)
    box_plots: dict[str, BoxPlot] = field(default_factory=dict)
    diversity: DiversityReport | None = None

    def render(self) -> str:
        """Human-readable multi-line rendering of the probe."""
        lines = [f"Data probe over {self.num_samples} samples"]
        for name in sorted(self.summaries):
            summary = self.summaries[name]
            if summary.kind == "numeric":
                lines.append(
                    f"  {name}: mean={summary.mean:.4f} std={summary.std:.4f} "
                    f"min={summary.minimum:.4f} max={summary.maximum:.4f}"
                )
            else:
                top = ", ".join(f"{k}={v}" for k, v in list(summary.value_counts.items())[:5])
                lines.append(f"  {name}: {top}")
        if self.diversity is not None:
            lines.append(
                f"  diversity: {self.diversity.distinct_verbs} verbs, "
                f"{self.diversity.distinct_pairs} verb-noun pairs, "
                f"score={self.diversity.diversity_score():.3f}"
            )
        return "\n".join(lines)


class Analyzer:
    """Apply stats-producing filters without dropping samples, then summarise.

    Parameters
    ----------
    analysis_process:
        Recipe-style process list of Filter operators; defaults to the
        13-dimension probe used throughout the paper's examples.
    with_diversity:
        Whether to additionally compute the verb–noun diversity report.
    """

    def __init__(
        self,
        analysis_process: Sequence | None = None,
        num_bins: int = 20,
        with_diversity: bool = True,
        text_key: str = "text",
    ):
        process = list(analysis_process) if analysis_process is not None else list(DEFAULT_ANALYSIS_PROCESS)
        self.filters = [op for op in load_ops(process) if isinstance(op, Filter)]
        self.num_bins = num_bins
        self.with_diversity = with_diversity
        self.text_key = text_key

    def compute_stats(self, dataset: NestedDataset) -> NestedDataset:
        """Return a copy of the dataset with every probe statistic filled in."""

        def add_all_stats(sample: dict) -> dict:
            sample = dict(sample)
            for op in self.filters:
                sample = op.compute_stats(sample)
            return sample

        return dataset.map(add_all_stats)

    def analyze(self, dataset: NestedDataset) -> DataProbe:
        """Compute stats and return the full :class:`DataProbe`."""
        with_stats = self.compute_stats(dataset)
        summaries = OverallAnalysis(num_bins=self.num_bins).analyze(with_stats)
        histograms: dict[str, Histogram] = {}
        box_plots: dict[str, BoxPlot] = {}
        for key, values in collect_stats_values(with_stats).items():
            numeric = [
                float(value)
                for value in values
                if isinstance(value, (int, float)) and not isinstance(value, bool)
            ]
            if numeric:
                histograms[key] = build_histogram(key, numeric, num_bins=self.num_bins)
                box_plots[key] = build_box_plot(key, numeric)
        diversity = (
            DiversityAnalysis(text_key=self.text_key).analyze(dataset)
            if self.with_diversity
            else None
        )
        return DataProbe(
            num_samples=len(dataset),
            summaries=summaries,
            histograms=histograms,
            box_plots=box_plots,
            diversity=diversity,
        )
