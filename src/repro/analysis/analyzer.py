"""The Analyzer: run stats-producing filters in analysis mode and summarise results.

This is the ``analyzer`` tool of Sec. 4.2: it applies a set of Filter operators
in *compute-stats-only* mode (no sample is removed), then produces an overall
summary, per-column histograms/box plots and a diversity report — the "data
probe" that drives the feedback loop of Figure 5.

Two consumption paths produce identical probes:

* :meth:`Analyzer.analyze` takes a materialised :class:`NestedDataset`;
* :meth:`Analyzer.analyze_stream` folds a lazy record stream sample by
  sample, retaining only the skinny stats values and aggregated diversity
  counters — never the text — so the output of a streaming run
  (:meth:`Analyzer.analyze_run` walks a :class:`repro.core.report.RunReport`'s
  export shards) can be analyzed with bounded memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.analysis.diversity_analysis import DiversityAnalysis, DiversityReport
from repro.analysis.histogram import BoxPlot, Histogram, build_box_plot, build_histogram
from repro.analysis.overall_analysis import ColumnSummary, OverallAnalysis, collect_stats_values
from repro.core.base_op import Filter
from repro.core.dataset import NestedDataset
from repro.core.sample import Fields
from repro.ops import load_ops

#: Filters whose statistics form the default 13-dimension data probe.
DEFAULT_ANALYSIS_PROCESS: list = [
    {"alphanumeric_filter": {}},
    {"average_line_length_filter": {}},
    {"character_repetition_filter": {}},
    {"flagged_words_filter": {}},
    {"language_id_score_filter": {}},
    {"maximum_line_length_filter": {}},
    {"perplexity_filter": {}},
    {"special_characters_filter": {}},
    {"stopwords_filter": {}},
    {"text_length_filter": {}},
    {"token_num_filter": {}},
    {"words_num_filter": {}},
    {"word_repetition_filter": {}},
]


@dataclass
class DataProbe:
    """The full output of one analysis pass over a dataset."""

    num_samples: int
    summaries: dict[str, ColumnSummary]
    histograms: dict[str, Histogram] = field(default_factory=dict)
    box_plots: dict[str, BoxPlot] = field(default_factory=dict)
    diversity: DiversityReport | None = None

    def render(self) -> str:
        """Human-readable multi-line rendering of the probe."""
        lines = [f"Data probe over {self.num_samples} samples"]
        for name in sorted(self.summaries):
            summary = self.summaries[name]
            if summary.kind == "numeric":
                lines.append(
                    f"  {name}: mean={summary.mean:.4f} std={summary.std:.4f} "
                    f"min={summary.minimum:.4f} max={summary.maximum:.4f}"
                )
            else:
                top = ", ".join(f"{k}={v}" for k, v in list(summary.value_counts.items())[:5])
                lines.append(f"  {name}: {top}")
        if self.diversity is not None:
            lines.append(
                f"  diversity: {self.diversity.distinct_verbs} verbs, "
                f"{self.diversity.distinct_pairs} verb-noun pairs, "
                f"score={self.diversity.diversity_score():.3f}"
            )
        return "\n".join(lines)


class Analyzer:
    """Apply stats-producing filters without dropping samples, then summarise.

    Parameters
    ----------
    analysis_process:
        Recipe-style process list of Filter operators; defaults to the
        13-dimension probe used throughout the paper's examples.
    with_diversity:
        Whether to additionally compute the verb–noun diversity report.
    """

    def __init__(
        self,
        analysis_process: Sequence | None = None,
        num_bins: int = 20,
        with_diversity: bool = True,
        text_key: str = "text",
    ):
        process = list(analysis_process) if analysis_process is not None else list(DEFAULT_ANALYSIS_PROCESS)
        self.filters = [op for op in load_ops(process) if isinstance(op, Filter)]
        self.num_bins = num_bins
        self.with_diversity = with_diversity
        self.text_key = text_key

    def compute_stats(self, dataset: NestedDataset) -> NestedDataset:
        """Return a copy of the dataset with every probe statistic filled in."""

        def add_all_stats(sample: dict) -> dict:
            sample = dict(sample)
            for op in self.filters:
                sample = op.compute_stats(sample)
            return sample

        return dataset.map(add_all_stats)

    def _probe_from_values(
        self,
        num_samples: int,
        values: dict[str, list],
        diversity: DiversityReport | None,
    ) -> DataProbe:
        """Assemble the probe from pre-collected stats values (shared tail)."""
        summaries = OverallAnalysis(num_bins=self.num_bins).analyze_values(values)
        histograms: dict[str, Histogram] = {}
        box_plots: dict[str, BoxPlot] = {}
        for key, raw_values in values.items():
            numeric = [
                float(value)
                for value in raw_values
                if isinstance(value, (int, float)) and not isinstance(value, bool)
            ]
            if numeric:
                histograms[key] = build_histogram(key, numeric, num_bins=self.num_bins)
                box_plots[key] = build_box_plot(key, numeric)
        return DataProbe(
            num_samples=num_samples,
            summaries=summaries,
            histograms=histograms,
            box_plots=box_plots,
            diversity=diversity,
        )

    def analyze(self, dataset: NestedDataset) -> DataProbe:
        """Compute stats and return the full :class:`DataProbe`."""
        with_stats = self.compute_stats(dataset)
        diversity = (
            DiversityAnalysis(text_key=self.text_key).analyze(dataset)
            if self.with_diversity
            else None
        )
        return self._probe_from_values(
            len(dataset), collect_stats_values(with_stats), diversity
        )

    def analyze_stream(self, records: Iterable[dict]) -> DataProbe:
        """Analyze a lazy record stream with bounded memory.

        Each record's probe statistics are computed one sample at a time and
        only the per-key stats *values* (numbers, category labels) plus the
        aggregated diversity counters are retained — the text payload is
        dropped immediately, so peak memory scales with the number of stats
        values, not with corpus bytes.  The resulting probe is identical to
        :meth:`analyze` over the materialised dataset.
        """
        values: dict[str, list] = {}
        diversity_analysis = DiversityAnalysis(text_key=self.text_key)
        diversity = DiversityReport() if self.with_diversity else None
        num_samples = 0
        for record in records:
            num_samples += 1
            sample = dict(record)
            for op in self.filters:
                sample = op.compute_stats(sample)
            for key, value in (sample.get(Fields.stats) or {}).items():
                values.setdefault(key, []).append(value)
            if diversity is not None:
                diversity_analysis.observe(diversity, record)
        return self._probe_from_values(num_samples, values, diversity)

    def analyze_run(self, report: Mapping | str | Path) -> DataProbe:
        """Analyze the exported output of a finished run, out-of-core.

        ``report`` is a :class:`repro.core.report.RunReport` (or its dict /
        saved-JSON form, or a ``work_dir`` containing ``report.json``).  The
        run's export files — sharded or monolithic, compressed or not — are
        streamed back through :meth:`analyze_stream`, so even a streaming
        run's larger-than-memory output gets its data probe.
        """
        from repro.core.report import RunReport
        from repro.formats.load import load_formatter

        if isinstance(report, (str, Path)):
            report = RunReport.load(report)
        export_paths = list(report.get("export_paths") or [])
        if not export_paths:
            raise ValueError(
                "run report has no export_paths; run with an export_path "
                "configured before analyzing its output"
            )

        def txt_records(path: str) -> Iterable[dict]:
            # a .txt *export* is one document per line (the Exporter's txt
            # format), unlike raw .txt inputs where one file is one document
            # — TextFormatter would silently collapse the corpus to 1 sample
            from repro.formats.sharded import open_shard

            with open_shard(Path(path)) as handle:
                for line in handle:
                    yield {Fields.text: line.rstrip("\n"), Fields.stats: {}}

        def exported_records() -> Iterable[dict]:
            for path in export_paths:
                suffixes = [s for s in Path(path).suffixes if s != ".gz"]
                if suffixes and suffixes[-1] == ".txt":
                    yield from txt_records(path)
                else:
                    yield from load_formatter(path, text_keys=(self.text_key,)).iter_records()

        return self.analyze_stream(exported_records())
