"""Overall (dataset-level) statistical summary of per-sample stats columns.

Reproduces the ``analyzer``'s summary table (Sec. 4.2): for every numeric
statistic produced by Filter operators, report count, mean, standard deviation,
min/max, quantiles and entropy; categorical statistics get value counts.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.core.dataset import NestedDataset
from repro.core.sample import Fields


@dataclass
class ColumnSummary:
    """Summary of one statistic across the dataset."""

    name: str
    kind: str  # "numeric" or "categorical"
    count: int
    mean: float | None = None
    std: float | None = None
    minimum: float | None = None
    maximum: float | None = None
    quantiles: dict[str, float] = field(default_factory=dict)
    entropy: float | None = None
    value_counts: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """Plain-dict view (rendered by the text visualizer and benchmarks)."""
        payload = {"name": self.name, "kind": self.kind, "count": self.count}
        if self.kind == "numeric":
            payload.update(
                {
                    "mean": self.mean,
                    "std": self.std,
                    "min": self.minimum,
                    "max": self.maximum,
                    "quantiles": self.quantiles,
                    "entropy": self.entropy,
                }
            )
        else:
            payload["value_counts"] = dict(self.value_counts)
            payload["entropy"] = self.entropy
        return payload


def _entropy_from_counts(counts: Counter) -> float:
    total = sum(counts.values())
    if total == 0:
        return 0.0
    entropy = 0.0
    for count in counts.values():
        probability = count / total
        entropy -= probability * math.log2(probability)
    return entropy


def collect_stats_values(dataset: NestedDataset) -> dict[str, list]:
    """Gather every stats key present in the dataset with its list of values."""
    values: dict[str, list] = {}
    for row in dataset:
        stats = row.get(Fields.stats) or {}
        for key, value in stats.items():
            values.setdefault(key, []).append(value)
    return values


class OverallAnalysis:
    """Compute :class:`ColumnSummary` objects for every stats key of a dataset."""

    QUANTILES = (0.05, 0.25, 0.5, 0.75, 0.95)

    def __init__(self, num_bins: int = 20):
        self.num_bins = num_bins

    def analyze(self, dataset: NestedDataset) -> dict[str, ColumnSummary]:
        """Return a mapping of stats key -> summary."""
        return self.analyze_values(collect_stats_values(dataset))

    def analyze_values(self, values: dict[str, list]) -> dict[str, ColumnSummary]:
        """Summarise pre-collected stats values (streaming-friendly entry).

        ``values`` maps each stats key to its list of per-sample values —
        the skinny accumulation a streaming analysis holds instead of the
        corpus itself.
        """
        summaries: dict[str, ColumnSummary] = {}
        for key, raw_values in values.items():
            numeric = [
                float(value)
                for value in raw_values
                if isinstance(value, (int, float)) and not isinstance(value, bool)
            ]
            if numeric and len(numeric) >= len(raw_values) / 2:
                array = np.asarray(numeric, dtype=float)
                histogram, _ = np.histogram(array, bins=self.num_bins)
                summaries[key] = ColumnSummary(
                    name=key,
                    kind="numeric",
                    count=len(numeric),
                    mean=float(array.mean()),
                    std=float(array.std()),
                    minimum=float(array.min()),
                    maximum=float(array.max()),
                    quantiles={
                        f"p{int(q * 100)}": float(np.quantile(array, q)) for q in self.QUANTILES
                    },
                    entropy=_entropy_from_counts(Counter(histogram.tolist())),
                )
            else:
                counts = Counter(str(value) for value in raw_values)
                summaries[key] = ColumnSummary(
                    name=key,
                    kind="categorical",
                    count=len(raw_values),
                    value_counts=dict(counts.most_common(20)),
                    entropy=_entropy_from_counts(counts),
                )
        return summaries
