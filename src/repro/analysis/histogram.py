"""Text-based histograms and box plots for stats distributions.

The original system renders interactive histograms/box plots; this module
produces the same information as data structures plus a terminal-friendly
ASCII rendering, which is what the examples and the feedback-loop demo print.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class Histogram:
    """Binned distribution of one numeric statistic."""

    name: str
    edges: list[float]
    counts: list[int]

    @property
    def total(self) -> int:
        """Total number of observations."""
        return int(sum(self.counts))

    def render(self, width: int = 40) -> str:
        """Return an ASCII rendering, one bar per bin."""
        if not self.counts:
            return f"{self.name}: (empty)"
        peak = max(self.counts) or 1
        lines = [f"Histogram of {self.name} (n={self.total})"]
        for index, count in enumerate(self.counts):
            bar = "#" * int(round(width * count / peak))
            lines.append(
                f"  [{self.edges[index]:>10.3f}, {self.edges[index + 1]:>10.3f}) "
                f"{bar} {count}"
            )
        return "\n".join(lines)


@dataclass
class BoxPlot:
    """Five-number summary of one numeric statistic."""

    name: str
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float

    def render(self) -> str:
        """Return a one-line textual box-plot summary."""
        return (
            f"{self.name}: min={self.minimum:.3f} q1={self.q1:.3f} "
            f"median={self.median:.3f} q3={self.q3:.3f} max={self.maximum:.3f}"
        )


def build_histogram(name: str, values: list[float], num_bins: int = 20) -> Histogram:
    """Bin a list of numeric values into a :class:`Histogram`."""
    if not values:
        return Histogram(name=name, edges=[0.0, 1.0], counts=[0])
    array = np.asarray(values, dtype=float)
    counts, edges = np.histogram(array, bins=num_bins)
    return Histogram(name=name, edges=[float(edge) for edge in edges], counts=[int(c) for c in counts])


def build_box_plot(name: str, values: list[float]) -> BoxPlot:
    """Compute the five-number summary of a list of numeric values."""
    if not values:
        return BoxPlot(name, 0.0, 0.0, 0.0, 0.0, 0.0)
    array = np.asarray(values, dtype=float)
    return BoxPlot(
        name=name,
        minimum=float(array.min()),
        q1=float(np.quantile(array, 0.25)),
        median=float(np.quantile(array, 0.5)),
        q3=float(np.quantile(array, 0.75)),
        maximum=float(array.max()),
    )
