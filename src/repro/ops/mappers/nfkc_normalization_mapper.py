"""Mapper that applies NFKC unicode normalization (full-width → half-width etc.)."""

from __future__ import annotations

import unicodedata

from repro.core.base_op import Mapper
from repro.core.registry import OPERATORS


@OPERATORS.register_module("nfkc_normalization_mapper")
class NfkcNormalizationMapper(Mapper):
    """Normalize text to NFKC, collapsing compatibility characters.

    This plays the role of the Chinese/Japanese full-width conversion mappers
    of the original system: full-width Latin letters and digits become their
    ASCII counterparts.
    """

    def __init__(self, text_key: str = "text", **kwargs):
        super().__init__(text_key=text_key, **kwargs)

    def process(self, sample: dict) -> dict:
        return self.set_text(sample, unicodedata.normalize("NFKC", self.get_text(sample)))
