"""Mapper that normalizes exotic whitespace characters to plain spaces."""

from __future__ import annotations

from repro.core.base_op import Mapper
from repro.core.registry import OPERATORS
from repro.ops.common.special_characters import VARIOUS_WHITESPACES


@OPERATORS.register_module("whitespace_normalization_mapper")
class WhitespaceNormalizationMapper(Mapper):
    """Replace all non-standard whitespace characters with an ASCII space.

    Web-crawled text frequently contains non-breaking spaces, zero-width
    spaces and ideographic spaces that confuse tokenizers; this mapper maps
    all of them to ``' '`` and trims the sample edges.
    """

    def __init__(self, text_key: str = "text", **kwargs):
        super().__init__(text_key=text_key, **kwargs)

    def process(self, sample: dict) -> dict:
        text = self.get_text(sample)
        normalized = "".join(
            " " if char in VARIOUS_WHITESPACES and char != "\n" else char for char in text
        )
        return self.set_text(sample, normalized.strip())
