"""Mapper that normalizes exotic whitespace characters to plain spaces."""

from __future__ import annotations

from repro.core.base_op import Mapper
from repro.core.batch import get_text_column, set_text_column
from repro.core.registry import OPERATORS
from repro.ops.common.special_characters import VARIOUS_WHITESPACES

#: single-pass translation table equivalent to the per-character replacement
_WHITESPACE_TABLE = str.maketrans(
    {char: " " for char in VARIOUS_WHITESPACES if char != "\n"}
)


@OPERATORS.register_module("whitespace_normalization_mapper")
class WhitespaceNormalizationMapper(Mapper):
    """Replace all non-standard whitespace characters with an ASCII space.

    Web-crawled text frequently contains non-breaking spaces, zero-width
    spaces and ideographic spaces that confuse tokenizers; this mapper maps
    all of them to ``' '`` and trims the sample edges.
    """

    def __init__(self, text_key: str = "text", **kwargs):
        super().__init__(text_key=text_key, **kwargs)

    def process(self, sample: dict) -> dict:
        text = self.get_text(sample)
        return self.set_text(sample, text.translate(_WHITESPACE_TABLE).strip())

    def process_batched(self, samples: dict) -> dict:
        texts = get_text_column(samples, self.text_key)
        if texts is None:
            return super().process_batched(samples)
        table = _WHITESPACE_TABLE
        return set_text_column(
            samples, self.text_key, [text.translate(table).strip() for text in texts]
        )
