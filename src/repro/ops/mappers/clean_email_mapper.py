"""Mapper that removes (or replaces) e-mail addresses for anonymization."""

from __future__ import annotations

import re

from repro.core.base_op import Mapper
from repro.core.registry import OPERATORS

EMAIL_PATTERN = re.compile(r"[A-Za-z0-9._%+-]+@[A-Za-z0-9.-]+\.[A-Za-z]{2,}")


@OPERATORS.register_module("clean_email_mapper")
class CleanEmailMapper(Mapper):
    """Remove e-mail addresses from the text, optionally replacing them with a token."""

    PARAM_SPECS = {
        "repl": {"doc": "replacement string for each removed address"},
    }

    def __init__(self, repl: str = "", text_key: str = "text", **kwargs):
        super().__init__(text_key=text_key, **kwargs)
        self.repl = repl

    def process(self, sample: dict) -> dict:
        text = self.get_text(sample)
        return self.set_text(sample, EMAIL_PATTERN.sub(self.repl, text))
