"""Mapper that re-joins text with one sentence per line (sentence splitting)."""

from __future__ import annotations

from repro.core.base_op import Mapper
from repro.core.registry import OPERATORS
from repro.ops.common.helper_funcs import split_sentences


@OPERATORS.register_module("sentence_split_mapper")
class SentenceSplitMapper(Mapper):
    """Split text into sentences and put each sentence on its own line."""

    def __init__(self, text_key: str = "text", **kwargs):
        super().__init__(text_key=text_key, **kwargs)

    def process(self, sample: dict) -> dict:
        text = self.get_text(sample)
        sentences = split_sentences(text)
        return self.set_text(sample, "\n".join(sentences))
