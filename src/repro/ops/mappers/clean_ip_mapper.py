"""Mapper that removes IPv4/IPv6 addresses for anonymization."""

from __future__ import annotations

import re

from repro.core.base_op import Mapper
from repro.core.registry import OPERATORS

IPV4_PATTERN = re.compile(r"\b(?:(?:25[0-5]|2[0-4]\d|[01]?\d?\d)\.){3}(?:25[0-5]|2[0-4]\d|[01]?\d?\d)\b")
IPV6_PATTERN = re.compile(r"\b(?:[A-Fa-f0-9]{1,4}:){2,7}[A-Fa-f0-9]{1,4}\b")


@OPERATORS.register_module("clean_ip_mapper")
class CleanIpMapper(Mapper):
    """Remove IPv4 and IPv6 addresses from the text, optionally replacing them."""

    PARAM_SPECS = {
        "repl": {"doc": "replacement string for each removed address"},
    }

    def __init__(self, repl: str = "", text_key: str = "text", **kwargs):
        super().__init__(text_key=text_key, **kwargs)
        self.repl = repl

    def process(self, sample: dict) -> dict:
        text = self.get_text(sample)
        text = IPV4_PATTERN.sub(self.repl, text)
        text = IPV6_PATTERN.sub(self.repl, text)
        return self.set_text(sample, text)
