"""Mapper that removes consecutive (or global) repeated sentences."""

from __future__ import annotations

from repro.core.base_op import Mapper
from repro.core.registry import OPERATORS
from repro.ops.common.helper_funcs import split_sentences


@OPERATORS.register_module("remove_repeat_sentences_mapper")
class RemoveRepeatSentencesMapper(Mapper):
    """Keep only the first occurrence of each repeated sentence.

    ``lowercase`` controls whether comparison is case-insensitive and
    ``min_repeat_sentence_length`` skips short sentences (headings, list
    items) that legitimately repeat.
    """

    PARAM_SPECS = {
        "lowercase": {"doc": "compare sentences case-insensitively"},
        "min_repeat_sentence_length": {
            "min_value": 0,
            "doc": "sentences with fewer words than this are always kept",
        },
    }

    def __init__(
        self,
        lowercase: bool = True,
        min_repeat_sentence_length: int = 2,
        text_key: str = "text",
        **kwargs,
    ):
        super().__init__(text_key=text_key, **kwargs)
        self.lowercase = lowercase
        self.min_repeat_sentence_length = min_repeat_sentence_length

    def process(self, sample: dict) -> dict:
        text = self.get_text(sample)
        sentences = split_sentences(text)
        seen: set[str] = set()
        kept: list[str] = []
        for sentence in sentences:
            key = sentence.lower() if self.lowercase else sentence
            words = sentence.split()
            if len(words) < self.min_repeat_sentence_length:
                kept.append(sentence)
                continue
            if key in seen:
                continue
            seen.add(key)
            kept.append(sentence)
        return self.set_text(sample, " ".join(kept))
