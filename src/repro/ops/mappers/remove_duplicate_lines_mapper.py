"""Mapper that removes duplicated lines inside a single document."""

from __future__ import annotations

from repro.core.base_op import Mapper
from repro.core.registry import OPERATORS


@OPERATORS.register_module("remove_duplicate_lines_mapper")
class RemoveDuplicateLinesMapper(Mapper):
    """Keep only the first occurrence of each non-trivial line.

    Lines shorter than ``min_line_length`` characters (after stripping) are
    always kept — short lines such as list bullets repeat legitimately.
    """

    PARAM_SPECS = {
        "min_line_length": {"min_value": 0, "doc": "lines shorter than this are always kept"},
        "lowercase": {"doc": "compare lines case-insensitively"},
    }

    def __init__(self, min_line_length: int = 10, lowercase: bool = False, text_key: str = "text", **kwargs):
        super().__init__(text_key=text_key, **kwargs)
        self.min_line_length = min_line_length
        self.lowercase = lowercase

    def process(self, sample: dict) -> dict:
        text = self.get_text(sample)
        seen: set[str] = set()
        kept: list[str] = []
        for line in text.split("\n"):
            stripped = line.strip()
            if len(stripped) < self.min_line_length:
                kept.append(line)
                continue
            key = stripped.lower() if self.lowercase else stripped
            if key in seen:
                continue
            seen.add(key)
            kept.append(line)
        return self.set_text(sample, "\n".join(kept))
