"""Mapper that lowercases the whole text field."""

from __future__ import annotations

from repro.core.base_op import Mapper
from repro.core.batch import get_text_column, set_text_column
from repro.core.registry import OPERATORS


@OPERATORS.register_module("lowercase_mapper")
class LowercaseMapper(Mapper):
    """Convert the text to lowercase (useful before hash-based deduplication)."""

    def __init__(self, text_key: str = "text", **kwargs):
        super().__init__(text_key=text_key, **kwargs)

    def process(self, sample: dict) -> dict:
        return self.set_text(sample, self.get_text(sample).lower())

    def process_batched(self, samples: dict) -> dict:
        texts = get_text_column(samples, self.text_key)
        if texts is None:
            return super().process_batched(samples)
        return set_text_column(samples, self.text_key, [text.lower() for text in texts])
