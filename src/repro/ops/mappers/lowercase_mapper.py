"""Mapper that lowercases the whole text field."""

from __future__ import annotations

from repro.core.base_op import Mapper
from repro.core.registry import OPERATORS


@OPERATORS.register_module("lowercase_mapper")
class LowercaseMapper(Mapper):
    """Convert the text to lowercase (useful before hash-based deduplication)."""

    def __init__(self, text_key: str = "text", **kwargs):
        super().__init__(text_key=text_key, **kwargs)

    def process(self, sample: dict) -> dict:
        return self.set_text(sample, self.get_text(sample).lower())
