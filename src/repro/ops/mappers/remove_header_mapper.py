"""Mapper that removes the preamble/header of LaTeX documents before the first section."""

from __future__ import annotations

import re

from repro.core.base_op import Mapper
from repro.core.registry import OPERATORS

SECTION_PATTERN = re.compile(
    r"\\(chapter|section|subsection|subsubsection|paragraph|begin\{document\})[\*]?\{?"
)


@OPERATORS.register_module("remove_header_mapper")
class RemoveHeaderMapper(Mapper):
    """Drop everything before the first sectioning command of a LaTeX document.

    When no sectioning command exists, ``drop_no_head`` decides whether the
    whole text is dropped (the original behaviour) or kept untouched.
    """

    PARAM_SPECS = {
        "drop_no_head": {"doc": "empty LaTeX documents that never reach a section header"},
    }

    def __init__(self, drop_no_head: bool = True, text_key: str = "text", **kwargs):
        super().__init__(text_key=text_key, **kwargs)
        self.drop_no_head = drop_no_head

    def process(self, sample: dict) -> dict:
        text = self.get_text(sample)
        match = SECTION_PATTERN.search(text)
        if match:
            return self.set_text(sample, text[match.start():])
        if self.drop_no_head and "\\documentclass" in text:
            return self.set_text(sample, "")
        return sample
