"""Mapper that normalizes unicode punctuation to ASCII equivalents."""

from __future__ import annotations

from repro.core.base_op import Mapper
from repro.core.registry import OPERATORS

PUNCTUATION_MAP = {
    "，": ",", "。": ".", "、": ",", "„": '"', "”": '"', "“": '"', "«": '"',
    "»": '"', "１": '"', "」": '"', "「": '"', "《": '"', "》": '"', "´": "'",
    "∶": ":", "：": ":", "？": "?", "！": "!", "（": "(", "）": ")", "；": ";",
    "–": "-", "—": "-", "．": ". ", "～": "~", "’": "'", "‘": "'", "′": "'",
    "…": "...", "━": "-", "〈": "<", "〉": ">", "【": "[", "】": "]", "％": "%",
    "►": "-",
}


@OPERATORS.register_module("punctuation_normalization_mapper")
class PunctuationNormalizationMapper(Mapper):
    """Map full-width / typographic punctuation marks to plain ASCII forms."""

    def __init__(self, text_key: str = "text", **kwargs):
        super().__init__(text_key=text_key, **kwargs)

    def process(self, sample: dict) -> dict:
        text = self.get_text(sample)
        normalized = "".join(PUNCTUATION_MAP.get(char, char) for char in text)
        return self.set_text(sample, normalized)
