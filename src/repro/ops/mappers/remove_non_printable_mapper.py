"""Mapper that removes non-printable control characters."""

from __future__ import annotations

import unicodedata

from repro.core.base_op import Mapper
from repro.core.registry import OPERATORS


@OPERATORS.register_module("remove_non_printable_mapper")
class RemoveNonPrintableMapper(Mapper):
    """Delete control and format characters (category C*) except newlines/tabs."""

    KEEP = {"\n", "\t", "\r"}

    def __init__(self, text_key: str = "text", **kwargs):
        super().__init__(text_key=text_key, **kwargs)

    def process(self, sample: dict) -> dict:
        text = self.get_text(sample)
        cleaned = "".join(
            char
            for char in text
            if char in self.KEEP or not unicodedata.category(char).startswith("C")
        )
        return self.set_text(sample, cleaned)
