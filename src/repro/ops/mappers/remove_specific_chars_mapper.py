"""Mapper that removes a user-specified set of unwanted characters."""

from __future__ import annotations

import re

from repro.core.base_op import Mapper
from repro.core.registry import OPERATORS

DEFAULT_CHARS = "◆●■►▼▲▴∆▻▷❖♡□"


@OPERATORS.register_module("remove_specific_chars_mapper")
class RemoveSpecificCharsMapper(Mapper):
    """Delete every occurrence of the configured characters (bullets, dingbats...)."""

    PARAM_SPECS = {
        "chars_to_remove": {"doc": "characters stripped from the text"},
    }

    def __init__(self, chars_to_remove: str = DEFAULT_CHARS, text_key: str = "text", **kwargs):
        super().__init__(text_key=text_key, **kwargs)
        self.chars_to_remove = chars_to_remove
        self._pattern = re.compile("[" + re.escape(chars_to_remove) + "]") if chars_to_remove else None

    def process(self, sample: dict) -> dict:
        if self._pattern is None:
            return sample
        text = self.get_text(sample)
        return self.set_text(sample, self._pattern.sub("", text))
