"""Mapper that removes words outside a configured length range."""

from __future__ import annotations

import sys

from repro.core.base_op import Mapper
from repro.core.registry import OPERATORS


@OPERATORS.register_module("remove_long_words_mapper")
class RemoveLongWordsMapper(Mapper):
    """Remove words whose character length is outside ``[min_len, max_len]``.

    Extremely long 'words' are usually URLs, base64 blobs or broken markup;
    removing them improves tokenizer behaviour downstream.
    """

    PARAM_SPECS = {
        "min_len": {"min_value": 0, "doc": "minimum kept word length (chars)"},
        "max_len": {"min_value": 0, "doc": "maximum kept word length (chars)"},
    }

    def __init__(
        self,
        min_len: int = 1,
        max_len: int = sys.maxsize,
        text_key: str = "text",
        **kwargs,
    ):
        super().__init__(text_key=text_key, **kwargs)
        self.min_len = min_len
        self.max_len = max_len

    def _keep(self, word: str) -> bool:
        stripped = word.strip()
        return self.min_len <= len(stripped) <= self.max_len

    def process(self, sample: dict) -> dict:
        text = self.get_text(sample)
        lines = []
        for line in text.split("\n"):
            kept = [word for word in line.split(" ") if not word or self._keep(word)]
            lines.append(" ".join(kept))
        return self.set_text(sample, "\n".join(lines))
