"""Mapper that removes copyright / license headers from code-like documents."""

from __future__ import annotations

import re

from repro.core.base_op import Mapper
from repro.core.registry import OPERATORS

BLOCK_COMMENT_PATTERN = re.compile(r"/\*.*?\*/", re.DOTALL)
COPYRIGHT_WORDS = ("copyright", "license", "licence", "all rights reserved", "(c)")


@OPERATORS.register_module("clean_copyright_mapper")
class CleanCopyrightMapper(Mapper):
    """Remove leading copyright banners found in source-code files.

    Both C-style block comments containing copyright notices and runs of
    leading ``#`` / ``//`` comment lines mentioning a license are stripped,
    mirroring the code-cleaning OP of the original system.
    """

    def __init__(self, text_key: str = "text", **kwargs):
        super().__init__(text_key=text_key, **kwargs)

    def process(self, sample: dict) -> dict:
        text = self.get_text(sample)
        match = BLOCK_COMMENT_PATTERN.search(text)
        if match and any(word in match.group(0).lower() for word in COPYRIGHT_WORDS):
            text = text[:match.start()] + text[match.end():]
        lines = text.split("\n")
        skip = 0
        for line in lines:
            stripped = line.strip()
            is_comment = stripped.startswith("#") or stripped.startswith("//")
            if is_comment and any(word in stripped.lower() for word in COPYRIGHT_WORDS):
                skip += 1
            elif is_comment and skip > 0:
                skip += 1
            else:
                break
        if skip:
            lines = lines[skip:]
        return self.set_text(sample, "\n".join(lines).lstrip("\n"))
