"""Mapper that removes comments from LaTeX documents (inline and whole-line)."""

from __future__ import annotations

import re

from repro.core.base_op import Mapper
from repro.core.registry import OPERATORS

INLINE_COMMENT_PATTERN = re.compile(r"(?<!\\)%.*$", re.MULTILINE)


@OPERATORS.register_module("remove_comments_mapper")
class RemoveCommentsMapper(Mapper):
    """Remove LaTeX ``%`` comments.

    ``inline`` removes the trailing part of lines after an unescaped ``%``;
    ``whole_line`` additionally drops lines that consist only of a comment.
    """

    PARAM_SPECS = {
        "inline": {"doc": "remove inline % comments"},
        "whole_line": {"doc": "drop lines that are entirely % comments"},
    }

    def __init__(self, inline: bool = True, whole_line: bool = True, text_key: str = "text", **kwargs):
        super().__init__(text_key=text_key, **kwargs)
        self.inline = inline
        self.whole_line = whole_line

    def process(self, sample: dict) -> dict:
        text = self.get_text(sample)
        if self.whole_line:
            lines = [line for line in text.split("\n") if not line.lstrip().startswith("%")]
            text = "\n".join(lines)
        if self.inline:
            text = INLINE_COMMENT_PATTERN.sub("", text)
        return self.set_text(sample, text)
