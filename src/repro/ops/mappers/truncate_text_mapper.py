"""Mapper that truncates text to a maximum number of words or characters."""

from __future__ import annotations

from repro.core.base_op import Mapper
from repro.core.registry import OPERATORS


@OPERATORS.register_module("truncate_text_mapper")
class TruncateTextMapper(Mapper):
    """Truncate text to ``max_words`` words and/or ``max_chars`` characters.

    Useful to bound per-sample length before tokenizer-budgeted training.
    ``None`` disables the corresponding limit.
    """

    PARAM_SPECS = {
        "max_words": {"min_value": 1, "doc": "keep at most this many words"},
        "max_chars": {"min_value": 1, "doc": "keep at most this many characters"},
    }

    def __init__(
        self,
        max_words: int | None = None,
        max_chars: int | None = None,
        text_key: str = "text",
        **kwargs,
    ):
        super().__init__(text_key=text_key, **kwargs)
        if max_words is None and max_chars is None:
            raise ValueError("at least one of max_words / max_chars must be set")
        self.max_words = max_words
        self.max_chars = max_chars

    def process(self, sample: dict) -> dict:
        text = self.get_text(sample)
        if self.max_words is not None:
            words = text.split()
            if len(words) > self.max_words:
                text = " ".join(words[:self.max_words])
        if self.max_chars is not None and len(text) > self.max_chars:
            text = text[:self.max_chars]
        return self.set_text(sample, text)
