"""Mapper that removes table-like text blocks (many-column whitespace-aligned rows)."""

from __future__ import annotations

import re

from repro.core.base_op import Mapper
from repro.core.registry import OPERATORS


@OPERATORS.register_module("remove_table_text_mapper")
class RemoveTableTextMapper(Mapper):
    """Remove runs of lines that look like tables.

    A line is 'table-like' when it contains at least ``min_col`` cell
    separators (two or more consecutive spaces, tabs, or pipe characters).
    Runs of at least two consecutive table-like lines are removed.
    """

    PARAM_SPECS = {
        "min_col": {"min_value": 1, "doc": "minimum column count of a table line"},
        "max_col": {"min_value": 1, "doc": "maximum column count of a table line"},
    }

    def __init__(self, min_col: int = 2, max_col: int = 20, text_key: str = "text", **kwargs):
        super().__init__(text_key=text_key, **kwargs)
        self.min_col = min_col
        self.max_col = max_col
        self._separator = re.compile(r"\t|\|| {2,}")

    def _is_table_line(self, line: str) -> bool:
        if not line.strip():
            return False
        columns = [cell for cell in self._separator.split(line.strip()) if cell.strip()]
        return self.min_col <= len(columns) <= self.max_col and len(columns) >= 2

    def process(self, sample: dict) -> dict:
        lines = self.get_text(sample).split("\n")
        flags = [self._is_table_line(line) for line in lines]
        kept: list[str] = []
        index = 0
        while index < len(lines):
            if flags[index]:
                run_end = index
                while run_end < len(lines) and flags[run_end]:
                    run_end += 1
                if run_end - index < 2:  # single aligned line is kept
                    kept.extend(lines[index:run_end])
                index = run_end
            else:
                kept.append(lines[index])
                index += 1
        return self.set_text(sample, "\n".join(kept))
