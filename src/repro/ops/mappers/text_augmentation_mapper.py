"""Mapper that applies light, seeded text augmentation (for fine-tuning diversity)."""

from __future__ import annotations

import random

from repro.core.base_op import Mapper
from repro.core.registry import OPERATORS


@OPERATORS.register_module("text_augmentation_mapper")
class TextAugmentationMapper(Mapper):
    """Enhance text diversity via seeded word-level perturbations.

    Supported ``aug_method`` values:

    * ``swap``   — swap adjacent word pairs with probability ``aug_ratio``;
    * ``delete`` — delete words with probability ``aug_ratio``;
    * ``duplicate`` — duplicate words with probability ``aug_ratio``.

    The augmentation is deterministic given (seed, text), so pipelines remain
    reproducible.
    """

    PARAM_SPECS = {
        "aug_method": {
            "choices": ["swap", "delete", "duplicate"],
            "doc": "word-level perturbation applied to the text",
        },
        "aug_ratio": {"min_value": 0.0, "max_value": 1.0, "doc": "per-word perturbation probability"},
        "seed": {"doc": "augmentation RNG seed (keyed with the text)"},
    }

    def __init__(
        self,
        aug_method: str = "swap",
        aug_ratio: float = 0.1,
        seed: int = 0,
        text_key: str = "text",
        **kwargs,
    ):
        super().__init__(text_key=text_key, **kwargs)
        if aug_method not in ("swap", "delete", "duplicate"):
            raise ValueError(f"unknown aug_method {aug_method!r}")
        if not 0.0 <= aug_ratio <= 1.0:
            raise ValueError("aug_ratio must be in [0, 1]")
        self.aug_method = aug_method
        self.aug_ratio = aug_ratio
        self.seed = seed

    def process(self, sample: dict) -> dict:
        text = self.get_text(sample)
        words = text.split()
        if len(words) < 2:
            return sample
        rng = random.Random(f"{self.seed}:{text}")
        if self.aug_method == "swap":
            index = 0
            while index < len(words) - 1:
                if rng.random() < self.aug_ratio:
                    words[index], words[index + 1] = words[index + 1], words[index]
                    index += 2
                else:
                    index += 1
        elif self.aug_method == "delete":
            words = [word for word in words if rng.random() >= self.aug_ratio] or words[:1]
        else:  # duplicate
            duplicated: list[str] = []
            for word in words:
                duplicated.append(word)
                if rng.random() < self.aug_ratio:
                    duplicated.append(word)
            words = duplicated
        return self.set_text(sample, " ".join(words))
