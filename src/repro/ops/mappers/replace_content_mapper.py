"""Mapper that replaces regex-matched content with a configured string."""

from __future__ import annotations

import re

from repro.core.base_op import Mapper
from repro.core.registry import OPERATORS


@OPERATORS.register_module("replace_content_mapper")
class ReplaceContentMapper(Mapper):
    """Replace every match of one or more regex patterns with ``repl``.

    This is the generic "transform specified textual elements" escape hatch
    of the mapper pool: users supply arbitrary patterns in their recipes.
    """

    PARAM_SPECS = {
        "pattern": {"doc": "regular expression(s) whose matches are replaced"},
        "repl": {"doc": "replacement string for every match"},
    }

    def __init__(self, pattern: str | list[str] = "", repl: str = "", text_key: str = "text", **kwargs):
        super().__init__(text_key=text_key, **kwargs)
        patterns = [pattern] if isinstance(pattern, str) else list(pattern)
        self.pattern = patterns
        self.repl = repl
        self._compiled = [re.compile(expression) for expression in patterns if expression]

    def process(self, sample: dict) -> dict:
        text = self.get_text(sample)
        for compiled in self._compiled:
            text = compiled.sub(self.repl, text)
        return self.set_text(sample, text)
