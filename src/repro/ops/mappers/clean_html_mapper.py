"""Mapper that strips HTML markup and decodes common entities."""

from __future__ import annotations

import html
import re

from repro.core.base_op import Mapper
from repro.core.registry import OPERATORS

SCRIPT_STYLE_PATTERN = re.compile(r"<(script|style)\b[^>]*>.*?</\1>", re.IGNORECASE | re.DOTALL)
TAG_PATTERN = re.compile(r"<[^>]+>")
BLOCK_TAG_PATTERN = re.compile(r"</?(p|div|br|li|tr|h[1-6])\b[^>]*>", re.IGNORECASE)


@OPERATORS.register_module("clean_html_mapper")
class CleanHtmlMapper(Mapper):
    """Strip HTML tags, drop script/style blocks and unescape HTML entities.

    Block-level tags are replaced by newlines so paragraph structure survives
    the markup removal.
    """

    def __init__(self, text_key: str = "text", **kwargs):
        super().__init__(text_key=text_key, **kwargs)

    def process(self, sample: dict) -> dict:
        text = self.get_text(sample)
        text = SCRIPT_STYLE_PATTERN.sub(" ", text)
        text = BLOCK_TAG_PATTERN.sub("\n", text)
        text = TAG_PATTERN.sub(" ", text)
        text = html.unescape(text)
        text = re.sub(r"[ \t]{2,}", " ", text)
        text = re.sub(r"\n{3,}", "\n\n", text)
        return self.set_text(sample, text.strip())
