"""Mapper operators: in-place text editing on single samples."""

from repro.ops.mappers.clean_copyright_mapper import CleanCopyrightMapper
from repro.ops.mappers.clean_email_mapper import CleanEmailMapper
from repro.ops.mappers.clean_html_mapper import CleanHtmlMapper
from repro.ops.mappers.clean_ip_mapper import CleanIpMapper
from repro.ops.mappers.clean_links_mapper import CleanLinksMapper
from repro.ops.mappers.expand_macro_mapper import ExpandMacroMapper
from repro.ops.mappers.fix_unicode_mapper import FixUnicodeMapper
from repro.ops.mappers.lowercase_mapper import LowercaseMapper
from repro.ops.mappers.nfkc_normalization_mapper import NfkcNormalizationMapper
from repro.ops.mappers.punctuation_normalization_mapper import PunctuationNormalizationMapper
from repro.ops.mappers.remove_bibliography_mapper import RemoveBibliographyMapper
from repro.ops.mappers.remove_comments_mapper import RemoveCommentsMapper
from repro.ops.mappers.remove_duplicate_lines_mapper import RemoveDuplicateLinesMapper
from repro.ops.mappers.remove_header_mapper import RemoveHeaderMapper
from repro.ops.mappers.remove_long_words_mapper import RemoveLongWordsMapper
from repro.ops.mappers.remove_non_printable_mapper import RemoveNonPrintableMapper
from repro.ops.mappers.remove_repeat_sentences_mapper import RemoveRepeatSentencesMapper
from repro.ops.mappers.remove_specific_chars_mapper import RemoveSpecificCharsMapper
from repro.ops.mappers.remove_table_text_mapper import RemoveTableTextMapper
from repro.ops.mappers.remove_words_with_incorrect_substrings_mapper import (
    RemoveWordsWithIncorrectSubstringsMapper,
)
from repro.ops.mappers.replace_content_mapper import ReplaceContentMapper
from repro.ops.mappers.sentence_split_mapper import SentenceSplitMapper
from repro.ops.mappers.text_augmentation_mapper import TextAugmentationMapper
from repro.ops.mappers.truncate_text_mapper import TruncateTextMapper
from repro.ops.mappers.whitespace_normalization_mapper import WhitespaceNormalizationMapper

__all__ = [
    "CleanCopyrightMapper",
    "CleanEmailMapper",
    "CleanHtmlMapper",
    "CleanIpMapper",
    "CleanLinksMapper",
    "ExpandMacroMapper",
    "FixUnicodeMapper",
    "LowercaseMapper",
    "NfkcNormalizationMapper",
    "PunctuationNormalizationMapper",
    "RemoveBibliographyMapper",
    "RemoveCommentsMapper",
    "RemoveDuplicateLinesMapper",
    "RemoveHeaderMapper",
    "RemoveLongWordsMapper",
    "RemoveNonPrintableMapper",
    "RemoveRepeatSentencesMapper",
    "RemoveSpecificCharsMapper",
    "RemoveTableTextMapper",
    "RemoveWordsWithIncorrectSubstringsMapper",
    "ReplaceContentMapper",
    "SentenceSplitMapper",
    "TextAugmentationMapper",
    "TruncateTextMapper",
    "WhitespaceNormalizationMapper",
]
