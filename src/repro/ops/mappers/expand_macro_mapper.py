"""Mapper that expands user-defined LaTeX macros (\\newcommand / \\def) in-place."""

from __future__ import annotations

import re

from repro.core.base_op import Mapper
from repro.core.registry import OPERATORS

NEWCOMMAND_PATTERN = re.compile(
    r"\\(?:re)?newcommand\*?\{\\(\w+)\}(?:\[\d+\])?\{(.+?)\}", re.DOTALL
)
DEF_PATTERN = re.compile(r"\\def\s*\\(\w+)\s*\{(.+?)\}", re.DOTALL)


@OPERATORS.register_module("expand_macro_mapper")
class ExpandMacroMapper(Mapper):
    """Expand simple argument-free LaTeX macros defined in the document itself.

    Only zero-argument macros are expanded (as in the original OP); macro
    definitions themselves are removed after expansion.
    """

    def __init__(self, text_key: str = "text", **kwargs):
        super().__init__(text_key=text_key, **kwargs)

    def _collect_macros(self, text: str) -> dict[str, str]:
        macros: dict[str, str] = {}
        for pattern in (NEWCOMMAND_PATTERN, DEF_PATTERN):
            for name, body in pattern.findall(text):
                if "#" not in body:  # skip macros with arguments
                    macros[name] = body
        return macros

    def process(self, sample: dict) -> dict:
        text = self.get_text(sample)
        macros = self._collect_macros(text)
        if not macros:
            return sample
        text = NEWCOMMAND_PATTERN.sub("", text)
        text = DEF_PATTERN.sub("", text)
        for name, body in macros.items():
            text = re.sub(r"\\" + re.escape(name) + r"(?![A-Za-z])", body.replace("\\", "\\\\"), text)
        return self.set_text(sample, text)
