"""Mapper that removes URLs and other hyperlink artefacts."""

from __future__ import annotations

import re

from repro.core.base_op import Mapper
from repro.core.registry import OPERATORS

LINK_PATTERN = re.compile(
    r"(?:https?|ftp)://[^\s<>\"')\]]+|www\.[^\s<>\"')\]]+",
    re.IGNORECASE,
)


@OPERATORS.register_module("clean_links_mapper")
class CleanLinksMapper(Mapper):
    """Remove http(s)/ftp/www links from the text, optionally replacing them."""

    PARAM_SPECS = {
        "repl": {"doc": "replacement string for each removed link"},
    }

    def __init__(self, repl: str = "", text_key: str = "text", **kwargs):
        super().__init__(text_key=text_key, **kwargs)
        self.repl = repl

    def process(self, sample: dict) -> dict:
        text = self.get_text(sample)
        return self.set_text(sample, LINK_PATTERN.sub(self.repl, text))
