"""Mapper that removes the bibliography section from LaTeX-like documents."""

from __future__ import annotations

import re

from repro.core.base_op import Mapper
from repro.core.registry import OPERATORS

BIBLIOGRAPHY_PATTERN = re.compile(
    r"(\\appendix|\\begin\{references\}|\\begin\{thebibliography\}|\\bibliography\{.*?\})",
)


@OPERATORS.register_module("remove_bibliography_mapper")
class RemoveBibliographyMapper(Mapper):
    """Truncate a LaTeX document at its bibliography / appendix marker."""

    def __init__(self, text_key: str = "text", **kwargs):
        super().__init__(text_key=text_key, **kwargs)

    def process(self, sample: dict) -> dict:
        text = self.get_text(sample)
        match = BIBLIOGRAPHY_PATTERN.search(text)
        if match:
            text = text[:match.start()]
        return self.set_text(sample, text)
