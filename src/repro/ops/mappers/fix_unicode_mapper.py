"""Mapper that repairs common unicode mojibake and normalization issues."""

from __future__ import annotations

import unicodedata

from repro.core.base_op import Mapper
from repro.core.batch import get_text_column, set_text_column
from repro.core.registry import OPERATORS

# Common mojibake sequences produced by decoding UTF-8 bytes as latin-1.
MOJIBAKE_MAP = {
    "â€™": "'", "â€œ": '"', "â€\x9d": '"', "â€“": "-", "â€”": "-",
    "â€¦": "...", "Ã©": "é", "Ã¨": "è", "Ã¼": "ü", "Ã¶": "ö", "Ã¤": "ä",
    "Ã±": "ñ", "Ã§": "ç", "Â ": " ", "Â·": "·", "â€˜": "'",
}

#: every mojibake sequence starts with one of these lead bytes-as-latin-1
#: characters; clean texts skip the replacement loop entirely
_MOJIBAKE_LEADS = tuple({broken[0] for broken in MOJIBAKE_MAP})


def _fix_text(text: str, normalization: str) -> str:
    if any(lead in text for lead in _MOJIBAKE_LEADS):
        for broken, fixed in MOJIBAKE_MAP.items():
            if broken in text:
                text = text.replace(broken, fixed)
    return unicodedata.normalize(normalization, text)


@OPERATORS.register_module("fix_unicode_mapper")
class FixUnicodeMapper(Mapper):
    """Fix messy codes: repair mojibake sequences and apply a normalization form.

    ``normalization`` chooses the unicode normalization form applied after the
    mojibake substitutions (NFC by default, NFKC collapses compatibility
    characters as well).
    """

    PARAM_SPECS = {
        "normalization": {
            "choices": ["NFC", "NFKC", "NFD", "NFKD"],
            "doc": "unicode normalization form applied after mojibake repair",
        },
    }

    def __init__(self, normalization: str = "NFC", text_key: str = "text", **kwargs):
        super().__init__(text_key=text_key, **kwargs)
        normalization = normalization.upper()
        if normalization not in ("NFC", "NFKC", "NFD", "NFKD"):
            raise ValueError(f"unsupported normalization form {normalization!r}")
        self.normalization = normalization

    def process(self, sample: dict) -> dict:
        return self.set_text(sample, _fix_text(self.get_text(sample), self.normalization))

    def process_batched(self, samples: dict) -> dict:
        texts = get_text_column(samples, self.text_key)
        if texts is None:
            return super().process_batched(samples)
        normalization = self.normalization
        return set_text_column(
            samples, self.text_key, [_fix_text(text, normalization) for text in texts]
        )
