"""Mapper that repairs common unicode mojibake and normalization issues."""

from __future__ import annotations

import unicodedata

from repro.core.base_op import Mapper
from repro.core.registry import OPERATORS

# Common mojibake sequences produced by decoding UTF-8 bytes as latin-1.
MOJIBAKE_MAP = {
    "â€™": "'", "â€œ": '"', "â€\x9d": '"', "â€“": "-", "â€”": "-",
    "â€¦": "...", "Ã©": "é", "Ã¨": "è", "Ã¼": "ü", "Ã¶": "ö", "Ã¤": "ä",
    "Ã±": "ñ", "Ã§": "ç", "Â ": " ", "Â·": "·", "â€˜": "'",
}


@OPERATORS.register_module("fix_unicode_mapper")
class FixUnicodeMapper(Mapper):
    """Fix messy codes: repair mojibake sequences and apply a normalization form.

    ``normalization`` chooses the unicode normalization form applied after the
    mojibake substitutions (NFC by default, NFKC collapses compatibility
    characters as well).
    """

    def __init__(self, normalization: str = "NFC", text_key: str = "text", **kwargs):
        super().__init__(text_key=text_key, **kwargs)
        normalization = normalization.upper()
        if normalization not in ("NFC", "NFKC", "NFD", "NFKD"):
            raise ValueError(f"unsupported normalization form {normalization!r}")
        self.normalization = normalization

    def process(self, sample: dict) -> dict:
        text = self.get_text(sample)
        for broken, fixed in MOJIBAKE_MAP.items():
            if broken in text:
                text = text.replace(broken, fixed)
        text = unicodedata.normalize(self.normalization, text)
        return self.set_text(sample, text)
