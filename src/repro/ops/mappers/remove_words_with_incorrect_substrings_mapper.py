"""Mapper that removes words containing unwanted substrings (http, .com, tracking ids...)."""

from __future__ import annotations

from repro.core.base_op import Mapper
from repro.core.registry import OPERATORS

DEFAULT_SUBSTRINGS = ["http", "www", ".com", "href", "//"]


@OPERATORS.register_module("remove_words_with_incorrect_substrings_mapper")
class RemoveWordsWithIncorrectSubstringsMapper(Mapper):
    """Drop whitespace-delimited words that contain any of the given substrings."""

    PARAM_SPECS = {
        "substrings": {"doc": "words containing any of these substrings are removed"},
    }

    def __init__(self, substrings: list[str] | None = None, text_key: str = "text", **kwargs):
        super().__init__(text_key=text_key, **kwargs)
        self.substrings = list(substrings) if substrings is not None else list(DEFAULT_SUBSTRINGS)

    def _keep(self, word: str) -> bool:
        lowered = word.lower()
        return not any(substring in lowered for substring in self.substrings)

    def process(self, sample: dict) -> dict:
        text = self.get_text(sample)
        lines = []
        for line in text.split("\n"):
            kept = [word for word in line.split(" ") if not word or self._keep(word)]
            lines.append(" ".join(kept))
        return self.set_text(sample, "\n".join(lines))
