"""A tiny embedded unigram language model used by the perplexity filter.

The original system scores perplexity with pre-trained KenLM models.  This
stand-in carries a compact table of common English word frequencies (plus an
out-of-vocabulary mass) and computes per-word perplexity with add-one
smoothing.  Natural prose built from common words receives low perplexity;
gibberish, markup and symbol soup receive high perplexity — exactly the
separation the perplexity filter relies on.
"""

from __future__ import annotations

import math
from functools import lru_cache

from repro.ops.common.helper_funcs import get_words_from_text, words_refinement
from repro.ops.common.stopwords import STOPWORDS_EN

# Relative frequencies (per million tokens) of common English content words.
_COMMON_WORD_FREQ = {
    "time": 1800, "people": 1300, "year": 1200, "way": 1100, "day": 1000,
    "man": 900, "thing": 900, "woman": 800, "life": 800, "child": 700,
    "world": 700, "school": 600, "state": 600, "family": 600, "student": 500,
    "group": 500, "country": 500, "problem": 500, "hand": 500, "part": 500,
    "place": 500, "case": 400, "week": 400, "company": 400, "system": 400,
    "program": 400, "question": 400, "work": 400, "government": 400,
    "number": 400, "night": 300, "point": 300, "home": 300, "water": 300,
    "room": 300, "mother": 300, "area": 300, "money": 300, "story": 300,
    "fact": 300, "month": 300, "lot": 300, "right": 300, "study": 300,
    "book": 300, "eye": 300, "job": 300, "word": 300, "business": 300,
    "issue": 200, "side": 200, "kind": 200, "head": 200, "house": 200,
    "service": 200, "friend": 200, "father": 200, "power": 200, "hour": 200,
    "game": 200, "line": 200, "end": 200, "member": 200, "law": 200,
    "car": 200, "city": 200, "community": 200, "name": 200, "president": 200,
    "team": 200, "minute": 200, "idea": 200, "kid": 200, "body": 200,
    "information": 200, "back": 200, "parent": 200, "face": 200, "others": 200,
    "level": 200, "office": 200, "door": 200, "health": 200, "person": 200,
    "art": 200, "war": 200, "history": 200, "party": 200, "result": 200,
    "change": 200, "morning": 200, "reason": 200, "research": 200, "girl": 200,
    "guy": 200, "moment": 200, "air": 200, "teacher": 200, "force": 200,
    "education": 200, "data": 200, "model": 200, "language": 200, "text": 200,
    "learn": 150, "make": 900, "know": 800, "take": 700, "see": 700,
    "come": 600, "think": 600, "look": 600, "want": 600, "give": 500,
    "use": 500, "find": 500, "tell": 400, "ask": 400, "seem": 300,
    "feel": 300, "try": 300, "leave": 300, "call": 300, "good": 800,
    "new": 800, "first": 600, "last": 500, "long": 400, "great": 400,
    "little": 400, "own": 400, "other": 700, "old": 400, "big": 300,
    "high": 300, "different": 300, "small": 300, "large": 300, "next": 300,
    "early": 200, "young": 200, "important": 200, "public": 200, "same": 400,
}


@lru_cache(maxsize=1)
def _log_prob_table() -> tuple[dict[str, float], float]:
    """Return (word -> log2 prob, default log2 prob for OOV words)."""
    table: dict[str, int] = dict(_COMMON_WORD_FREQ)
    for word in STOPWORDS_EN:
        table[word] = max(table.get(word, 0), 5000)
    total = sum(table.values())
    vocab = len(table)
    smoothing = 1.0
    denom = total + smoothing * (vocab + 1)
    log_probs = {
        word: math.log2((count + smoothing) / denom) for word, count in table.items()
    }
    oov_log_prob = math.log2(smoothing / denom)
    return log_probs, oov_log_prob


def perplexity(text: str) -> float:
    """Return the unigram perplexity of a text (empty text yields 0.0)."""
    words = words_refinement(get_words_from_text(text, lowercase=True))
    if not words:
        return 0.0
    log_probs, oov = _log_prob_table()
    total_log_prob = sum(log_probs.get(word, oov) for word in words)
    entropy = -total_log_prob / len(words)
    return float(2 ** entropy)
