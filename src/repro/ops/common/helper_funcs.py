"""Shared text-processing helpers used across Mapper and Filter operators.

These functions centralise tokenisation, sentence splitting, n-gram
construction and word refinement so that fused operators can share their
results via the per-sample context (:mod:`repro.core.context`).
"""

from __future__ import annotations

import re
import string
from collections import Counter
from typing import Iterable, Sequence

_WORD_PATTERN = re.compile(r"[\w']+|[^\w\s]", re.UNICODE)
_SENTENCE_PATTERN = re.compile(r"(?<=[.!?。！？])\s+")
_PARAGRAPH_PATTERN = re.compile(r"\n\s*\n")
_CJK_PATTERN = re.compile(r"[一-鿿]")


def get_words_from_text(text: str, lowercase: bool = False) -> list[str]:
    """Tokenise text into words and punctuation tokens.

    CJK characters are emitted as single-character tokens (approximating a
    character-level tokenizer for Chinese-like text); other scripts are split
    on word boundaries.  Texts without any CJK characters — the overwhelmingly
    common case — take a single-pass ``findall`` fast path instead of probing
    every token.
    """
    if lowercase:
        text = text.lower()
    if not _CJK_PATTERN.search(text):
        return _WORD_PATTERN.findall(text)
    tokens: list[str] = []
    for token in _WORD_PATTERN.findall(text):
        if _CJK_PATTERN.search(token):
            tokens.extend(token)
        else:
            tokens.append(token)
    return tokens


_DEFAULT_STRIP_CHARS = string.punctuation + string.whitespace

#: memoised default refinement (lowercase + strip) per distinct token; text
#: vocabularies are zipfian, so most tokens hit the cache.  ``None`` marks
#: tokens that refine to nothing.  Bounded against adversarial vocabularies.
_REFINE_CACHE: dict[str, str | None] = {}
_REFINE_CACHE_MAX = 1 << 17
_MISSING = object()


def words_refinement(
    words: Sequence[str],
    lower_case: bool = True,
    strip_chars: str | None = None,
    use_words_aug: bool = False,
) -> list[str]:
    """Refine tokens: lowercase, strip punctuation-like edges and drop empties.

    ``use_words_aug`` additionally merges very short tokens with neighbours to
    approximate the word-augmentation used for languages without spaces.
    """
    if strip_chars is None and lower_case:
        # memoised fast path for the default refinement settings: classify
        # unseen tokens once, then map + filter run entirely at C level
        cache = _REFINE_CACHE
        unknown = set(words).difference(cache)
        if unknown and len(cache) + len(unknown) <= _REFINE_CACHE_MAX:
            for word in unknown:
                cache[word] = word.lower().strip(_DEFAULT_STRIP_CHARS) or None
            unknown = ()
        if not unknown:
            refined = list(filter(None, map(cache.__getitem__, words)))
            return _merge_short_tokens(refined) if use_words_aug else refined
        # cache is full: refine uncached tokens inline, reuse cached ones
        refined = []
        for word in words:
            cached = cache.get(word, _MISSING)
            if cached is _MISSING:
                cached = word.lower().strip(_DEFAULT_STRIP_CHARS) or None
            if cached is not None:
                refined.append(cached)
        return _merge_short_tokens(refined) if use_words_aug else refined
    strip_chars = strip_chars if strip_chars is not None else _DEFAULT_STRIP_CHARS
    refined = []
    for word in words:
        if lower_case:
            word = word.lower()
        word = word.strip(strip_chars)
        if word:
            refined.append(word)
    if use_words_aug:
        refined = _merge_short_tokens(refined)
    return refined


def _merge_short_tokens(refined: Sequence[str]) -> list[str]:
    """Merge single-character tokens with neighbours (words-aug approximation)."""
    merged: list[str] = []
    buffer = ""
    for word in refined:
        if len(word) == 1:
            buffer += word
        else:
            if buffer:
                merged.append(buffer)
                buffer = ""
            merged.append(word)
    if buffer:
        merged.append(buffer)
    return merged


def split_sentences(text: str) -> list[str]:
    """Split text into sentences on ., !, ? and their CJK equivalents."""
    parts = _SENTENCE_PATTERN.split(text.strip())
    return [part.strip() for part in parts if part.strip()]


def split_paragraphs(text: str) -> list[str]:
    """Split text into paragraphs on blank lines."""
    parts = _PARAGRAPH_PATTERN.split(text)
    return [part.strip() for part in parts if part.strip()]


def split_lines(text: str) -> list[str]:
    """Split text into lines (newline separated, empty lines preserved)."""
    return text.split("\n")


def get_ngrams(tokens: Sequence, n: int) -> list[tuple]:
    """Return the list of n-grams (as tuples) of a token sequence.

    Built with ``zip`` over shifted slices, so the tuples materialise at C
    speed instead of one Python-level slice+tuple per position.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if len(tokens) < n:
        return []
    return list(zip(*(tokens[index:] for index in range(n))))


def get_char_ngrams(text: str, n: int) -> list[str]:
    """Return the list of character n-grams of a string."""
    if n <= 0:
        raise ValueError("n must be positive")
    if len(text) < n:
        return []
    return [text[index:index + n] for index in range(len(text) - n + 1)]


def ngram_repetition_ratio(items: Sequence, n: int) -> float:
    """Fraction of n-gram occurrences that belong to duplicated n-grams.

    This is the character/word repetition metric used by the corresponding
    filters: 0.0 means every n-gram is unique, values close to 1.0 indicate a
    highly repetitive text.
    """
    grams = get_ngrams(list(items), n)
    if not grams:
        return 0.0
    counts = Counter(grams)
    repeated = sum(count for count in counts.values() if count > 1)
    return repeated / len(grams)


def char_ngram_repetition_ratio(text: str, n: int) -> float:
    """Fast variant of :func:`ngram_repetition_ratio` for character n-grams.

    Counts substrings instead of character tuples; substrings of fixed length
    are in bijection with the corresponding tuples, so the resulting ratio is
    identical while skipping the ``list(text)`` + tuple materialisation.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    total = len(text) - n + 1
    if total <= 0:
        return 0.0
    counts = Counter(text[index:index + n] for index in range(total))
    repeated = sum(count for count in counts.values() if count > 1)
    return repeated / total


def ratio_of(predicate_count: int, total: int) -> float:
    """Safe ratio helper: returns 0.0 when the denominator is zero."""
    return predicate_count / total if total else 0.0


def is_cjk_char(char: str) -> bool:
    """Return True when the character falls in the main CJK unified block."""
    return bool(_CJK_PATTERN.match(char))


def cjk_ratio(text: str) -> float:
    """Fraction of characters that are CJK; used for language heuristics."""
    if not text:
        return 0.0
    return sum(1 for char in text if is_cjk_char(char)) / len(text)


def count_matches(pattern: re.Pattern, text: str) -> int:
    """Number of non-overlapping matches of a compiled pattern in the text."""
    return sum(1 for _ in pattern.finditer(text))


def unique_ratio(items: Iterable) -> float:
    """Fraction of distinct items; 1.0 means all items are unique."""
    items = list(items)
    if not items:
        return 0.0
    return len(set(items)) / len(items)
