"""Embedded flagged-word (unsafe / low-quality marker) lists.

The original system ships large per-language flagged-word vocabularies used by
the flagged-words filter to estimate toxicity / adult-content density.  Here a
compact synthetic marker list is embedded: the synthetic corpus generator
(:mod:`repro.synth`) injects exactly these markers into its "toxic" documents,
so the filter exercises the same code path against the same distributional
signal without shipping an offensive vocabulary.
"""

from __future__ import annotations

FLAGGED_WORDS_EN = {
    "flaggedterm", "badword", "toxicword", "slurword", "obscenity",
    "explicitterm", "nsfwterm", "profanity", "vulgarism", "hateterm",
    "spamword", "scamword", "clickbaitword", "gambleword", "phishword",
}

FLAGGED_WORDS_ZH = {
    "违禁词", "辱骂词", "色情词", "赌博词", "诈骗词",
}

FLAGGED_WORDS = {
    "en": FLAGGED_WORDS_EN,
    "zh": FLAGGED_WORDS_ZH,
    "all": FLAGGED_WORDS_EN | FLAGGED_WORDS_ZH,
}


def get_flagged_words(lang: str = "en") -> set[str]:
    """Return the flagged-word set for a language code ('en', 'zh' or 'all')."""
    return FLAGGED_WORDS.get(lang, FLAGGED_WORDS_EN)
