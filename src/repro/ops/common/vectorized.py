"""Vectorised text kernels backing the batched op implementations.

Every function here is a drop-in, *bit-identical* replacement for the pure
Python helper it accelerates — the batched/per-row equivalence suite asserts
exactly that.  The kernels operate on whole batches (lists of texts / token
lists) so the numpy import and any table setup are amortised across rows.

All kernels degrade gracefully to the pure Python helpers when numpy is
unavailable, so the batched path never *requires* the accelerator.
"""

from __future__ import annotations

from typing import Sequence

from repro.ops.common.helper_funcs import (
    char_ngram_repetition_ratio,
    ngram_repetition_ratio,
)
from repro.ops.common.special_characters import is_special_character, special_character_count

try:  # numpy is an optional accelerator, not a hard dependency
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None


def _codepoints(text: str):
    """The text as a uint32 codepoint array (one cell per character).

    Raises :class:`UnicodeEncodeError` for strings containing unpaired
    surrogates (legal in Python strings, e.g. from JSON ``\\ud800`` escapes);
    callers catch it and fall back to the pure-Python helpers.
    """
    return _np.frombuffer(text.encode("utf-32-le"), dtype=_np.uint32)


def _repeated_in_sorted_keys(key) -> int:
    """Occurrences belonging to duplicated values of a sorted key array."""
    total = key.size
    distinct = _np.empty(total, dtype=bool)
    distinct[0] = True
    _np.not_equal(key[1:], key[:-1], out=distinct[1:])
    starts = _np.flatnonzero(distinct)
    lengths = _np.diff(_np.append(starts, total))
    return int(lengths[lengths > 1].sum())


def _pack_window_keys(ids, width: int, bits: int):
    """uint64 keys of all ``width``-windows of a dense-id array, by doubling.

    ``key[i] = ids[i] << bits*(width-1) | … | ids[i+width-1]`` for every
    position, computed with ~2·log2(width) whole-array shift/or passes
    instead of ``width`` per-column passes.  Requires ``width*bits <= 64``.
    """
    powers = {1: ids}
    span = 1
    key = ids
    while span * 2 <= width:
        shift = _np.uint64(bits * span)
        key = (key[:-span] << shift) | key[span:]
        span *= 2
        powers[span] = key
    # greedy binary composition of the remaining width
    acc = None
    acc_span = 0
    for span in sorted(powers, reverse=True):
        if acc_span + span > width:
            continue
        piece = powers[span]
        if acc is None:
            acc = piece
        else:
            length = min(acc.size, piece.size - acc_span)
            acc = (acc[:length] << _np.uint64(bits * span)) | piece[acc_span:acc_span + length]
        acc_span += span
        if acc_span == width:
            break
    return acc[: ids.size - width + 1]


def _repetition_ratio_from_ids(ids, num_ids: int, n: int) -> float:
    """Fraction of duplicated n-gram occurrences over a dense-id sequence.

    Consecutive ids are bit-packed into one uint64 sort key per window —
    callers guarantee ``bits_per_id * n <= 64`` — sorted, and duplicate
    windows counted via run lengths.  Packing is bijective, so the ratio is
    identical to the tuple-Counter helper.
    """
    total = int(ids.size) - n + 1
    if total <= 0:
        return 0.0
    bits = max(1, (num_ids - 1).bit_length())
    if bits * n > 64:
        raise ValueError(f"{n}-grams of a {num_ids}-id alphabet do not fit one sort key")
    key = _pack_window_keys(ids, n, bits)
    return _repeated_in_sorted_keys(_np.sort(key)) / total


# ----------------------------------------------------------------------
# Grouped char-repetition kernel
# ----------------------------------------------------------------------
#: global codepoint -> dense id table for the grouped kernel; id 0 means
#: "unassigned", real ids are 1..GROUP_ALPHABET_MAX (7 bits)
_DENSE_ID_BITS = 7
_DENSE_ID_MAX = (1 << _DENSE_ID_BITS) - 1
_DENSE_IDS = None
_DENSE_NEXT = 1


def _assign_dense_ids(codepoints) -> None:
    """Assign dense alphabet ids to any unassigned codepoints (id 0) seen.

    Stops silently at the 7-bit budget; codepoints left at id 0 route their
    documents to the per-document fallback.
    """
    global _DENSE_IDS, _DENSE_NEXT
    if _DENSE_IDS is None:
        _DENSE_IDS = _np.zeros(0x110000, dtype=_np.uint8)
    for codepoint in codepoints:
        if _DENSE_NEXT > _DENSE_ID_MAX:
            return
        _DENSE_IDS[codepoint] = _DENSE_NEXT
        _DENSE_NEXT += 1


def _segment_sums(values, starts, lengths):
    """Per-segment True counts of a bool array (vectorised).

    Binary-searches the match positions instead of materialising a full
    cumulative sum — the match sets of the ratio filters are sparse, so this
    touches far less memory.
    """
    positions = _np.flatnonzero(values)
    return _np.searchsorted(positions, starts + lengths) - _np.searchsorted(positions, starts)


def _grouped_char_repetition(ids, starts, lengths, n: int):
    """One-sort-per-group repetition ratios over a concatenated id array.

    Each group's windows are packed into uint64 keys carrying the document
    index in the high bits, sorted together, and per-document duplicate
    counts recovered with a single ``bincount`` over the run lengths — the
    per-document numpy call overhead collapses into ~a dozen calls per group
    of up to 256 documents.  ``ids`` stays uint8; every wide transient (the
    uint64 casts, keys, sort buffer) is allocated per group, so peak memory
    is bounded by the group span, not the batch.
    """
    runs = _np.maximum(lengths - n + 1, 0)
    doc_shift = _np.uint64(_DENSE_ID_BITS * n)
    group = 1 << (64 - _DENSE_ID_BITS * n)
    num_docs = starts.size
    ratios = _np.zeros(num_docs, dtype=_np.float64)
    for first_doc in range(0, num_docs, group):
        last_doc = min(first_doc + group, num_docs)
        doc_slice = slice(first_doc, last_doc)
        chunk_runs = runs[doc_slice]
        total_valid = int(chunk_runs.sum())
        if total_valid == 0:
            continue
        char_start = int(starts[first_doc])
        char_end = int(starts[last_doc - 1] + lengths[last_doc - 1])
        keys = _pack_window_keys(
            ids[char_start:char_end].astype(_np.uint64), n, _DENSE_ID_BITS
        )
        doc_index = _np.repeat(
            _np.arange(chunk_runs.size, dtype=_np.uint64), chunk_runs
        )
        window_start = _np.repeat(starts[doc_slice] - char_start, chunk_runs) + (
            _np.arange(total_valid, dtype=_np.int64)
            - _np.repeat(_np.cumsum(chunk_runs) - chunk_runs, chunk_runs)
        )
        combined = (doc_index << doc_shift) | keys[window_start]
        combined.sort()
        distinct = _np.empty(total_valid, dtype=bool)
        distinct[0] = True
        _np.not_equal(combined[1:], combined[:-1], out=distinct[1:])
        run_starts = _np.flatnonzero(distinct)
        run_lengths = _np.diff(_np.append(run_starts, total_valid))
        dup = run_lengths > 1
        repeated = _np.bincount(
            (combined[run_starts[dup]] >> doc_shift).astype(_np.int64),
            weights=run_lengths[dup],
            minlength=chunk_runs.size,
        )
        ratios[doc_slice] = repeated / _np.maximum(chunk_runs, 1)
    return ratios


#: documents longer than this skip the grouped kernel: per-row overhead is
#: negligible for them anyway, and keeping them out bounds the grouped
#: kernel's transient allocations (long-document workloads stay lean)
_GROUPED_MAX_DOC_CHARS = 2048


def char_repetition_ratios(texts: Sequence[str], n: int) -> list[float]:
    """Char n-gram repetition ratio per text (vectorised Counter replacement).

    Short/medium texts whose characters fit the shared 7-bit dense alphabet
    are encoded once and processed by the grouped kernel (hundreds of
    documents per sort).  Long texts and alphabet overflows fall back to a
    per-document kernel (dense remap via ``np.unique``), and when even one
    key cannot hold an n-gram, to the substring Counter.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if _np is None or not texts:
        return [char_ngram_repetition_ratio(text, n) for text in texts]
    grouped_ok = _DENSE_ID_BITS * n <= 56  # >= 8 doc bits for the group kernel
    results: list = [None] * len(texts)
    grouped_at: list[int] = []
    grouped_texts: list[str] = []
    for index, text in enumerate(texts):
        if len(text) < n:
            results[index] = 0.0
        elif not grouped_ok or len(text) > _GROUPED_MAX_DOC_CHARS:
            results[index] = _char_repetition_fallback(text, n)
        else:
            grouped_at.append(index)
            grouped_texts.append(text)
    if not grouped_texts:
        return results
    global _DENSE_IDS
    if _DENSE_IDS is None:
        _DENSE_IDS = _np.zeros(0x110000, dtype=_np.uint8)
    try:
        codepoints = _codepoints("\x00".join(grouped_texts))
    except UnicodeEncodeError:
        # unpaired surrogates somewhere in the batch: count in pure Python
        for index, text in zip(grouped_at, grouped_texts):
            results[index] = char_ngram_repetition_ratio(text, n)
        return results
    ids = _DENSE_IDS[codepoints]
    unassigned = codepoints[ids == 0]
    if unassigned.size:
        # "\x00" stays id 0 — separator windows are never selected anyway
        _assign_dense_ids(
            cp for cp in _np.unique(unassigned).tolist() if cp != 0
        )
        ids = _DENSE_IDS[codepoints]
    lengths = _np.fromiter(
        (len(text) for text in grouped_texts), dtype=_np.int64, count=len(grouped_texts)
    )
    starts = _np.empty(len(grouped_texts), dtype=_np.int64)
    starts[0] = 0
    _np.cumsum(lengths[:-1] + 1, out=starts[1:])
    # documents still holding id-0 characters overflowed the alphabet budget
    zero_per_doc = _segment_sums(ids == 0, starts, lengths)
    ratios = _grouped_char_repetition(ids, starts, lengths, n)
    for position, index in enumerate(grouped_at):
        if zero_per_doc[position] > 0:
            results[index] = _char_repetition_fallback(grouped_texts[position], n)
        else:
            results[index] = float(ratios[position])
    return results


def _char_repetition_fallback(text: str, n: int) -> float:
    """Per-document kernel for texts outside the shared dense alphabet."""
    if len(text) < n:
        return 0.0
    try:
        codepoints = _codepoints(text)
    except UnicodeEncodeError:
        return char_ngram_repetition_ratio(text, n)
    unique, inverse = _np.unique(codepoints, return_inverse=True)
    bits = max(1, (int(unique.size) - 1).bit_length())
    if bits * n <= 64:
        return _repetition_ratio_from_ids(inverse.astype(_np.uint64), int(unique.size), n)
    return char_ngram_repetition_ratio(text, n)


def token_repetition_ratios(token_lists: Sequence[Sequence[str]], n: int) -> list[float]:
    """Token n-gram repetition ratio per token list.

    Unlike characters, tokens would first need per-document interning to
    dense ids — a per-token Python loop that costs as much as the tuple
    Counter it would replace (measured at 50-400 tokens/doc) — so this simply
    maps the shared helper; the batched win for word-level filters comes from
    tokenising each batch once, not from the counting kernel.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    return [ngram_repetition_ratio(tokens, n) for tokens in token_lists]


# ----------------------------------------------------------------------
# Per-character predicate counting via lazily-filled codepoint class tables
# ----------------------------------------------------------------------
#: predicate name -> class table (0 = unclassified, 1 = match, 2 = no match;
#: one byte per codepoint, filled lazily from the Python predicate)
_CLASS_TABLES: dict[str, object] = {}


def char_predicate_counts(texts: Sequence[str], name: str, predicate) -> list[int]:
    """Count characters matching ``predicate`` per text, via a codepoint table.

    The whole batch is encoded once (``\\x00``-joined), classified with one
    table load, and per-text counts recovered with a single ``reduceat`` —
    the Python predicate runs exactly once per distinct codepoint per
    process.  Bit-identical to ``sum(1 for c in text if predicate(c))``.
    """
    if _np is None:
        return [sum(1 for char in text if predicate(char)) for text in texts]
    if not texts:
        return []
    table = _CLASS_TABLES.get(name)
    if table is None:
        table = _CLASS_TABLES[name] = _np.zeros(0x110000, dtype=_np.uint8)
    try:
        codepoints = _codepoints("\x00".join(texts))
    except UnicodeEncodeError:
        # unpaired surrogates somewhere in the batch: count in pure Python
        return [sum(1 for char in text if predicate(char)) for text in texts]
    classes = table[codepoints] if codepoints.size else _np.empty(0, _np.uint8)
    if not classes.all():
        for codepoint in _np.unique(codepoints[classes == 0]).tolist():
            table[codepoint] = 1 if predicate(chr(codepoint)) else 2
        classes = table[codepoints]
    lengths = _np.fromiter((len(text) for text in texts), dtype=_np.int64, count=len(texts))
    starts = _np.empty(len(texts), dtype=_np.int64)
    starts[0] = 0
    _np.cumsum(lengths[:-1] + 1, out=starts[1:])
    return _segment_sums(classes == 1, starts, lengths).tolist()


def special_character_counts(texts: Sequence[str]) -> list[int]:
    """Special-character count per text (see :func:`char_predicate_counts`)."""
    if _np is None:
        return [special_character_count(text) for text in texts]
    return char_predicate_counts(texts, "special", is_special_character)


def digit_counts(texts: Sequence[str]) -> list[int]:
    """Digit-character count per text (``str.isdigit`` semantics)."""
    return char_predicate_counts(texts, "digit", str.isdigit)


def whitespace_counts(texts: Sequence[str]) -> list[int]:
    """Whitespace-character count per text (``str.isspace`` semantics)."""
    return char_predicate_counts(texts, "whitespace", str.isspace)


__all__ = [
    "char_predicate_counts",
    "char_repetition_ratios",
    "digit_counts",
    "special_character_counts",
    "token_repetition_ratios",
    "whitespace_counts",
]
