"""Character class tables used by filters: special characters, emoticons, whitespace."""

from __future__ import annotations

import string

# Various whitespace characters beyond ASCII space that web text often contains.
VARIOUS_WHITESPACES = {
    " ", "\t", "\n", "\r", "\x0b", "\x0c",
    " ", " ", " ", " ", " ", " ", " ",
    " ", " ", " ", " ", " ", " ", "​",
    " ", " ", " ", " ", "　", "﻿",
}

# A compact emoticon/emoji sample set (full tables are large; the ratio-based
# filters only need representative membership testing).
EMOTICONS = {
    "🙂", "🙃", "😀", "😁", "😂", "🤣", "😊", "😍", "😎", "😢", "😭", "😡",
    "👍", "👎", "🙏", "🔥", "✨", "💯", "❤", "💔", "🎉", "🤔", "😴", "🥰",
}

# Characters counted as "special" by the special-characters filter: everything
# that is neither alphanumeric, CJK, nor plain whitespace/punctuation used in
# normal prose.
MAIN_SPECIAL_CHARACTERS = set(string.punctuation) | set(string.digits) | VARIOUS_WHITESPACES
SPECIAL_CHARACTERS = MAIN_SPECIAL_CHARACTERS | EMOTICONS


def is_special_character(char: str) -> bool:
    """Return True when the character counts as 'special' for ratio filters."""
    if char in SPECIAL_CHARACTERS:
        return True
    return not (char.isalnum() or char.isspace())


def special_character_ratio(text: str) -> float:
    """Fraction of characters that are special characters."""
    if not text:
        return 0.0
    return sum(1 for char in text if is_special_character(char)) / len(text)
