"""Character class tables used by filters: special characters, emoticons, whitespace."""

from __future__ import annotations

import string

# Various whitespace characters beyond ASCII space that web text often contains.
VARIOUS_WHITESPACES = {
    " ", "\t", "\n", "\r", "\x0b", "\x0c",
    " ", " ", " ", " ", " ", " ", " ",
    " ", " ", " ", " ", " ", " ", "​",
    " ", " ", " ", " ", "　", "﻿",
}

# A compact emoticon/emoji sample set (full tables are large; the ratio-based
# filters only need representative membership testing).
EMOTICONS = {
    "🙂", "🙃", "😀", "😁", "😂", "🤣", "😊", "😍", "😎", "😢", "😭", "😡",
    "👍", "👎", "🙏", "🔥", "✨", "💯", "❤", "💔", "🎉", "🤔", "😴", "🥰",
}

# Characters counted as "special" by the special-characters filter: everything
# that is neither alphanumeric, CJK, nor plain whitespace/punctuation used in
# normal prose.
MAIN_SPECIAL_CHARACTERS = set(string.punctuation) | set(string.digits) | VARIOUS_WHITESPACES
SPECIAL_CHARACTERS = MAIN_SPECIAL_CHARACTERS | EMOTICONS


def is_special_character(char: str) -> bool:
    """Return True when the character counts as 'special' for ratio filters."""
    if char in SPECIAL_CHARACTERS:
        return True
    return not (char.isalnum() or char.isspace())


#: memoised per-character classification; real-world text draws from a small
#: alphabet, so the unicode category checks run once per distinct character.
#: Bounded so adversarial inputs cannot grow it without limit.
_CLASS_CACHE: dict[str, bool] = {}
_CLASS_CACHE_MAX = 1 << 16


def special_character_count(text: str) -> int:
    """Number of special characters in the text (memoised per character)."""
    cache = _CLASS_CACHE
    count = 0
    for char in text:
        flag = cache.get(char)
        if flag is None:
            flag = is_special_character(char)
            if len(cache) < _CLASS_CACHE_MAX:
                cache[char] = flag
        count += flag
    return count


def special_character_ratio(text: str) -> float:
    """Fraction of characters that are special characters."""
    if not text:
        return 0.0
    return special_character_count(text) / len(text)
