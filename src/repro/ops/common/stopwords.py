"""Embedded stop-word lists for English and a Chinese-like token set.

The original system downloads per-language stop-word assets; here compact
lists are embedded so the stop-word filter works fully offline.  Lists are
intentionally small but cover the high-frequency function words that dominate
real prose, which is what the ratio-based filter needs.
"""

from __future__ import annotations

STOPWORDS_EN = {
    "a", "about", "above", "after", "again", "all", "also", "am", "an", "and",
    "any", "are", "as", "at", "be", "because", "been", "before", "being",
    "below", "between", "both", "but", "by", "can", "could", "did", "do",
    "does", "doing", "down", "during", "each", "few", "for", "from", "further",
    "had", "has", "have", "having", "he", "her", "here", "hers", "him", "his",
    "how", "i", "if", "in", "into", "is", "it", "its", "just", "me", "more",
    "most", "my", "no", "nor", "not", "now", "of", "off", "on", "once", "only",
    "or", "other", "our", "out", "over", "own", "same", "she", "should", "so",
    "some", "such", "than", "that", "the", "their", "them", "then", "there",
    "these", "they", "this", "those", "through", "to", "too", "under", "until",
    "up", "very", "was", "we", "were", "what", "when", "where", "which",
    "while", "who", "whom", "why", "will", "with", "would", "you", "your",
    "yours",
}

STOPWORDS_ZH = {
    "的", "了", "和", "是", "在", "我", "有", "他", "这", "中", "大", "来",
    "上", "国", "个", "到", "说", "们", "为", "子", "和", "你", "地", "出",
    "道", "也", "时", "年", "得", "就", "那", "要", "下", "以", "生", "会",
    "自", "着", "去", "之", "过", "家", "学", "对", "可", "她", "里", "后",
}

STOPWORDS = {
    "en": STOPWORDS_EN,
    "zh": STOPWORDS_ZH,
    "all": STOPWORDS_EN | STOPWORDS_ZH,
}


def get_stopwords(lang: str = "en") -> set[str]:
    """Return the stop-word set for a language code ('en', 'zh' or 'all')."""
    return STOPWORDS.get(lang, STOPWORDS_EN)
