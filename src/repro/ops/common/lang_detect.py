"""A compact heuristic language identifier (English / Chinese-like / other).

The original system uses a fastText language-id model; this stand-in scores a
text by combining script statistics (ASCII-alpha vs CJK character ratios) with
stop-word hit rates.  It returns the most likely language code and a
confidence score in [0, 1], which is what the ``language_id_score_filter``
needs to reproduce the paper's filtering behaviour.
"""

from __future__ import annotations

from repro.ops.common.helper_funcs import cjk_ratio, get_words_from_text, words_refinement
from repro.ops.common.stopwords import STOPWORDS_EN, STOPWORDS_ZH


def detect_language(text: str) -> tuple[str, float]:
    """Return ``(lang_code, score)`` for a text.

    ``lang_code`` is ``'en'``, ``'zh'`` or ``'other'``; ``score`` is a
    confidence in [0, 1] increasing with how strongly the evidence favours the
    predicted language.
    """
    if not text or not text.strip():
        return "other", 0.0

    zh_char_ratio = cjk_ratio(text)
    alpha_chars = sum(1 for char in text if char.isascii() and char.isalpha())
    ascii_alpha_ratio = alpha_chars / len(text)

    words = words_refinement(get_words_from_text(text, lowercase=True))
    if words:
        en_stopword_ratio = sum(1 for word in words if word in STOPWORDS_EN) / len(words)
        zh_stopword_ratio = sum(1 for word in words if word in STOPWORDS_ZH) / len(words)
    else:
        en_stopword_ratio = 0.0
        zh_stopword_ratio = 0.0

    en_score = min(1.0, 0.6 * ascii_alpha_ratio + 1.4 * en_stopword_ratio)
    zh_score = min(1.0, 0.9 * zh_char_ratio + 1.1 * zh_stopword_ratio)

    if en_score < 0.1 and zh_score < 0.1:
        return "other", max(en_score, zh_score)
    if zh_score >= en_score:
        return "zh", zh_score
    return "en", en_score
