"""Shared helpers for the operator pool."""

from repro.ops.common.flagged_words import get_flagged_words
from repro.ops.common.helper_funcs import (
    cjk_ratio,
    get_char_ngrams,
    get_ngrams,
    get_words_from_text,
    ngram_repetition_ratio,
    split_lines,
    split_paragraphs,
    split_sentences,
    words_refinement,
)
from repro.ops.common.special_characters import (
    SPECIAL_CHARACTERS,
    is_special_character,
    special_character_ratio,
)
from repro.ops.common.stopwords import get_stopwords

__all__ = [
    "SPECIAL_CHARACTERS",
    "cjk_ratio",
    "get_char_ngrams",
    "get_flagged_words",
    "get_ngrams",
    "get_stopwords",
    "get_words_from_text",
    "is_special_character",
    "ngram_repetition_ratio",
    "special_character_ratio",
    "split_lines",
    "split_paragraphs",
    "split_sentences",
    "words_refinement",
]
