"""Shared helpers for the operator pool."""

from repro.ops.common.flagged_words import get_flagged_words
from repro.ops.common.helper_funcs import (
    cjk_ratio,
    get_char_ngrams,
    get_ngrams,
    get_words_from_text,
    ngram_repetition_ratio,
    split_lines,
    split_paragraphs,
    split_sentences,
    words_refinement,
)
from repro.ops.common.special_characters import (
    SPECIAL_CHARACTERS,
    is_special_character,
    special_character_ratio,
)
from repro.ops.common.stopwords import get_stopwords


def preload_assets() -> None:
    """Warm the lazily-loaded operator assets (currently the unigram LM table).

    Called by :mod:`repro.parallel` worker initialisation so the cost is paid
    once per worker process at pool start-up instead of inside the first timed
    task.  Under the ``fork`` start method the cache is usually inherited warm
    from the parent and this is nearly free; under ``spawn`` it performs the
    actual one-off loading.  The stop-word and flagged-word sets need no
    warming: they are module-level constants materialised when this package is
    imported.
    """
    from repro.ops.common.unigram_lm import perplexity

    perplexity("warm up the unigram language model table")


__all__ = [
    "SPECIAL_CHARACTERS",
    "cjk_ratio",
    "get_char_ngrams",
    "get_flagged_words",
    "get_ngrams",
    "get_stopwords",
    "get_words_from_text",
    "is_special_character",
    "ngram_repetition_ratio",
    "preload_assets",
    "special_character_ratio",
    "split_lines",
    "split_paragraphs",
    "split_sentences",
    "words_refinement",
]
