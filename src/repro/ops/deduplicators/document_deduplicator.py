"""Exact-hash document deduplicator (MD5/SHA over normalized text)."""

from __future__ import annotations

import hashlib
import re
import string

from repro.core.base_op import Deduplicator
from repro.core.dataset import NestedDataset
from repro.core.registry import OPERATORS
from repro.core.sample import HashKeys


@OPERATORS.register_module("document_deduplicator")
class DocumentDeduplicator(Deduplicator):
    """Remove exact duplicate documents using a cryptographic hash of the text.

    ``lowercase`` and ``ignore_non_character`` normalize the text before
    hashing so trivially-different copies (case changes, punctuation noise)
    are also detected, matching the original OP's options.
    """

    PARAM_SPECS = {
        "lowercase": {"doc": "lowercase the text before hashing"},
        "ignore_non_character": {"doc": "strip punctuation/whitespace before hashing"},
        "hash_func": {"choices": ["md5", "sha256"], "doc": "cryptographic hash function"},
    }

    def __init__(
        self,
        lowercase: bool = False,
        ignore_non_character: bool = False,
        hash_func: str = "md5",
        text_key: str = "text",
        **kwargs,
    ):
        super().__init__(text_key=text_key, **kwargs)
        if hash_func not in ("md5", "sha256"):
            raise ValueError(f"unsupported hash_func {hash_func!r}")
        self.lowercase = lowercase
        self.ignore_non_character = ignore_non_character
        self.hash_func = hash_func
        self._non_char_pattern = re.compile(
            "[" + re.escape(string.punctuation + string.whitespace) + "]"
        )

    def compute_hash(self, sample: dict) -> dict:
        text = self.get_text(sample)
        if self.lowercase:
            text = text.lower()
        if self.ignore_non_character:
            text = self._non_char_pattern.sub("", text)
        digest = getattr(hashlib, self.hash_func)(text.encode("utf-8")).hexdigest()
        sample[HashKeys.hash] = digest
        return sample

    def process(self, dataset: NestedDataset, show_num: int = 0) -> tuple[NestedDataset, list]:
        seen: dict[str, int] = {}
        keep_indices: list[int] = []
        duplicate_pairs: list[tuple[dict, dict]] = []
        for index, sample in enumerate(dataset):
            digest = sample.get(HashKeys.hash)
            if digest in seen:
                if len(duplicate_pairs) < show_num:
                    duplicate_pairs.append((dataset[seen[digest]], sample))
            else:
                seen[digest] = index
                keep_indices.append(index)
        deduped = dataset.select(keep_indices).remove_columns(HashKeys.hash)
        return deduped, duplicate_pairs
