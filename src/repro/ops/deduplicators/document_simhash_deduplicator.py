"""Near-duplicate detection with SimHash fingerprints and Hamming distance."""

from __future__ import annotations

import hashlib

from repro.core.base_op import Deduplicator
from repro.core.dataset import NestedDataset
from repro.core.registry import OPERATORS
from repro.core.sample import HashKeys
from repro.ops.common.helper_funcs import get_ngrams, get_words_from_text, words_refinement

_FINGERPRINT_BITS = 64


def _token_hash(token: str) -> int:
    digest = hashlib.md5(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def hamming_distance(left: int, right: int) -> int:
    """Number of differing bits between two fingerprints."""
    return bin(left ^ right).count("1")


@OPERATORS.register_module("document_simhash_deduplicator")
class DocumentSimhashDeduplicator(Deduplicator):
    """Remove near-duplicates whose SimHash fingerprints are within ``hamming_threshold`` bits.

    SimHash is a vector-based similarity sketch: each word n-gram votes on the
    64 fingerprint bits; similar documents produce fingerprints with a small
    Hamming distance.  Candidate pairs are found by bucketing on fingerprint
    blocks (the standard block-permutation trick).
    """

    PARAM_SPECS = {
        "ngram_size": {"min_value": 1, "doc": "word-shingle size"},
        "hamming_threshold": {
            "min_value": 0,
            "max_value": 64,
            "doc": "maximum Hamming distance (bits) to call two documents duplicates",
        },
        "num_blocks": {"min_value": 1, "max_value": 64, "doc": "fingerprint blocks for bucketing"},
        "lowercase": {"doc": "lowercase text before shingling"},
    }

    def __init__(
        self,
        ngram_size: int = 3,
        hamming_threshold: int = 3,
        num_blocks: int = 4,
        lowercase: bool = True,
        text_key: str = "text",
        **kwargs,
    ):
        super().__init__(text_key=text_key, **kwargs)
        if num_blocks <= hamming_threshold:
            # with <= threshold blocks, two near-duplicates may share no block
            num_blocks = hamming_threshold + 1
        self.ngram_size = ngram_size
        self.hamming_threshold = hamming_threshold
        self.num_blocks = num_blocks
        self.lowercase = lowercase

    def _fingerprint(self, text: str) -> int:
        import numpy as np

        words = words_refinement(
            get_words_from_text(text, lowercase=self.lowercase), lower_case=self.lowercase
        )
        features = get_ngrams(words, self.ngram_size) or [(word,) for word in words]
        if not features:
            return 0
        hashes = np.array(
            [_token_hash(" ".join(feature)) for feature in features], dtype=np.uint64
        )
        # (F, 64) bit matrix; each feature votes +1/-1 on every fingerprint bit
        bit_positions = np.arange(_FINGERPRINT_BITS, dtype=np.uint64)
        bits = (hashes[:, None] >> bit_positions[None, :]) & np.uint64(1)
        votes = 2 * bits.sum(axis=0).astype(np.int64) - len(features)
        fingerprint = 0
        for bit in range(_FINGERPRINT_BITS):
            if votes[bit] > 0:
                fingerprint |= 1 << bit
        return fingerprint

    def compute_hash(self, sample: dict) -> dict:
        sample[HashKeys.simhash] = self._fingerprint(self.get_text(sample))
        return sample

    def _blocks(self, fingerprint: int) -> list[tuple[int, int]]:
        bits_per_block = _FINGERPRINT_BITS // self.num_blocks
        mask = (1 << bits_per_block) - 1
        return [
            (block, (fingerprint >> (block * bits_per_block)) & mask)
            for block in range(self.num_blocks)
        ]

    def process(self, dataset: NestedDataset, show_num: int = 0) -> tuple[NestedDataset, list]:
        fingerprints = [sample.get(HashKeys.simhash, 0) for sample in dataset]
        keep_mask = [True] * len(fingerprints)
        buckets: dict[tuple[int, int], list[int]] = {}
        for index, fingerprint in enumerate(fingerprints):
            for key in self._blocks(fingerprint):
                buckets.setdefault(key, []).append(index)
        duplicate_pairs: list[tuple[dict, dict]] = []
        for indices in buckets.values():
            if len(indices) < 2:
                continue
            for position, anchor in enumerate(indices):
                if not keep_mask[anchor]:
                    continue
                for other in indices[position + 1:]:
                    if not keep_mask[other]:
                        continue
                    distance = hamming_distance(fingerprints[anchor], fingerprints[other])
                    if distance <= self.hamming_threshold:
                        keep_mask[other] = False
                        if len(duplicate_pairs) < show_num:
                            duplicate_pairs.append((dataset[anchor], dataset[other]))
        keep_indices = [index for index, keep in enumerate(keep_mask) if keep]
        deduped = dataset.select(keep_indices).remove_columns(HashKeys.simhash)
        return deduped, duplicate_pairs
