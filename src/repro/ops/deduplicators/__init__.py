"""Deduplicator operators: exact-hash, MinHash-LSH and SimHash based."""

from repro.ops.deduplicators.document_deduplicator import DocumentDeduplicator
from repro.ops.deduplicators.document_minhash_deduplicator import DocumentMinhashDeduplicator
from repro.ops.deduplicators.document_simhash_deduplicator import DocumentSimhashDeduplicator

__all__ = [
    "DocumentDeduplicator",
    "DocumentMinhashDeduplicator",
    "DocumentSimhashDeduplicator",
]
