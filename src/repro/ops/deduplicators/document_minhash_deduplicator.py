"""Near-duplicate detection with MinHash signatures and LSH banding."""

from __future__ import annotations

import hashlib
import struct

from repro.core.base_op import Deduplicator
from repro.core.dataset import NestedDataset
from repro.core.registry import OPERATORS
from repro.core.sample import HashKeys
from repro.ops.common.helper_funcs import get_ngrams, get_words_from_text, words_refinement

_MERSENNE_PRIME = (1 << 61) - 1
_MAX_HASH = (1 << 32) - 1


def _shingle_hash(shingle: tuple[str, ...]) -> int:
    digest = hashlib.md5(" ".join(shingle).encode("utf-8")).digest()
    return struct.unpack("<I", digest[:4])[0]


class _UnionFind:
    """Union-find over sample indices for clustering near-duplicates."""

    def __init__(self, size: int):
        self.parent = list(range(size))

    def find(self, item: int) -> int:
        while self.parent[item] != item:
            self.parent[item] = self.parent[self.parent[item]]
            item = self.parent[item]
        return item

    def union(self, left: int, right: int) -> None:
        root_left, root_right = self.find(left), self.find(right)
        if root_left != root_right:
            self.parent[max(root_left, root_right)] = min(root_left, root_right)


@OPERATORS.register_module("document_minhash_deduplicator")
class DocumentMinhashDeduplicator(Deduplicator):
    """Remove near-duplicate documents using MinHash + locality-sensitive hashing.

    Documents are shingled into word ``ngram_size``-grams, hashed into a
    ``num_permutations``-wide MinHash signature, and bucketed by LSH bands;
    candidate pairs whose estimated Jaccard similarity exceeds
    ``jaccard_threshold`` are clustered and only the first document of each
    cluster is kept.
    """

    def __init__(
        self,
        ngram_size: int = 5,
        num_permutations: int = 64,
        jaccard_threshold: float = 0.7,
        num_bands: int = 16,
        lowercase: bool = True,
        seed: int = 1,
        text_key: str = "text",
        **kwargs,
    ):
        super().__init__(text_key=text_key, **kwargs)
        if num_permutations % num_bands != 0:
            raise ValueError("num_permutations must be divisible by num_bands")
        self.ngram_size = ngram_size
        self.num_permutations = num_permutations
        self.jaccard_threshold = jaccard_threshold
        self.num_bands = num_bands
        self.rows_per_band = num_permutations // num_bands
        self.lowercase = lowercase
        self.seed = seed
        self._permutations = self._generate_permutations()

    def _generate_permutations(self) -> list[tuple[int, int]]:
        import random

        rng = random.Random(self.seed)
        # coefficients are bounded by 2^32 so a*h + b never overflows uint64
        # when the signatures are computed with vectorised numpy arithmetic
        return [
            (rng.randint(1, _MAX_HASH), rng.randint(0, _MAX_HASH))
            for _ in range(self.num_permutations)
        ]

    def _signature(self, text: str) -> list[int]:
        import numpy as np

        words = words_refinement(
            get_words_from_text(text, lowercase=self.lowercase), lower_case=self.lowercase
        )
        shingles = get_ngrams(words, self.ngram_size) or [tuple(words)] if words else []
        if not shingles:
            return [_MAX_HASH] * self.num_permutations
        hashes = np.array([_shingle_hash(shingle) for shingle in shingles], dtype=np.uint64)
        coeff_a = np.array([a for a, _ in self._permutations], dtype=np.uint64)
        coeff_b = np.array([b for _, b in self._permutations], dtype=np.uint64)
        # (P, S) matrix of permuted hashes, reduced to the row-wise minimum
        with np.errstate(over="ignore"):
            permuted = (coeff_a[:, None] * hashes[None, :] + coeff_b[:, None]) % _MERSENNE_PRIME
        signature = (permuted.min(axis=1) & np.uint64(_MAX_HASH)).astype(np.uint64)
        return [int(value) for value in signature]

    def compute_hash(self, sample: dict) -> dict:
        sample[HashKeys.minhash] = self._signature(self.get_text(sample))
        return sample

    @staticmethod
    def _estimated_jaccard(sig_a: list[int], sig_b: list[int]) -> float:
        matches = sum(1 for a, b in zip(sig_a, sig_b) if a == b)
        return matches / len(sig_a) if sig_a else 0.0

    def process(self, dataset: NestedDataset, show_num: int = 0) -> tuple[NestedDataset, list]:
        signatures = [sample.get(HashKeys.minhash) or [] for sample in dataset]
        union_find = _UnionFind(len(signatures))
        buckets: dict[tuple[int, tuple[int, ...]], list[int]] = {}
        for index, signature in enumerate(signatures):
            if not signature:
                continue
            for band in range(self.num_bands):
                start = band * self.rows_per_band
                key = (band, tuple(signature[start:start + self.rows_per_band]))
                buckets.setdefault(key, []).append(index)
        duplicate_pairs: list[tuple[dict, dict]] = []
        for indices in buckets.values():
            if len(indices) < 2:
                continue
            anchor = indices[0]
            for other in indices[1:]:
                if union_find.find(anchor) == union_find.find(other):
                    continue
                similarity = self._estimated_jaccard(signatures[anchor], signatures[other])
                if similarity >= self.jaccard_threshold:
                    union_find.union(anchor, other)
                    if len(duplicate_pairs) < show_num:
                        duplicate_pairs.append((dataset[anchor], dataset[other]))
        keep_indices = [
            index for index in range(len(signatures)) if union_find.find(index) == index
        ]
        deduped = dataset.select(keep_indices).remove_columns(HashKeys.minhash)
        return deduped, duplicate_pairs
