"""Near-duplicate detection with MinHash signatures and LSH banding."""

from __future__ import annotations

import hashlib
import struct

from repro.core.base_op import Deduplicator
from repro.core.batch import get_text_column
from repro.core.dataset import NestedDataset
from repro.core.registry import OPERATORS
from repro.core.sample import HashKeys
from repro.ops.common.helper_funcs import get_words_from_text, words_refinement

_MERSENNE_PRIME = (1 << 61) - 1
_MAX_HASH = (1 << 32) - 1


def _shingle_hash(shingle: tuple[str, ...]) -> int:
    digest = hashlib.md5(" ".join(shingle).encode("utf-8")).digest()
    return struct.unpack("<I", digest[:4])[0]


def _bulk_shingle_hashes(keys: list[str]):
    """Hash many joined shingles in one pass, returning a uint64 numpy array.

    Equivalent to ``[_shingle_hash(...)]`` per shingle (same md5, same 4
    little-endian lead bytes) but the digests are concatenated and decoded
    with a single ``np.frombuffer`` instead of one ``struct.unpack`` each.
    """
    import numpy as np

    md5 = hashlib.md5
    blob = b"".join(md5(key.encode("utf-8")).digest()[:4] for key in keys)
    return np.frombuffer(blob, dtype="<u4").astype(np.uint64)


class _UnionFind:
    """Union-find over sample indices for clustering near-duplicates."""

    def __init__(self, size: int):
        self.parent = list(range(size))

    def find(self, item: int) -> int:
        while self.parent[item] != item:
            self.parent[item] = self.parent[self.parent[item]]
            item = self.parent[item]
        return item

    def union(self, left: int, right: int) -> None:
        root_left, root_right = self.find(left), self.find(right)
        if root_left != root_right:
            self.parent[max(root_left, root_right)] = min(root_left, root_right)


@OPERATORS.register_module("document_minhash_deduplicator")
class DocumentMinhashDeduplicator(Deduplicator):
    """Remove near-duplicate documents using MinHash + locality-sensitive hashing.

    Documents are shingled into word ``ngram_size``-grams, hashed into a
    ``num_permutations``-wide MinHash signature, and bucketed by LSH bands;
    candidate pairs whose estimated Jaccard similarity exceeds
    ``jaccard_threshold`` are clustered and only the first document of each
    cluster is kept.
    """

    PARAM_SPECS = {
        "ngram_size": {"min_value": 1, "doc": "word-shingle size"},
        "num_permutations": {"min_value": 1, "doc": "MinHash signature width"},
        "jaccard_threshold": {
            "min_value": 0.0,
            "max_value": 1.0,
            "doc": "estimated-similarity threshold for clustering",
        },
        "num_bands": {"min_value": 1, "doc": "LSH bands (must divide num_permutations)"},
        "lowercase": {"doc": "lowercase text before shingling"},
        "seed": {"doc": "permutation RNG seed"},
    }

    def __init__(
        self,
        ngram_size: int = 5,
        num_permutations: int = 64,
        jaccard_threshold: float = 0.7,
        num_bands: int = 16,
        lowercase: bool = True,
        seed: int = 1,
        text_key: str = "text",
        **kwargs,
    ):
        super().__init__(text_key=text_key, **kwargs)
        if num_permutations % num_bands != 0:
            raise ValueError("num_permutations must be divisible by num_bands")
        self.ngram_size = ngram_size
        self.num_permutations = num_permutations
        self.jaccard_threshold = jaccard_threshold
        self.num_bands = num_bands
        self._rows_per_band = num_permutations // num_bands
        self.lowercase = lowercase
        self.seed = seed
        self._permutations = self._generate_permutations()

    def _generate_permutations(self) -> list[tuple[int, int]]:
        import random

        rng = random.Random(self.seed)
        # coefficients are bounded by 2^32 so a*h + b never overflows uint64
        # when the signatures are computed with vectorised numpy arithmetic
        return [
            (rng.randint(1, _MAX_HASH), rng.randint(0, _MAX_HASH))
            for _ in range(self.num_permutations)
        ]

    def _shingle_keys(self, text: str) -> list[str]:
        """Joined word shingles of a text (empty when the text has no words).

        Builds the space-joined keys directly from word slices — identical to
        ``" ".join`` over :func:`get_ngrams` tuples, without materialising the
        tuples.
        """
        words = words_refinement(
            get_words_from_text(text, lowercase=self.lowercase), lower_case=self.lowercase
        )
        if not words:
            return []
        total = len(words) - self.ngram_size + 1
        if total <= 0:
            return [" ".join(words)]
        join = " ".join
        size = self.ngram_size
        return [join(words[index:index + size]) for index in range(total)]

    #: unique-shingle cap per signature group; bounds the (U, P) permuted
    #: matrix to a few MB regardless of the caller's batch size
    _MAX_GROUP_SHINGLES = 1 << 11

    def _signatures_batched(self, texts: list[str]) -> list[list[int]]:
        """MinHash signatures for many texts with a bulk-hash pass per group.

        All distinct shingles of a group of documents are md5-hashed once
        (duplicate shingles — common in repetitive web text — are hashed a
        single time), then each document's signature reduces its shingle-hash
        vector under the shared permutations.  Signatures are bit-identical
        to the per-shingle ``_shingle_hash`` loop this replaces.
        """
        signatures: list[list[int]] = []
        group: list[list[str]] = []
        unique: dict[str, int] = {}
        for text in texts:
            keys = self._shingle_keys(text)
            group.append(keys)
            for key in keys:
                if key not in unique:
                    unique[key] = len(unique)
            if len(unique) >= self._MAX_GROUP_SHINGLES:
                signatures.extend(self._signatures_group(group, unique))
                group, unique = [], {}
        if group:
            signatures.extend(self._signatures_group(group, unique))
        return signatures

    def _signatures_group(self, doc_keys: list[list[str]], unique: dict[str, int]) -> list[list[int]]:
        import numpy as np

        hashes = _bulk_shingle_hashes(list(unique))
        coeff_a = np.array([a for a, _ in self._permutations], dtype=np.uint64)[None, :]
        coeff_b = np.array([b for _, b in self._permutations], dtype=np.uint64)[None, :]
        # permute every *unique* shingle hash once for the whole group (row
        # chunks bound the multiply temporaries); layout is (U, P) so a
        # document's gather reads contiguous rows
        permuted = np.empty((hashes.size, self.num_permutations), dtype=np.uint64)
        chunk = 1 << 9
        with np.errstate(over="ignore"):
            for start in range(0, hashes.size, chunk):
                stop = start + chunk
                permuted[start:stop] = (
                    hashes[start:stop, None] * coeff_a + coeff_b
                ) % _MERSENNE_PRIME
        mask = np.uint64(_MAX_HASH)
        empty = [_MAX_HASH] * self.num_permutations
        signatures: list[list[int]] = []
        for keys in doc_keys:
            if not keys:
                signatures.append(list(empty))
                continue
            indices = np.fromiter((unique[key] for key in keys), dtype=np.intp, count=len(keys))
            signature = (permuted[indices].min(axis=0) & mask).astype(np.uint64)
            signatures.append([int(value) for value in signature])
        return signatures

    def _signature(self, text: str) -> list[int]:
        return self._signatures_batched([text])[0]

    def compute_hash(self, sample: dict) -> dict:
        sample[HashKeys.minhash] = self._signature(self.get_text(sample))
        return sample

    def compute_hash_batched(self, samples: dict) -> dict:
        texts = get_text_column(samples, self.text_key)
        if texts is None:
            return super().compute_hash_batched(samples)
        samples[HashKeys.minhash] = self._signatures_batched(texts)
        return samples

    @staticmethod
    def _estimated_jaccard(sig_a: list[int], sig_b: list[int]) -> float:
        matches = sum(1 for a, b in zip(sig_a, sig_b) if a == b)
        return matches / len(sig_a) if sig_a else 0.0

    def process(self, dataset: NestedDataset, show_num: int = 0) -> tuple[NestedDataset, list]:
        signatures = [sample.get(HashKeys.minhash) or [] for sample in dataset]
        union_find = _UnionFind(len(signatures))
        buckets: dict[tuple[int, tuple[int, ...]], list[int]] = {}
        for index, signature in enumerate(signatures):
            if not signature:
                continue
            for band in range(self.num_bands):
                start = band * self._rows_per_band
                key = (band, tuple(signature[start:start + self._rows_per_band]))
                buckets.setdefault(key, []).append(index)
        duplicate_pairs: list[tuple[dict, dict]] = []
        for indices in buckets.values():
            if len(indices) < 2:
                continue
            anchor = indices[0]
            for other in indices[1:]:
                if union_find.find(anchor) == union_find.find(other):
                    continue
                similarity = self._estimated_jaccard(signatures[anchor], signatures[other])
                if similarity >= self.jaccard_threshold:
                    union_find.union(anchor, other)
                    if len(duplicate_pairs) < show_num:
                        duplicate_pairs.append((dataset[anchor], dataset[other]))
        keep_indices = [
            index for index in range(len(signatures)) if union_find.find(index) == index
        ]
        deduped = dataset.select(keep_indices).remove_columns(HashKeys.minhash)
        return deduped, duplicate_pairs
