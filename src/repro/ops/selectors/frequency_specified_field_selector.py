"""Selector balancing samples across the value groups of a field."""

from __future__ import annotations

from collections import defaultdict

from repro.core.base_op import Selector
from repro.core.dataset import NestedDataset
from repro.core.registry import OPERATORS
from repro.core.sample import get_field


@OPERATORS.register_module("frequency_specified_field_selector")
class FrequencySpecifiedFieldSelector(Selector):
    """Keep the most frequent value groups of ``field_key`` (optionally capped per group).

    ``top_ratio``/``topk`` bound how many distinct groups survive (ranked by
    frequency), and ``max_per_group`` optionally caps how many samples each
    surviving group contributes, producing a more balanced subset.
    """

    PARAM_SPECS = {
        "field_key": {"doc": "dotted path of the field to group by"},
        "top_ratio": {"min_value": 0.0, "max_value": 1.0, "doc": "keep the most frequent groups covering this fraction"},
        "topk": {"min_value": 1, "doc": "keep the topk most frequent groups"},
        "max_per_group": {"min_value": 1, "doc": "cap on samples kept per group"},
    }

    def __init__(
        self,
        field_key: str = "",
        top_ratio: float | None = None,
        topk: int | None = None,
        max_per_group: int | None = None,
        text_key: str = "text",
        **kwargs,
    ):
        super().__init__(text_key=text_key, **kwargs)
        if not field_key:
            raise ValueError("field_key must be provided")
        self.field_key = field_key
        self.top_ratio = top_ratio
        self.topk = topk
        self.max_per_group = max_per_group

    def process(self, dataset: NestedDataset) -> NestedDataset:
        if len(dataset) == 0:
            return dataset
        groups: dict = defaultdict(list)
        for index, sample in enumerate(dataset):
            value = get_field(sample, self.field_key)
            if isinstance(value, list):
                value = tuple(value)
            groups[value].append(index)
        ranked = sorted(groups.items(), key=lambda item: len(item[1]), reverse=True)
        keep_groups = len(ranked)
        if self.topk is not None:
            keep_groups = min(keep_groups, self.topk)
        elif self.top_ratio is not None:
            keep_groups = max(1, int(round(len(ranked) * self.top_ratio)))
        keep_indices: list[int] = []
        for _, indices in ranked[:keep_groups]:
            if self.max_per_group is not None:
                indices = indices[: self.max_per_group]
            keep_indices.extend(indices)
        return dataset.select(sorted(keep_indices))
