"""Selector keeping the top-k samples ranked by a (numeric) field."""

from __future__ import annotations

from repro.core.base_op import Selector
from repro.core.dataset import NestedDataset
from repro.core.registry import OPERATORS
from repro.core.sample import get_field


@OPERATORS.register_module("topk_specified_field_selector")
class TopkSpecifiedFieldSelector(Selector):
    """Keep the samples with the largest (or smallest) values of ``field_key``.

    Either ``top_ratio`` (fraction of the dataset) or ``topk`` (absolute
    count) must be provided; samples whose field is missing or non-numeric
    sort last.
    """

    PARAM_SPECS = {
        "field_key": {"doc": "dotted field path to rank by (e.g. __stats__.num_words)"},
        "top_ratio": {"min_value": 0.0, "max_value": 1.0, "doc": "fraction of samples to keep"},
        "topk": {"min_value": 1, "doc": "absolute number of samples to keep"},
        "reverse": {"doc": "True keeps the largest values first"},
    }

    def __init__(
        self,
        field_key: str = "",
        top_ratio: float | None = None,
        topk: int | None = None,
        reverse: bool = True,
        text_key: str = "text",
        **kwargs,
    ):
        super().__init__(text_key=text_key, **kwargs)
        if not field_key:
            raise ValueError("field_key must be provided")
        if top_ratio is None and topk is None:
            raise ValueError("one of top_ratio / topk must be provided")
        self.field_key = field_key
        self.top_ratio = top_ratio
        self.topk = topk
        self.reverse = reverse

    def process(self, dataset: NestedDataset) -> NestedDataset:
        length = len(dataset)
        if length == 0:
            return dataset
        count = self.topk if self.topk is not None else int(round(length * self.top_ratio))
        count = max(0, min(count, length))

        def sort_key(index: int) -> float:
            value = get_field(dataset[index], self.field_key)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                return float("-inf") if self.reverse else float("inf")
            return float(value)

        order = sorted(range(length), key=sort_key, reverse=self.reverse)
        return dataset.select(sorted(order[:count]))
