"""Selector keeping a random (seeded) subset of the dataset."""

from __future__ import annotations

import random

from repro.core.base_op import Selector
from repro.core.dataset import NestedDataset
from repro.core.registry import OPERATORS


@OPERATORS.register_module("random_selector")
class RandomSelector(Selector):
    """Keep a uniformly random subset of ``select_num`` samples (or ``select_ratio``)."""

    PARAM_SPECS = {
        "select_ratio": {"min_value": 0.0, "max_value": 1.0, "doc": "fraction of samples to keep"},
        "select_num": {"min_value": 1, "doc": "absolute number of samples to keep"},
        "seed": {"doc": "selection RNG seed"},
    }

    def __init__(
        self,
        select_ratio: float | None = None,
        select_num: int | None = None,
        seed: int = 42,
        text_key: str = "text",
        **kwargs,
    ):
        super().__init__(text_key=text_key, **kwargs)
        if select_ratio is None and select_num is None:
            raise ValueError("one of select_ratio / select_num must be provided")
        self.select_ratio = select_ratio
        self.select_num = select_num
        self.seed = seed

    def process(self, dataset: NestedDataset) -> NestedDataset:
        length = len(dataset)
        if length == 0:
            return dataset
        if self.select_num is not None:
            count = min(self.select_num, length)
        else:
            count = int(round(length * self.select_ratio))
        count = max(0, min(count, length))
        indices = random.Random(self.seed).sample(range(length), count)
        return dataset.select(sorted(indices))
