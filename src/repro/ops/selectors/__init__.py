"""Selector operators: dataset-level subset selection."""

from repro.ops.selectors.frequency_specified_field_selector import FrequencySpecifiedFieldSelector
from repro.ops.selectors.random_selector import RandomSelector
from repro.ops.selectors.range_specified_field_selector import RangeSpecifiedFieldSelector
from repro.ops.selectors.topk_specified_field_selector import TopkSpecifiedFieldSelector

__all__ = [
    "FrequencySpecifiedFieldSelector",
    "RandomSelector",
    "RangeSpecifiedFieldSelector",
    "TopkSpecifiedFieldSelector",
]
