"""Selector keeping samples whose field value falls between two quantiles."""

from __future__ import annotations

from repro.core.base_op import Selector
from repro.core.dataset import NestedDataset
from repro.core.registry import OPERATORS
from repro.core.sample import get_field


@OPERATORS.register_module("range_specified_field_selector")
class RangeSpecifiedFieldSelector(Selector):
    """Keep samples whose numeric ``field_key`` value lies within a quantile band.

    ``lower_percentile`` / ``upper_percentile`` are in [0, 1]; the band is
    computed over the samples that actually carry a numeric value.
    """

    PARAM_SPECS = {
        "field_key": {"doc": "dotted path of the numeric field to rank by"},
        "lower_percentile": {"min_value": 0.0, "max_value": 1.0, "doc": "lower bound of the kept value range"},
        "upper_percentile": {"min_value": 0.0, "max_value": 1.0, "doc": "upper bound of the kept value range"},
    }

    def __init__(
        self,
        field_key: str = "",
        lower_percentile: float = 0.0,
        upper_percentile: float = 1.0,
        text_key: str = "text",
        **kwargs,
    ):
        super().__init__(text_key=text_key, **kwargs)
        if not field_key:
            raise ValueError("field_key must be provided")
        if not 0.0 <= lower_percentile <= upper_percentile <= 1.0:
            raise ValueError("percentiles must satisfy 0 <= lower <= upper <= 1")
        self.field_key = field_key
        self.lower_percentile = lower_percentile
        self.upper_percentile = upper_percentile

    def process(self, dataset: NestedDataset) -> NestedDataset:
        values: list[tuple[int, float]] = []
        for index, sample in enumerate(dataset):
            value = get_field(sample, self.field_key)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                values.append((index, float(value)))
        if not values:
            return dataset.select([])
        sorted_values = sorted(value for _, value in values)
        lower_index = int(self.lower_percentile * (len(sorted_values) - 1))
        upper_index = int(self.upper_percentile * (len(sorted_values) - 1))
        lower_bound = sorted_values[lower_index]
        upper_bound = sorted_values[upper_index]
        keep = [index for index, value in values if lower_bound <= value <= upper_bound]
        return dataset.select(sorted(keep))
