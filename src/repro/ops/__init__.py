"""The standardized operator pool: Mappers, Filters, Deduplicators and Selectors.

Importing this package registers every built-in operator in
:data:`repro.core.registry.OPERATORS`, so data recipes can instantiate them by
name via :func:`load_ops`.
"""

from repro.core.registry import OPERATORS
from repro.ops import deduplicators, filters, mappers, selectors  # noqa: F401  (registration side effects)


def split_process_entry(entry: dict | str) -> tuple[str, dict]:
    """Return ``(operator_name, params)`` of one recipe ``process`` entry.

    An entry is either an operator name (string) or a single-key dict mapping
    the operator name to its keyword arguments.
    """
    if isinstance(entry, str):
        return entry, {}
    if isinstance(entry, dict) and len(entry) == 1:
        name, params = next(iter(entry.items()))
        return name, dict(params or {})
    raise ValueError(f"invalid process entry: {entry!r}")


def load_ops(process_list: list[dict | str]) -> list:
    """Instantiate operators from a recipe's ``process`` list.

    Each entry is either an operator name (string) or a single-key dict
    mapping the operator name to its keyword arguments, e.g.::

        load_ops([
            "whitespace_normalization_mapper",
            {"text_length_filter": {"min_len": 50}},
        ])
    """
    ops = []
    for entry in process_list:
        name, params = split_process_entry(entry)
        op_cls = OPERATORS.get(name)
        ops.append(op_cls(**params))
    return ops


def build_ops(
    process_list: list[dict | str],
    op_fusion: bool = False,
    batch_size: int | None = None,
) -> list:
    """Instantiate a recipe's operator list, optionally fusing it.

    The single construction path shared by the Executor, the parent side of
    :class:`repro.parallel.WorkerPool` and the spawn-mode worker initializer.
    These must produce *index-identical* op lists — parallel tasks address
    operators by position — so none of them may build the list by hand.
    ``batch_size`` applies a recipe-level batch size to every op that did not
    set its own (an execution knob; results and fingerprints are unaffected).
    """
    ops = load_ops(process_list)
    if batch_size is not None:
        for op in ops:
            op.set_batch_size(batch_size)
    if op_fusion:
        from repro.core.fusion import fuse_operators

        ops = fuse_operators(ops)
    return ops


__all__ = [
    "OPERATORS",
    "build_ops",
    "deduplicators",
    "filters",
    "load_ops",
    "mappers",
    "selectors",
    "split_process_entry",
]
