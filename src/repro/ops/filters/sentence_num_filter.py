"""Filter on the number of sentences in the text."""

from __future__ import annotations

import sys

from repro.core.base_op import Filter
from repro.core.context import ContextKeys, get_or_compute
from repro.core.registry import OPERATORS
from repro.core.sample import StatsKeys, ensure_stats
from repro.ops.common.helper_funcs import split_sentences


@OPERATORS.register_module("sentence_num_filter")
class SentenceNumFilter(Filter):
    """Keep samples whose sentence count is within ``[min_num, max_num]``."""

    context_keys = (ContextKeys.sentences,)

    PARAM_SPECS = {
        "min_num": {"min_value": 0, "doc": "minimum number of sentences"},
        "max_num": {"min_value": 0, "doc": "maximum number of sentences"},
    }

    def __init__(
        self,
        min_num: int = 1,
        max_num: int = sys.maxsize,
        text_key: str = "text",
        **kwargs,
    ):
        super().__init__(text_key=text_key, **kwargs)
        self.min_num = min_num
        self.max_num = max_num

    def compute_stats(self, sample: dict, context: bool = False) -> dict:
        stats = ensure_stats(sample)
        if StatsKeys.num_sentences in stats:
            return sample
        text = self.get_text(sample)
        sentences = get_or_compute(sample, ContextKeys.sentences, lambda: split_sentences(text))
        stats[StatsKeys.num_sentences] = len(sentences)
        return sample

    def process(self, sample: dict) -> bool:
        value = sample.get("__stats__", {}).get(StatsKeys.num_sentences, 0)
        return self.min_num <= value <= self.max_num
