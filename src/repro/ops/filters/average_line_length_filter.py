"""Filter on the average line length of a sample."""

from __future__ import annotations

import sys

from repro.core.base_op import Filter
from repro.core.context import ContextKeys, get_or_compute
from repro.core.registry import OPERATORS
from repro.core.sample import StatsKeys, ensure_stats
from repro.ops.common.helper_funcs import split_lines


@OPERATORS.register_module("average_line_length_filter")
class AverageLineLengthFilter(Filter):
    """Keep samples whose average line length (chars) is within ``[min_len, max_len]``."""

    context_keys = (ContextKeys.lines,)

    PARAM_SPECS = {
        "min_len": {"min_value": 0, "doc": "minimum average line length (chars)"},
        "max_len": {"min_value": 0, "doc": "maximum average line length (chars)"},
    }

    def __init__(
        self,
        min_len: int = 10,
        max_len: int = sys.maxsize,
        text_key: str = "text",
        **kwargs,
    ):
        super().__init__(text_key=text_key, **kwargs)
        self.min_len = min_len
        self.max_len = max_len

    def compute_stats(self, sample: dict, context: bool = False) -> dict:
        stats = ensure_stats(sample)
        if StatsKeys.avg_line_length in stats:
            return sample
        text = self.get_text(sample)
        lines = get_or_compute(sample, ContextKeys.lines, lambda: split_lines(text))
        stats[StatsKeys.avg_line_length] = (
            sum(len(line) for line in lines) / len(lines) if lines else 0.0
        )
        return sample

    def process(self, sample: dict) -> bool:
        value = sample.get("__stats__", {}).get(StatsKeys.avg_line_length, 0.0)
        return self.min_len <= value <= self.max_len
