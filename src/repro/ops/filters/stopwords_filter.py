"""Filter on the ratio of stop-words (a proxy for natural prose)."""

from __future__ import annotations

from repro.core.base_op import Filter
from repro.core.batch import ensure_stats_column, get_text_column, stats_column_view
from repro.core.context import ContextKeys, get_or_compute, get_or_compute_column
from repro.core.registry import OPERATORS
from repro.core.sample import StatsKeys, ensure_stats
from repro.ops.common.helper_funcs import get_words_from_text, words_refinement
from repro.ops.common.stopwords import get_stopwords


@OPERATORS.register_module("stopwords_filter")
class StopwordsFilter(Filter):
    """Keep samples whose stop-word ratio is at least ``min_ratio``.

    Natural prose contains a substantial fraction of function words; keyword
    lists, tables and code contain almost none.
    """

    context_keys = (ContextKeys.words, ContextKeys.refined_words)

    PARAM_SPECS = {
        "lang": {"choices": ("en", "zh", "all"), "doc": "stop-word list to use"},
        "min_ratio": {"min_value": 0.0, "max_value": 1.0, "doc": "minimum stop-word ratio"},
        "stopwords": {"doc": "custom stop-word list overriding the built-in one"},
    }

    def __init__(
        self,
        lang: str = "en",
        min_ratio: float = 0.3,
        stopwords: list[str] | None = None,
        text_key: str = "text",
        **kwargs,
    ):
        super().__init__(text_key=text_key, **kwargs)
        self.lang = lang
        self.min_ratio = min_ratio
        self.stopwords = set(stopwords) if stopwords else get_stopwords(lang)

    def compute_stats(self, sample: dict, context: bool = False) -> dict:
        stats = ensure_stats(sample)
        if StatsKeys.stopwords_ratio in stats:
            return sample
        text = self.get_text(sample)
        words = get_or_compute(sample, ContextKeys.words, lambda: get_words_from_text(text))
        refined = get_or_compute(
            sample, ContextKeys.refined_words, lambda: words_refinement(words)
        )
        hits = sum(1 for word in refined if word in self.stopwords)
        stats[StatsKeys.stopwords_ratio] = hits / len(refined) if refined else 0.0
        return sample

    def compute_stats_batched(self, samples: dict, context: dict | None = None) -> dict:
        texts = get_text_column(samples, self.text_key)
        if texts is None:
            return super().compute_stats_batched(samples, context=context)
        words_column = get_or_compute_column(
            context, ContextKeys.words, lambda: [get_words_from_text(t) for t in texts]
        )
        refined_column = get_or_compute_column(
            context, ContextKeys.refined_words, lambda: [words_refinement(w) for w in words_column]
        )
        contains = self.stopwords.__contains__
        for stats, refined in zip(ensure_stats_column(samples), refined_column):
            if StatsKeys.stopwords_ratio in stats:
                continue
            hits = sum(map(contains, refined))
            stats[StatsKeys.stopwords_ratio] = hits / len(refined) if refined else 0.0
        return samples

    def process_batched(self, samples: dict) -> list[bool]:
        min_ratio = self.min_ratio
        return [
            stats.get(StatsKeys.stopwords_ratio, 0.0) >= min_ratio
            for stats in stats_column_view(samples)
        ]

    def process(self, sample: dict) -> bool:
        value = sample.get("__stats__", {}).get(StatsKeys.stopwords_ratio, 0.0)
        return value >= self.min_ratio
