"""Filter on the ratio of alphanumeric characters (or alphabetic tokens)."""

from __future__ import annotations

import sys

from repro.core.base_op import Filter
from repro.core.batch import ensure_stats_column, get_text_column, stats_column_view
from repro.core.context import ContextKeys, get_or_compute, get_or_compute_column
from repro.core.registry import OPERATORS
from repro.core.sample import StatsKeys, ensure_stats
from repro.ops.common.helper_funcs import get_words_from_text


@OPERATORS.register_module("alphanumeric_filter")
class AlphanumericFilter(Filter):
    """Keep samples whose alphanumeric ratio lies within ``[min_ratio, max_ratio]``.

    With ``tokenization=True`` the ratio of alphabetic *tokens* over all tokens
    is used instead of the character-level ratio.
    """

    context_keys = (ContextKeys.words,)

    PARAM_SPECS = {
        "tokenization": {"doc": "use token-level instead of character-level ratio"},
        "min_ratio": {"min_value": 0.0, "doc": "minimum alphanumeric ratio"},
        "max_ratio": {"min_value": 0.0, "doc": "maximum alphanumeric ratio"},
    }

    def __init__(
        self,
        tokenization: bool = False,
        min_ratio: float = 0.25,
        max_ratio: float = sys.float_info.max,
        text_key: str = "text",
        **kwargs,
    ):
        super().__init__(text_key=text_key, **kwargs)
        self.tokenization = tokenization
        self.min_ratio = min_ratio
        self.max_ratio = max_ratio

    def compute_stats(self, sample: dict, context: bool = False) -> dict:
        stats = ensure_stats(sample)
        key = StatsKeys.alpha_token_ratio if self.tokenization else StatsKeys.alnum_ratio
        if key in stats:
            return sample
        text = self.get_text(sample)
        if self.tokenization:
            words = get_or_compute(sample, ContextKeys.words, lambda: get_words_from_text(text))
            alpha = sum(1 for word in words if any(char.isalpha() for char in word))
            stats[key] = alpha / len(words) if words else 0.0
        else:
            alnum = sum(1 for char in text if char.isalnum())
            stats[key] = alnum / len(text) if text else 0.0
        return sample

    def compute_stats_batched(self, samples: dict, context: dict | None = None) -> dict:
        texts = get_text_column(samples, self.text_key)
        if texts is None:
            return super().compute_stats_batched(samples, context=context)
        key = StatsKeys.alpha_token_ratio if self.tokenization else StatsKeys.alnum_ratio
        stats_column = ensure_stats_column(samples)
        if self.tokenization:
            words_column = get_or_compute_column(
                context, ContextKeys.words, lambda: [get_words_from_text(t) for t in texts]
            )
            for stats, words in zip(stats_column, words_column):
                if key in stats:
                    continue
                alpha = sum(1 for word in words if any(char.isalpha() for char in word))
                stats[key] = alpha / len(words) if words else 0.0
        else:
            isalnum = str.isalnum
            for stats, text in zip(stats_column, texts):
                if key not in stats:
                    stats[key] = sum(map(isalnum, text)) / len(text) if text else 0.0
        return samples

    def process_batched(self, samples: dict) -> list[bool]:
        key = StatsKeys.alpha_token_ratio if self.tokenization else StatsKeys.alnum_ratio
        min_ratio, max_ratio = self.min_ratio, self.max_ratio
        return [
            min_ratio <= stats.get(key, 0.0) <= max_ratio
            for stats in stats_column_view(samples)
        ]

    def process(self, sample: dict) -> bool:
        key = StatsKeys.alpha_token_ratio if self.tokenization else StatsKeys.alnum_ratio
        ratio = sample.get("__stats__", {}).get(key, 0.0)
        return self.min_ratio <= ratio <= self.max_ratio
