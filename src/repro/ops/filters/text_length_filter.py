"""Filter on the character length of the text."""

from __future__ import annotations

import sys

from repro.core.base_op import Filter
from repro.core.registry import OPERATORS
from repro.core.sample import StatsKeys, ensure_stats


@OPERATORS.register_module("text_length_filter")
class TextLengthFilter(Filter):
    """Keep samples whose text length (characters) is within ``[min_len, max_len]``."""

    def __init__(
        self,
        min_len: int = 10,
        max_len: int = sys.maxsize,
        text_key: str = "text",
        **kwargs,
    ):
        super().__init__(text_key=text_key, **kwargs)
        self.min_len = min_len
        self.max_len = max_len

    def compute_stats(self, sample: dict, context: bool = False) -> dict:
        stats = ensure_stats(sample)
        if StatsKeys.text_len in stats:
            return sample
        stats[StatsKeys.text_len] = len(self.get_text(sample))
        return sample

    def process(self, sample: dict) -> bool:
        value = sample.get("__stats__", {}).get(StatsKeys.text_len, 0)
        return self.min_len <= value <= self.max_len
