"""Filter on the character length of the text."""

from __future__ import annotations

import sys

from repro.core.base_op import Filter
from repro.core.batch import ensure_stats_column, get_text_column, stats_column_view
from repro.core.registry import OPERATORS
from repro.core.sample import StatsKeys, ensure_stats


@OPERATORS.register_module("text_length_filter")
class TextLengthFilter(Filter):
    """Keep samples whose text length (characters) is within ``[min_len, max_len]``."""

    PARAM_SPECS = {
        "min_len": {"min_value": 0, "doc": "minimum text length in characters"},
        "max_len": {"min_value": 0, "doc": "maximum text length in characters"},
    }

    def __init__(
        self,
        min_len: int = 10,
        max_len: int = sys.maxsize,
        text_key: str = "text",
        **kwargs,
    ):
        super().__init__(text_key=text_key, **kwargs)
        self.min_len = min_len
        self.max_len = max_len

    def compute_stats(self, sample: dict, context: bool = False) -> dict:
        stats = ensure_stats(sample)
        if StatsKeys.text_len in stats:
            return sample
        stats[StatsKeys.text_len] = len(self.get_text(sample))
        return sample

    def compute_stats_batched(self, samples: dict, context: dict | None = None) -> dict:
        texts = get_text_column(samples, self.text_key)
        if texts is None:
            return super().compute_stats_batched(samples, context=context)
        for stats, text in zip(ensure_stats_column(samples), texts):
            if StatsKeys.text_len not in stats:
                stats[StatsKeys.text_len] = len(text)
        return samples

    def process_batched(self, samples: dict) -> list[bool]:
        min_len, max_len = self.min_len, self.max_len
        return [
            min_len <= stats.get(StatsKeys.text_len, 0) <= max_len
            for stats in stats_column_view(samples)
        ]

    def process(self, sample: dict) -> bool:
        value = sample.get("__stats__", {}).get(StatsKeys.text_len, 0)
        return self.min_len <= value <= self.max_len
