"""Filter keeping samples whose (possibly nested) field matches target values."""

from __future__ import annotations

from repro.core.base_op import Filter
from repro.core.registry import OPERATORS
from repro.core.sample import MISSING, ensure_stats, get_field


@OPERATORS.register_module("specified_field_filter")
class SpecifiedFieldFilter(Filter):
    """Keep samples whose ``field_key`` value is one of ``target_values``.

    List-valued fields pass when all their elements are in the target set,
    matching the behaviour of the original meta-tag filter (used e.g. to keep
    only samples tagged ``language == "EN"``).
    """

    PARAM_SPECS = {
        "field_key": {"doc": "dotted path of the field to test"},
        "target_values": {"doc": "whitelist of values the field must take"},
    }

    def __init__(
        self,
        field_key: str = "",
        target_values: list | None = None,
        text_key: str = "text",
        **kwargs,
    ):
        super().__init__(text_key=text_key, **kwargs)
        self.field_key = field_key
        self.target_values = list(target_values) if target_values else []

    def compute_stats(self, sample: dict, context: bool = False) -> dict:
        ensure_stats(sample)
        return sample

    def process(self, sample: dict) -> bool:
        if not self.field_key or not self.target_values:
            return True
        # a dotted path with a missing leaf (or intermediate) counts as
        # "field absent" and is filtered; a present None is a real value and
        # may legitimately match a None in target_values
        value = get_field(sample, self.field_key, MISSING)
        if value is MISSING:
            return False
        if isinstance(value, (list, tuple)):
            return all(item in self.target_values for item in value) and bool(value)
        return value in self.target_values
