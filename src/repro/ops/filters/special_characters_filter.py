"""Filter on the ratio of special (non-alphanumeric, non-space) characters."""

from __future__ import annotations

from repro.core.base_op import Filter
from repro.core.registry import OPERATORS
from repro.core.sample import StatsKeys, ensure_stats
from repro.ops.common.special_characters import special_character_ratio


@OPERATORS.register_module("special_characters_filter")
class SpecialCharactersFilter(Filter):
    """Keep samples whose special-character ratio is within ``[min_ratio, max_ratio]``."""

    def __init__(
        self,
        min_ratio: float = 0.0,
        max_ratio: float = 0.25,
        text_key: str = "text",
        **kwargs,
    ):
        super().__init__(text_key=text_key, **kwargs)
        self.min_ratio = min_ratio
        self.max_ratio = max_ratio

    def compute_stats(self, sample: dict, context: bool = False) -> dict:
        stats = ensure_stats(sample)
        if StatsKeys.special_char_ratio in stats:
            return sample
        stats[StatsKeys.special_char_ratio] = special_character_ratio(self.get_text(sample))
        return sample

    def process(self, sample: dict) -> bool:
        value = sample.get("__stats__", {}).get(StatsKeys.special_char_ratio, 0.0)
        return self.min_ratio <= value <= self.max_ratio
