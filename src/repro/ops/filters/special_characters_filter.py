"""Filter on the ratio of special (non-alphanumeric, non-space) characters."""

from __future__ import annotations

from repro.core.base_op import Filter
from repro.core.batch import ensure_stats_column, get_text_column, stats_column_view
from repro.core.registry import OPERATORS
from repro.core.sample import StatsKeys, ensure_stats
from repro.ops.common.special_characters import special_character_ratio
from repro.ops.common.vectorized import special_character_counts


@OPERATORS.register_module("special_characters_filter")
class SpecialCharactersFilter(Filter):
    """Keep samples whose special-character ratio is within ``[min_ratio, max_ratio]``."""

    PARAM_SPECS = {
        "min_ratio": {
            "min_value": 0.0,
            "max_value": 1.0,
            "doc": "minimum special-character ratio",
        },
        "max_ratio": {
            "min_value": 0.0,
            "max_value": 1.0,
            "doc": "maximum special-character ratio",
        },
    }

    def __init__(
        self,
        min_ratio: float = 0.0,
        max_ratio: float = 0.25,
        text_key: str = "text",
        **kwargs,
    ):
        super().__init__(text_key=text_key, **kwargs)
        self.min_ratio = min_ratio
        self.max_ratio = max_ratio

    def compute_stats(self, sample: dict, context: bool = False) -> dict:
        stats = ensure_stats(sample)
        if StatsKeys.special_char_ratio in stats:
            return sample
        stats[StatsKeys.special_char_ratio] = special_character_ratio(self.get_text(sample))
        return sample

    def compute_stats_batched(self, samples: dict, context: dict | None = None) -> dict:
        texts = get_text_column(samples, self.text_key)
        if texts is None:
            return super().compute_stats_batched(samples, context=context)
        counts = special_character_counts(texts)
        for stats, text, count in zip(ensure_stats_column(samples), texts, counts):
            if StatsKeys.special_char_ratio not in stats:
                stats[StatsKeys.special_char_ratio] = count / len(text) if text else 0.0
        return samples

    def process_batched(self, samples: dict) -> list[bool]:
        min_ratio, max_ratio = self.min_ratio, self.max_ratio
        return [
            min_ratio <= stats.get(StatsKeys.special_char_ratio, 0.0) <= max_ratio
            for stats in stats_column_view(samples)
        ]

    def process(self, sample: dict) -> bool:
        value = sample.get("__stats__", {}).get(StatsKeys.special_char_ratio, 0.0)
        return self.min_ratio <= value <= self.max_ratio
