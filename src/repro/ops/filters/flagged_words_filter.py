"""Filter on the ratio of flagged (unsafe / low-quality marker) words."""

from __future__ import annotations

from repro.core.base_op import Filter
from repro.core.batch import ensure_stats_column, get_text_column, stats_column_view
from repro.core.context import ContextKeys, get_or_compute, get_or_compute_column
from repro.core.registry import OPERATORS
from repro.core.sample import StatsKeys, ensure_stats
from repro.ops.common.flagged_words import get_flagged_words
from repro.ops.common.helper_funcs import get_words_from_text, words_refinement


@OPERATORS.register_module("flagged_words_filter")
class FlaggedWordsFilter(Filter):
    """Keep samples whose flagged-word ratio is at most ``max_ratio``."""

    context_keys = (ContextKeys.words, ContextKeys.refined_words)

    PARAM_SPECS = {
        "lang": {"choices": ("en", "zh", "all"), "doc": "flagged-word list to use"},
        "max_ratio": {"min_value": 0.0, "max_value": 1.0, "doc": "maximum flagged-word ratio"},
        "flagged_words": {"doc": "custom flagged-word list overriding the built-in one"},
    }

    def __init__(
        self,
        lang: str = "en",
        max_ratio: float = 0.045,
        flagged_words: list[str] | None = None,
        text_key: str = "text",
        **kwargs,
    ):
        super().__init__(text_key=text_key, **kwargs)
        self.lang = lang
        self.max_ratio = max_ratio
        self.flagged_words = set(flagged_words) if flagged_words else get_flagged_words(lang)

    def compute_stats(self, sample: dict, context: bool = False) -> dict:
        stats = ensure_stats(sample)
        if StatsKeys.flagged_words_ratio in stats:
            return sample
        text = self.get_text(sample)
        words = get_or_compute(sample, ContextKeys.words, lambda: get_words_from_text(text))
        refined = get_or_compute(
            sample, ContextKeys.refined_words, lambda: words_refinement(words)
        )
        flagged = sum(1 for word in refined if word in self.flagged_words)
        stats[StatsKeys.flagged_words_ratio] = flagged / len(refined) if refined else 0.0
        return sample

    def compute_stats_batched(self, samples: dict, context: dict | None = None) -> dict:
        texts = get_text_column(samples, self.text_key)
        if texts is None:
            return super().compute_stats_batched(samples, context=context)
        words_column = get_or_compute_column(
            context, ContextKeys.words, lambda: [get_words_from_text(t) for t in texts]
        )
        refined_column = get_or_compute_column(
            context, ContextKeys.refined_words, lambda: [words_refinement(w) for w in words_column]
        )
        contains = self.flagged_words.__contains__
        for stats, refined in zip(ensure_stats_column(samples), refined_column):
            if StatsKeys.flagged_words_ratio in stats:
                continue
            flagged = sum(map(contains, refined))
            stats[StatsKeys.flagged_words_ratio] = flagged / len(refined) if refined else 0.0
        return samples

    def process_batched(self, samples: dict) -> list[bool]:
        max_ratio = self.max_ratio
        return [
            stats.get(StatsKeys.flagged_words_ratio, 0.0) <= max_ratio
            for stats in stats_column_view(samples)
        ]

    def process(self, sample: dict) -> bool:
        value = sample.get("__stats__", {}).get(StatsKeys.flagged_words_ratio, 0.0)
        return value <= self.max_ratio
