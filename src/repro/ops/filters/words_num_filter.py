"""Filter on the number of words in the text."""

from __future__ import annotations

import sys

from repro.core.base_op import Filter
from repro.core.batch import ensure_stats_column, get_text_column, stats_column_view
from repro.core.context import ContextKeys, get_or_compute, get_or_compute_column
from repro.core.registry import OPERATORS
from repro.core.sample import StatsKeys, ensure_stats
from repro.ops.common.helper_funcs import get_words_from_text, words_refinement


@OPERATORS.register_module("words_num_filter")
class WordsNumFilter(Filter):
    """Keep samples whose word count is within ``[min_num, max_num]``."""

    context_keys = (ContextKeys.words, ContextKeys.refined_words)

    PARAM_SPECS = {
        "min_num": {"min_value": 0, "doc": "minimum number of words"},
        "max_num": {"min_value": 0, "doc": "maximum number of words"},
    }

    def __init__(
        self,
        min_num: int = 10,
        max_num: int = sys.maxsize,
        text_key: str = "text",
        **kwargs,
    ):
        super().__init__(text_key=text_key, **kwargs)
        self.min_num = min_num
        self.max_num = max_num

    def compute_stats(self, sample: dict, context: bool = False) -> dict:
        stats = ensure_stats(sample)
        if StatsKeys.num_words in stats:
            return sample
        text = self.get_text(sample)
        words = get_or_compute(sample, ContextKeys.words, lambda: get_words_from_text(text))
        refined = get_or_compute(
            sample, ContextKeys.refined_words, lambda: words_refinement(words)
        )
        stats[StatsKeys.num_words] = len(refined)
        return sample

    def compute_stats_batched(self, samples: dict, context: dict | None = None) -> dict:
        texts = get_text_column(samples, self.text_key)
        if texts is None:
            return super().compute_stats_batched(samples, context=context)
        # the batch is tokenised once; fused members reuse the shared columns
        words_column = get_or_compute_column(
            context, ContextKeys.words, lambda: [get_words_from_text(t) for t in texts]
        )
        refined_column = get_or_compute_column(
            context, ContextKeys.refined_words, lambda: [words_refinement(w) for w in words_column]
        )
        for stats, refined in zip(ensure_stats_column(samples), refined_column):
            if StatsKeys.num_words not in stats:
                stats[StatsKeys.num_words] = len(refined)
        return samples

    def process_batched(self, samples: dict) -> list[bool]:
        min_num, max_num = self.min_num, self.max_num
        return [
            min_num <= stats.get(StatsKeys.num_words, 0) <= max_num
            for stats in stats_column_view(samples)
        ]

    def process(self, sample: dict) -> bool:
        value = sample.get("__stats__", {}).get(StatsKeys.num_words, 0)
        return self.min_num <= value <= self.max_num
