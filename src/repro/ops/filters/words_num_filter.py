"""Filter on the number of words in the text."""

from __future__ import annotations

import sys

from repro.core.base_op import Filter
from repro.core.context import ContextKeys, get_or_compute
from repro.core.registry import OPERATORS
from repro.core.sample import StatsKeys, ensure_stats
from repro.ops.common.helper_funcs import get_words_from_text, words_refinement


@OPERATORS.register_module("words_num_filter")
class WordsNumFilter(Filter):
    """Keep samples whose word count is within ``[min_num, max_num]``."""

    context_keys = (ContextKeys.words, ContextKeys.refined_words)

    def __init__(
        self,
        min_num: int = 10,
        max_num: int = sys.maxsize,
        text_key: str = "text",
        **kwargs,
    ):
        super().__init__(text_key=text_key, **kwargs)
        self.min_num = min_num
        self.max_num = max_num

    def compute_stats(self, sample: dict, context: bool = False) -> dict:
        stats = ensure_stats(sample)
        if StatsKeys.num_words in stats:
            return sample
        text = self.get_text(sample)
        words = get_or_compute(sample, ContextKeys.words, lambda: get_words_from_text(text))
        refined = get_or_compute(
            sample, ContextKeys.refined_words, lambda: words_refinement(words)
        )
        stats[StatsKeys.num_words] = len(refined)
        return sample

    def process(self, sample: dict) -> bool:
        value = sample.get("__stats__", {}).get(StatsKeys.num_words, 0)
        return self.min_num <= value <= self.max_num
