"""Filter keeping only samples whose source file suffix is in an allow-list."""

from __future__ import annotations

from repro.core.base_op import Filter
from repro.core.registry import OPERATORS
from repro.core.sample import Fields, ensure_stats


@OPERATORS.register_module("suffix_filter")
class SuffixFilter(Filter):
    """Keep samples whose ``__suffix__`` field is one of the allowed suffixes.

    An empty allow-list keeps everything.  Formatters populate the suffix
    field when loading files from disk.
    """

    PARAM_SPECS = {
        "suffixes": {"doc": "accepted file suffixes (e.g. '.txt', '.pdf')"},
    }

    def __init__(self, suffixes: list[str] | str | None = None, text_key: str = "text", **kwargs):
        super().__init__(text_key=text_key, **kwargs)
        if suffixes is None:
            suffixes = []
        if isinstance(suffixes, str):
            suffixes = [suffixes]
        self.suffixes = [suffix if suffix.startswith(".") else "." + suffix for suffix in suffixes]

    def compute_stats(self, sample: dict, context: bool = False) -> dict:
        ensure_stats(sample)
        return sample

    def process(self, sample: dict) -> bool:
        if not self.suffixes:
            return True
        return sample.get(Fields.suffix) in self.suffixes
