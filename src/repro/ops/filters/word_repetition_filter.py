"""Filter on the word n-gram repetition ratio."""

from __future__ import annotations

from repro.core.base_op import Filter
from repro.core.context import ContextKeys, get_or_compute
from repro.core.registry import OPERATORS
from repro.core.sample import StatsKeys, ensure_stats
from repro.ops.common.helper_funcs import get_words_from_text, ngram_repetition_ratio, words_refinement


@OPERATORS.register_module("word_repetition_filter")
class WordRepetitionFilter(Filter):
    """Keep samples whose word ``rep_len``-gram repetition ratio is within range."""

    context_keys = (ContextKeys.words, ContextKeys.refined_words)

    def __init__(
        self,
        rep_len: int = 10,
        min_ratio: float = 0.0,
        max_ratio: float = 0.5,
        text_key: str = "text",
        **kwargs,
    ):
        super().__init__(text_key=text_key, **kwargs)
        if rep_len <= 0:
            raise ValueError("rep_len must be positive")
        self.rep_len = rep_len
        self.min_ratio = min_ratio
        self.max_ratio = max_ratio

    def compute_stats(self, sample: dict, context: bool = False) -> dict:
        stats = ensure_stats(sample)
        if StatsKeys.word_rep_ratio in stats:
            return sample
        text = self.get_text(sample)
        words = get_or_compute(sample, ContextKeys.words, lambda: get_words_from_text(text))
        refined = get_or_compute(
            sample, ContextKeys.refined_words, lambda: words_refinement(words)
        )
        stats[StatsKeys.word_rep_ratio] = ngram_repetition_ratio(refined, self.rep_len)
        return sample

    def process(self, sample: dict) -> bool:
        value = sample.get("__stats__", {}).get(StatsKeys.word_rep_ratio, 0.0)
        return self.min_ratio <= value <= self.max_ratio
