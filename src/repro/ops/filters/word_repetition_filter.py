"""Filter on the word n-gram repetition ratio."""

from __future__ import annotations

from repro.core.base_op import Filter
from repro.core.batch import ensure_stats_column, get_text_column, stats_column_view
from repro.core.context import ContextKeys, get_or_compute, get_or_compute_column
from repro.core.registry import OPERATORS
from repro.core.sample import StatsKeys, ensure_stats
from repro.ops.common.helper_funcs import (
    get_words_from_text,
    ngram_repetition_ratio,
    words_refinement,
)
from repro.ops.common.vectorized import token_repetition_ratios


@OPERATORS.register_module("word_repetition_filter")
class WordRepetitionFilter(Filter):
    """Keep samples whose word ``rep_len``-gram repetition ratio is within range."""

    context_keys = (ContextKeys.words, ContextKeys.refined_words)

    PARAM_SPECS = {
        "rep_len": {"min_value": 1, "doc": "word n-gram length"},
        "min_ratio": {"min_value": 0.0, "max_value": 1.0, "doc": "minimum repetition ratio"},
        "max_ratio": {"min_value": 0.0, "max_value": 1.0, "doc": "maximum repetition ratio"},
    }

    def __init__(
        self,
        rep_len: int = 10,
        min_ratio: float = 0.0,
        max_ratio: float = 0.5,
        text_key: str = "text",
        **kwargs,
    ):
        super().__init__(text_key=text_key, **kwargs)
        if rep_len <= 0:
            raise ValueError("rep_len must be positive")
        self.rep_len = rep_len
        self.min_ratio = min_ratio
        self.max_ratio = max_ratio

    def compute_stats(self, sample: dict, context: bool = False) -> dict:
        stats = ensure_stats(sample)
        if StatsKeys.word_rep_ratio in stats:
            return sample
        text = self.get_text(sample)
        words = get_or_compute(sample, ContextKeys.words, lambda: get_words_from_text(text))
        refined = get_or_compute(
            sample, ContextKeys.refined_words, lambda: words_refinement(words)
        )
        stats[StatsKeys.word_rep_ratio] = ngram_repetition_ratio(refined, self.rep_len)
        return sample

    def compute_stats_batched(self, samples: dict, context: dict | None = None) -> dict:
        texts = get_text_column(samples, self.text_key)
        if texts is None:
            return super().compute_stats_batched(samples, context=context)
        words_column = get_or_compute_column(
            context, ContextKeys.words, lambda: [get_words_from_text(t) for t in texts]
        )
        refined_column = get_or_compute_column(
            context, ContextKeys.refined_words, lambda: [words_refinement(w) for w in words_column]
        )
        ratios = token_repetition_ratios(refined_column, self.rep_len)
        for stats, ratio in zip(ensure_stats_column(samples), ratios):
            if StatsKeys.word_rep_ratio not in stats:
                stats[StatsKeys.word_rep_ratio] = ratio
        return samples

    def process_batched(self, samples: dict) -> list[bool]:
        min_ratio, max_ratio = self.min_ratio, self.max_ratio
        return [
            min_ratio <= stats.get(StatsKeys.word_rep_ratio, 0.0) <= max_ratio
            for stats in stats_column_view(samples)
        ]

    def process(self, sample: dict) -> bool:
        value = sample.get("__stats__", {}).get(StatsKeys.word_rep_ratio, 0.0)
        return self.min_ratio <= value <= self.max_ratio
