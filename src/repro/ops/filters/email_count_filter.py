"""Filter on the number of e-mail addresses present in the text."""

from __future__ import annotations

from repro.core.base_op import Filter
from repro.core.registry import OPERATORS
from repro.core.sample import StatsKeys, ensure_stats
from repro.ops.mappers.clean_email_mapper import EMAIL_PATTERN


@OPERATORS.register_module("email_count_filter")
class EmailCountFilter(Filter):
    """Keep samples containing at most ``max_count`` e-mail addresses.

    Documents saturated with addresses are typically contact dumps or spam,
    and also raise anonymization concerns.
    """

    PARAM_SPECS = {
        "max_count": {"min_value": 0, "doc": "maximum number of e-mail addresses"},
    }

    def __init__(self, max_count: int = 3, text_key: str = "text", **kwargs):
        super().__init__(text_key=text_key, **kwargs)
        self.max_count = max_count

    def compute_stats(self, sample: dict, context: bool = False) -> dict:
        stats = ensure_stats(sample)
        if StatsKeys.email_count in stats:
            return sample
        stats[StatsKeys.email_count] = len(EMAIL_PATTERN.findall(self.get_text(sample)))
        return sample

    def process(self, sample: dict) -> bool:
        value = sample.get("__stats__", {}).get(StatsKeys.email_count, 0)
        return value <= self.max_count
