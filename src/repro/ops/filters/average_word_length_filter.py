"""Filter on the average word length of the text."""

from __future__ import annotations

import sys

from repro.core.base_op import Filter
from repro.core.context import ContextKeys, get_or_compute
from repro.core.registry import OPERATORS
from repro.core.sample import ensure_stats
from repro.ops.common.helper_funcs import get_words_from_text, words_refinement


@OPERATORS.register_module("average_word_length_filter")
class AverageWordLengthFilter(Filter):
    """Keep samples whose average word length is within ``[min_len, max_len]``.

    Natural English averages 3-10 characters per word; lower values suggest
    character soup and higher values suggest concatenated identifiers or URLs.
    """

    context_keys = (ContextKeys.words, ContextKeys.refined_words)

    PARAM_SPECS = {
        "min_len": {"min_value": 0.0, "doc": "minimum average word length (chars)"},
        "max_len": {"min_value": 0.0, "doc": "maximum average word length (chars)"},
    }

    def __init__(
        self,
        min_len: float = 3.0,
        max_len: float = float(sys.maxsize),
        text_key: str = "text",
        **kwargs,
    ):
        super().__init__(text_key=text_key, **kwargs)
        self.min_len = min_len
        self.max_len = max_len

    def compute_stats(self, sample: dict, context: bool = False) -> dict:
        stats = ensure_stats(sample)
        if "avg_word_length" in stats:
            return sample
        text = self.get_text(sample)
        words = get_or_compute(sample, ContextKeys.words, lambda: get_words_from_text(text))
        refined = get_or_compute(
            sample, ContextKeys.refined_words, lambda: words_refinement(words)
        )
        stats["avg_word_length"] = (
            sum(len(word) for word in refined) / len(refined) if refined else 0.0
        )
        return sample

    def process(self, sample: dict) -> bool:
        value = sample.get("__stats__", {}).get("avg_word_length", 0.0)
        return self.min_len <= value <= self.max_len
