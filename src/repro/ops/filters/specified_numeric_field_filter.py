"""Filter keeping samples whose numeric field lies within a range."""

from __future__ import annotations

import sys

from repro.core.base_op import Filter
from repro.core.registry import OPERATORS
from repro.core.sample import MISSING, ensure_stats, get_field


@OPERATORS.register_module("specified_numeric_field_filter")
class SpecifiedNumericFieldFilter(Filter):
    """Keep samples whose numeric ``field_key`` value is within ``[min_value, max_value]``.

    Non-numeric or missing values fail the filter.  This reproduces use cases
    such as "keep GitHub files with star count >= k".
    """

    PARAM_SPECS = {
        "field_key": {"doc": "dotted path of the numeric field to test"},
        "min_value": {"doc": "minimum accepted field value"},
        "max_value": {"doc": "maximum accepted field value"},
    }

    def __init__(
        self,
        field_key: str = "",
        min_value: float = -sys.float_info.max,
        max_value: float = sys.float_info.max,
        text_key: str = "text",
        **kwargs,
    ):
        super().__init__(text_key=text_key, **kwargs)
        self.field_key = field_key
        self.min_value = min_value
        self.max_value = max_value

    def compute_stats(self, sample: dict, context: bool = False) -> dict:
        ensure_stats(sample)
        return sample

    def process(self, sample: dict) -> bool:
        if not self.field_key:
            return True
        # missing leaf/intermediate of a dotted path counts as "field absent"
        # (filtered), never a KeyError
        value = get_field(sample, self.field_key, MISSING)
        if value is MISSING:
            return False
        if isinstance(value, str):
            try:
                value = float(value)
            except ValueError:
                return False
        if not isinstance(value, (int, float)):
            return False
        return self.min_value <= value <= self.max_value
