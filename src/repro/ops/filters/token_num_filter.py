"""Filter on the number of tokens produced by a simple subword-ish tokenizer."""

from __future__ import annotations

import sys

from repro.core.base_op import Filter
from repro.core.context import ContextKeys, get_or_compute
from repro.core.registry import OPERATORS
from repro.core.sample import StatsKeys, ensure_stats
from repro.ops.common.helper_funcs import get_words_from_text


@OPERATORS.register_module("token_num_filter")
class TokenNumFilter(Filter):
    """Keep samples whose token count is within ``[min_num, max_num]``.

    Tokens are approximated by splitting words longer than ``max_token_chars``
    characters into chunks, emulating the sub-word expansion of BPE-style
    tokenizers on long words.
    """

    context_keys = (ContextKeys.words,)

    PARAM_SPECS = {
        "min_num": {"min_value": 0, "doc": "minimum number of tokens"},
        "max_num": {"min_value": 0, "doc": "maximum number of tokens"},
        "max_token_chars": {"min_value": 1, "doc": "characters per token of the length proxy"},
    }

    def __init__(
        self,
        min_num: int = 10,
        max_num: int = sys.maxsize,
        max_token_chars: int = 8,
        text_key: str = "text",
        **kwargs,
    ):
        super().__init__(text_key=text_key, **kwargs)
        self.min_num = min_num
        self.max_num = max_num
        self.max_token_chars = max(1, max_token_chars)

    def _count_tokens(self, words: list[str]) -> int:
        total = 0
        for word in words:
            total += max(1, -(-len(word) // self.max_token_chars))
        return total

    def compute_stats(self, sample: dict, context: bool = False) -> dict:
        stats = ensure_stats(sample)
        if StatsKeys.num_token in stats:
            return sample
        text = self.get_text(sample)
        words = get_or_compute(sample, ContextKeys.words, lambda: get_words_from_text(text))
        stats[StatsKeys.num_token] = self._count_tokens(words)
        return sample

    def process(self, sample: dict) -> bool:
        value = sample.get("__stats__", {}).get(StatsKeys.num_token, 0)
        return self.min_num <= value <= self.max_num
