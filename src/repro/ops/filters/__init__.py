"""Filter operators: conditional sample removal with decoupled stats computation."""

from repro.ops.filters.alphanumeric_filter import AlphanumericFilter
from repro.ops.filters.average_line_length_filter import AverageLineLengthFilter
from repro.ops.filters.average_word_length_filter import AverageWordLengthFilter
from repro.ops.filters.character_repetition_filter import CharacterRepetitionFilter
from repro.ops.filters.digit_ratio_filter import DigitRatioFilter
from repro.ops.filters.email_count_filter import EmailCountFilter
from repro.ops.filters.flagged_words_filter import FlaggedWordsFilter
from repro.ops.filters.language_id_score_filter import LanguageIdScoreFilter
from repro.ops.filters.maximum_line_length_filter import MaximumLineLengthFilter
from repro.ops.filters.paragraph_num_filter import ParagraphNumFilter
from repro.ops.filters.perplexity_filter import PerplexityFilter
from repro.ops.filters.sentence_num_filter import SentenceNumFilter
from repro.ops.filters.special_characters_filter import SpecialCharactersFilter
from repro.ops.filters.specified_field_filter import SpecifiedFieldFilter
from repro.ops.filters.specified_numeric_field_filter import SpecifiedNumericFieldFilter
from repro.ops.filters.stopwords_filter import StopwordsFilter
from repro.ops.filters.suffix_filter import SuffixFilter
from repro.ops.filters.text_action_filter import TextActionFilter
from repro.ops.filters.text_length_filter import TextLengthFilter
from repro.ops.filters.token_num_filter import TokenNumFilter
from repro.ops.filters.url_ratio_filter import UrlRatioFilter
from repro.ops.filters.whitespace_ratio_filter import WhitespaceRatioFilter
from repro.ops.filters.word_repetition_filter import WordRepetitionFilter
from repro.ops.filters.words_num_filter import WordsNumFilter

__all__ = [
    "AlphanumericFilter",
    "AverageLineLengthFilter",
    "AverageWordLengthFilter",
    "CharacterRepetitionFilter",
    "DigitRatioFilter",
    "EmailCountFilter",
    "FlaggedWordsFilter",
    "LanguageIdScoreFilter",
    "MaximumLineLengthFilter",
    "ParagraphNumFilter",
    "PerplexityFilter",
    "SentenceNumFilter",
    "SpecialCharactersFilter",
    "SpecifiedFieldFilter",
    "SpecifiedNumericFieldFilter",
    "StopwordsFilter",
    "SuffixFilter",
    "TextActionFilter",
    "TextLengthFilter",
    "TokenNumFilter",
    "UrlRatioFilter",
    "WhitespaceRatioFilter",
    "WordRepetitionFilter",
    "WordsNumFilter",
]
