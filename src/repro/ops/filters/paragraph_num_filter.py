"""Filter on the number of paragraphs in the text."""

from __future__ import annotations

import sys

from repro.core.base_op import Filter
from repro.core.registry import OPERATORS
from repro.core.sample import StatsKeys, ensure_stats
from repro.ops.common.helper_funcs import split_paragraphs


@OPERATORS.register_module("paragraph_num_filter")
class ParagraphNumFilter(Filter):
    """Keep samples whose paragraph count is within ``[min_num, max_num]``."""

    PARAM_SPECS = {
        "min_num": {"min_value": 0, "doc": "minimum number of paragraphs"},
        "max_num": {"min_value": 0, "doc": "maximum number of paragraphs"},
    }

    def __init__(
        self,
        min_num: int = 1,
        max_num: int = sys.maxsize,
        text_key: str = "text",
        **kwargs,
    ):
        super().__init__(text_key=text_key, **kwargs)
        self.min_num = min_num
        self.max_num = max_num

    def compute_stats(self, sample: dict, context: bool = False) -> dict:
        stats = ensure_stats(sample)
        if StatsKeys.num_paragraphs in stats:
            return sample
        stats[StatsKeys.num_paragraphs] = len(split_paragraphs(self.get_text(sample)))
        return sample

    def process(self, sample: dict) -> bool:
        value = sample.get("__stats__", {}).get(StatsKeys.num_paragraphs, 0)
        return self.min_num <= value <= self.max_num
