"""Filter on the fraction of words that are URLs."""

from __future__ import annotations

import re

from repro.core.base_op import Filter
from repro.core.registry import OPERATORS
from repro.core.sample import StatsKeys, ensure_stats

URL_WORD_PATTERN = re.compile(r"^(?:https?://|www\.)", re.IGNORECASE)


@OPERATORS.register_module("url_ratio_filter")
class UrlRatioFilter(Filter):
    """Keep samples whose URL-word ratio is at most ``max_ratio``.

    Link farms and navigation boilerplate have a high density of URL tokens.
    """

    PARAM_SPECS = {
        "max_ratio": {"min_value": 0.0, "max_value": 1.0, "doc": "maximum URL-word ratio"},
    }

    def __init__(self, max_ratio: float = 0.2, text_key: str = "text", **kwargs):
        super().__init__(text_key=text_key, **kwargs)
        self.max_ratio = max_ratio

    def compute_stats(self, sample: dict, context: bool = False) -> dict:
        stats = ensure_stats(sample)
        if StatsKeys.url_ratio in stats:
            return sample
        words = self.get_text(sample).split()
        urls = sum(1 for word in words if URL_WORD_PATTERN.match(word))
        stats[StatsKeys.url_ratio] = urls / len(words) if words else 0.0
        return sample

    def process(self, sample: dict) -> bool:
        value = sample.get("__stats__", {}).get(StatsKeys.url_ratio, 0.0)
        return value <= self.max_ratio
