"""Filter on the predicted language and its confidence score."""

from __future__ import annotations

from repro.core.base_op import Filter
from repro.core.registry import OPERATORS
from repro.core.sample import StatsKeys, ensure_stats
from repro.ops.common.lang_detect import detect_language


@OPERATORS.register_module("language_id_score_filter")
class LanguageIdScoreFilter(Filter):
    """Keep samples predicted to be in ``lang`` with confidence >= ``min_score``.

    When ``lang`` is empty any language is accepted and only the confidence
    threshold applies.
    """

    PARAM_SPECS = {
        "lang": {
            "choices": ("en", "zh", "other", ""),
            "doc": "accepted language code(s); empty accepts any language",
        },
        "min_score": {
            "min_value": 0.0,
            "max_value": 1.0,
            "doc": "minimum language-identification confidence",
        },
    }

    def __init__(
        self,
        lang: str | list[str] = "en",
        min_score: float = 0.3,
        text_key: str = "text",
        **kwargs,
    ):
        super().__init__(text_key=text_key, **kwargs)
        if isinstance(lang, str):
            self.lang = [lang] if lang else []
        else:
            self.lang = list(lang)
        self.min_score = min_score

    def compute_stats(self, sample: dict, context: bool = False) -> dict:
        stats = ensure_stats(sample)
        if StatsKeys.lang in stats and StatsKeys.lang_score in stats:
            return sample
        lang, score = detect_language(self.get_text(sample))
        stats[StatsKeys.lang] = lang
        stats[StatsKeys.lang_score] = score
        return sample

    def process(self, sample: dict) -> bool:
        stats = sample.get("__stats__", {})
        lang = stats.get(StatsKeys.lang, "other")
        score = stats.get(StatsKeys.lang_score, 0.0)
        if self.lang and lang not in self.lang:
            return False
        return score >= self.min_score
