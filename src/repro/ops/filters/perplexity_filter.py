"""Filter on unigram language-model perplexity."""

from __future__ import annotations

import sys

from repro.core.base_op import Filter
from repro.core.registry import OPERATORS
from repro.core.sample import StatsKeys, ensure_stats
from repro.ops.common.unigram_lm import perplexity


@OPERATORS.register_module("perplexity_filter")
class PerplexityFilter(Filter):
    """Keep samples whose perplexity is at most ``max_ppl``.

    Natural prose built from common words scores low; gibberish, markup and
    symbol soup score high.  The stand-in model is described in
    :mod:`repro.ops.common.unigram_lm`.
    """

    PARAM_SPECS = {
        "max_ppl": {"min_value": 0.0, "doc": "maximum unigram-LM perplexity"},
        "min_ppl": {"min_value": 0.0, "doc": "minimum unigram-LM perplexity"},
    }

    def __init__(
        self,
        max_ppl: float = float(sys.maxsize),
        min_ppl: float = 0.0,
        text_key: str = "text",
        **kwargs,
    ):
        super().__init__(text_key=text_key, **kwargs)
        self.max_ppl = max_ppl
        self.min_ppl = min_ppl

    def compute_stats(self, sample: dict, context: bool = False) -> dict:
        stats = ensure_stats(sample)
        if StatsKeys.perplexity in stats:
            return sample
        stats[StatsKeys.perplexity] = perplexity(self.get_text(sample))
        return sample

    def process(self, sample: dict) -> bool:
        value = sample.get("__stats__", {}).get(StatsKeys.perplexity, 0.0)
        return self.min_ppl <= value <= self.max_ppl
