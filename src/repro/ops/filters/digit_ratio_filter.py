"""Filter on the ratio of digit characters (useful for financial / tabular data)."""

from __future__ import annotations

from repro.core.base_op import Filter
from repro.core.batch import ensure_stats_column, get_text_column, stats_column_view
from repro.core.registry import OPERATORS
from repro.core.sample import StatsKeys, ensure_stats
from repro.ops.common.vectorized import digit_counts


@OPERATORS.register_module("digit_ratio_filter")
class DigitRatioFilter(Filter):
    """Keep samples whose digit-character ratio is within ``[min_ratio, max_ratio]``.

    Financial-domain recipes use a higher ``max_ratio`` because legitimate
    documents carry many numbers, as discussed in the paper's real-world
    deployment section.
    """

    PARAM_SPECS = {
        "min_ratio": {"min_value": 0.0, "max_value": 1.0, "doc": "minimum digit-character ratio"},
        "max_ratio": {"min_value": 0.0, "max_value": 1.0, "doc": "maximum digit-character ratio"},
    }

    def __init__(
        self,
        min_ratio: float = 0.0,
        max_ratio: float = 0.3,
        text_key: str = "text",
        **kwargs,
    ):
        super().__init__(text_key=text_key, **kwargs)
        self.min_ratio = min_ratio
        self.max_ratio = max_ratio

    def compute_stats(self, sample: dict, context: bool = False) -> dict:
        stats = ensure_stats(sample)
        if StatsKeys.digit_ratio in stats:
            return sample
        text = self.get_text(sample)
        digits = sum(1 for char in text if char.isdigit())
        stats[StatsKeys.digit_ratio] = digits / len(text) if text else 0.0
        return sample

    def compute_stats_batched(self, samples: dict, context: dict | None = None) -> dict:
        texts = get_text_column(samples, self.text_key)
        if texts is None:
            return super().compute_stats_batched(samples, context=context)
        counts = digit_counts(texts)
        for stats, text, count in zip(ensure_stats_column(samples), texts, counts):
            if StatsKeys.digit_ratio not in stats:
                stats[StatsKeys.digit_ratio] = count / len(text) if text else 0.0
        return samples

    def process_batched(self, samples: dict) -> list[bool]:
        min_ratio, max_ratio = self.min_ratio, self.max_ratio
        return [
            min_ratio <= stats.get(StatsKeys.digit_ratio, 0.0) <= max_ratio
            for stats in stats_column_view(samples)
        ]

    def process(self, sample: dict) -> bool:
        value = sample.get("__stats__", {}).get(StatsKeys.digit_ratio, 0.0)
        return self.min_ratio <= value <= self.max_ratio
