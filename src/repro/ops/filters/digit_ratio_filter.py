"""Filter on the ratio of digit characters (useful for financial / tabular data)."""

from __future__ import annotations

from repro.core.base_op import Filter
from repro.core.registry import OPERATORS
from repro.core.sample import StatsKeys, ensure_stats


@OPERATORS.register_module("digit_ratio_filter")
class DigitRatioFilter(Filter):
    """Keep samples whose digit-character ratio is within ``[min_ratio, max_ratio]``.

    Financial-domain recipes use a higher ``max_ratio`` because legitimate
    documents carry many numbers, as discussed in the paper's real-world
    deployment section.
    """

    def __init__(
        self,
        min_ratio: float = 0.0,
        max_ratio: float = 0.3,
        text_key: str = "text",
        **kwargs,
    ):
        super().__init__(text_key=text_key, **kwargs)
        self.min_ratio = min_ratio
        self.max_ratio = max_ratio

    def compute_stats(self, sample: dict, context: bool = False) -> dict:
        stats = ensure_stats(sample)
        if StatsKeys.digit_ratio in stats:
            return sample
        text = self.get_text(sample)
        digits = sum(1 for char in text if char.isdigit())
        stats[StatsKeys.digit_ratio] = digits / len(text) if text else 0.0
        return sample

    def process(self, sample: dict) -> bool:
        value = sample.get("__stats__", {}).get(StatsKeys.digit_ratio, 0.0)
        return self.min_ratio <= value <= self.max_ratio
