"""Filter keeping samples that contain a minimum number of action verbs."""

from __future__ import annotations

from repro.core.base_op import Filter
from repro.core.context import ContextKeys, get_or_compute
from repro.core.registry import OPERATORS
from repro.core.sample import ensure_stats
from repro.ops.common.helper_funcs import get_words_from_text, words_refinement

# Common English verbs (base forms); suffix heuristics extend coverage.
COMMON_VERBS = {
    "be", "have", "do", "say", "get", "make", "go", "know", "take", "see",
    "come", "think", "look", "want", "give", "use", "find", "tell", "ask",
    "work", "seem", "feel", "try", "leave", "call", "write", "read", "run",
    "move", "play", "turn", "start", "show", "hear", "talk", "provide",
    "create", "explain", "describe", "summarize", "translate", "generate",
    "list", "answer", "compare", "analyze", "identify", "classify", "extract",
}

VERB_SUFFIXES = ("ing", "ed", "ize", "ise", "ify", "ate")


def looks_like_verb(word: str) -> bool:
    """Heuristic check whether a token is (likely) a verb form."""
    if word in COMMON_VERBS:
        return True
    return len(word) > 4 and word.endswith(VERB_SUFFIXES)


@OPERATORS.register_module("text_action_filter")
class TextActionFilter(Filter):
    """Keep samples containing at least ``min_action_num`` verb-like tokens.

    Instruction-tuning samples without any action verb are usually fragments
    or labels rather than usable prompts.
    """

    context_keys = (ContextKeys.words, ContextKeys.refined_words)

    PARAM_SPECS = {
        "min_action_num": {"min_value": 0, "doc": "minimum number of verb-like action words"},
    }

    def __init__(self, min_action_num: int = 1, text_key: str = "text", **kwargs):
        super().__init__(text_key=text_key, **kwargs)
        self.min_action_num = min_action_num

    def compute_stats(self, sample: dict, context: bool = False) -> dict:
        stats = ensure_stats(sample)
        if "num_action" in stats:
            return sample
        text = self.get_text(sample)
        words = get_or_compute(sample, ContextKeys.words, lambda: get_words_from_text(text))
        refined = get_or_compute(
            sample, ContextKeys.refined_words, lambda: words_refinement(words)
        )
        stats["num_action"] = sum(1 for word in refined if looks_like_verb(word))
        return sample

    def process(self, sample: dict) -> bool:
        value = sample.get("__stats__", {}).get("num_action", 0)
        return value >= self.min_action_num
