"""Filter on the character n-gram repetition ratio."""

from __future__ import annotations

from repro.core.base_op import Filter
from repro.core.batch import ensure_stats_column, get_text_column, stats_column_view
from repro.core.registry import OPERATORS
from repro.core.sample import StatsKeys, ensure_stats
from repro.ops.common.helper_funcs import ngram_repetition_ratio
from repro.ops.common.vectorized import char_repetition_ratios


@OPERATORS.register_module("character_repetition_filter")
class CharacterRepetitionFilter(Filter):
    """Keep samples whose char ``rep_len``-gram repetition ratio is within range.

    A high repetition ratio indicates boilerplate, keyword stuffing or
    generation loops, all of which harm pre-training stability.
    """

    PARAM_SPECS = {
        "rep_len": {"min_value": 1, "doc": "character n-gram length"},
        "min_ratio": {"min_value": 0.0, "max_value": 1.0, "doc": "minimum repetition ratio"},
        "max_ratio": {"min_value": 0.0, "max_value": 1.0, "doc": "maximum repetition ratio"},
    }

    def __init__(
        self,
        rep_len: int = 10,
        min_ratio: float = 0.0,
        max_ratio: float = 0.5,
        text_key: str = "text",
        **kwargs,
    ):
        super().__init__(text_key=text_key, **kwargs)
        if rep_len <= 0:
            raise ValueError("rep_len must be positive")
        self.rep_len = rep_len
        self.min_ratio = min_ratio
        self.max_ratio = max_ratio

    def compute_stats(self, sample: dict, context: bool = False) -> dict:
        stats = ensure_stats(sample)
        if StatsKeys.char_rep_ratio in stats:
            return sample
        text = self.get_text(sample)
        stats[StatsKeys.char_rep_ratio] = ngram_repetition_ratio(text, self.rep_len)
        return sample

    def compute_stats_batched(self, samples: dict, context: dict | None = None) -> dict:
        texts = get_text_column(samples, self.text_key)
        if texts is None:
            return super().compute_stats_batched(samples, context=context)
        ratios = char_repetition_ratios(texts, self.rep_len)
        for stats, ratio in zip(ensure_stats_column(samples), ratios):
            if StatsKeys.char_rep_ratio not in stats:
                stats[StatsKeys.char_rep_ratio] = ratio
        return samples

    def process_batched(self, samples: dict) -> list[bool]:
        min_ratio, max_ratio = self.min_ratio, self.max_ratio
        return [
            min_ratio <= stats.get(StatsKeys.char_rep_ratio, 0.0) <= max_ratio
            for stats in stats_column_view(samples)
        ]

    def process(self, sample: dict) -> bool:
        value = sample.get("__stats__", {}).get(StatsKeys.char_rep_ratio, 0.0)
        return self.min_ratio <= value <= self.max_ratio
