"""Filter on the character n-gram repetition ratio."""

from __future__ import annotations

from repro.core.base_op import Filter
from repro.core.registry import OPERATORS
from repro.core.sample import StatsKeys, ensure_stats
from repro.ops.common.helper_funcs import ngram_repetition_ratio


@OPERATORS.register_module("character_repetition_filter")
class CharacterRepetitionFilter(Filter):
    """Keep samples whose char ``rep_len``-gram repetition ratio is within range.

    A high repetition ratio indicates boilerplate, keyword stuffing or
    generation loops, all of which harm pre-training stability.
    """

    def __init__(
        self,
        rep_len: int = 10,
        min_ratio: float = 0.0,
        max_ratio: float = 0.5,
        text_key: str = "text",
        **kwargs,
    ):
        super().__init__(text_key=text_key, **kwargs)
        if rep_len <= 0:
            raise ValueError("rep_len must be positive")
        self.rep_len = rep_len
        self.min_ratio = min_ratio
        self.max_ratio = max_ratio

    def compute_stats(self, sample: dict, context: bool = False) -> dict:
        stats = ensure_stats(sample)
        if StatsKeys.char_rep_ratio in stats:
            return sample
        text = self.get_text(sample)
        stats[StatsKeys.char_rep_ratio] = ngram_repetition_ratio(text, self.rep_len)
        return sample

    def process(self, sample: dict) -> bool:
        value = sample.get("__stats__", {}).get(StatsKeys.char_rep_ratio, 0.0)
        return self.min_ratio <= value <= self.max_ratio
