"""Command-line interface: zero-code data processing from recipe files.

This is the reproduction of the original system's ``process_data.py`` /
``analyze_data.py`` entry points: novice users run a built-in or custom data
recipe against a dataset without writing any Python.

Usage examples::

    python -m repro list-ops
    python -m repro list-recipes
    python -m repro process --recipe pretrain-c4-refine-en \
        --dataset data.jsonl --export out.jsonl --mode auto
    python -m repro validate-recipe --recipe-file my_recipe.yaml
    python -m repro report --work-dir outputs
    python -m repro analyze --dataset data.jsonl --stream
    python -m repro synth --corpus common_crawl --num-samples 200 --output raw.jsonl
    python -m repro docs-ops
    python -m repro lint --json
    python -m repro dataflow --all
    python -m repro schema --json
    python -m repro serve --root service-root --port 8400
    python -m repro report --service-root service-root --job job-000001

``process`` is built on the fluent :class:`repro.api.Pipeline`: the recipe is
compiled into a lazy pipeline, parameters are validated against the typed op
schemas before anything runs, and ``--mode auto`` lets the execution planner
pick in-memory vs streaming from the input size and the memory budget.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.analyzer import Analyzer
from repro.api import Pipeline, render_issues, validate_recipe
from repro.core.config import load_config
from repro.core.errors import ConfigError, RegistryError
from repro.core.exporter import Exporter
from repro.core.faults import ERROR_POLICIES
from repro.core.planner import EXECUTION_MODES, ExecutionPlan
from repro.core.registry import OPERATORS
from repro.core.report import REPORT_FILE, RunReport
from repro.core.reporting import render_problems
from repro.formats.load import load_dataset, load_formatter
from repro.recipes import get_recipe, list_recipes
from repro.synth import CORPUS_BUILDERS, make_corpus

#: default location of the generated operator catalog (repo-relative)
DEFAULT_OPS_CATALOG = "docs/ops_catalog.md"


def _resolve_recipe(recipe: str | None, recipe_file: str | None) -> dict:
    """Return a recipe dict from either a built-in name or a recipe file."""
    if recipe and recipe_file:
        raise SystemExit("use either --recipe or --recipe-file, not both")
    if recipe:
        return get_recipe(recipe)
    if recipe_file:
        return load_config(recipe_file).as_dict()
    raise SystemExit("one of --recipe or --recipe-file is required")


def cmd_list_ops(_args: argparse.Namespace) -> int:
    """Print every registered operator name."""
    for name in OPERATORS.list():
        print(name)
    return 0


def cmd_list_recipes(_args: argparse.Namespace) -> int:
    """Print every built-in recipe name."""
    for name in list_recipes():
        print(name)
    return 0


def cmd_process(args: argparse.Namespace) -> int:
    """Run a data recipe over a dataset file and export the result.

    The recipe compiles into a :class:`repro.api.Pipeline` (so operator
    parameters are schema-validated up front and the Executor runs as a
    context-managed backend — a failing parallel run cannot leak pool
    workers), and ``--mode`` drives the execution planner.
    """
    recipe = _resolve_recipe(args.recipe, args.recipe_file)
    recipe["dataset_path"] = args.dataset
    if args.export:
        recipe["export_path"] = args.export
    if args.work_dir:
        recipe["work_dir"] = args.work_dir
    if args.np is not None:
        recipe["np"] = args.np
    if args.batch_size is not None:
        recipe["batch_size"] = args.batch_size
    if args.max_shard_rows is not None:
        recipe["max_shard_rows"] = args.max_shard_rows
    if args.max_shard_chars is not None:
        recipe["max_shard_chars"] = args.max_shard_chars
    if args.memory_budget_mb is not None:
        recipe["memory_budget"] = args.memory_budget_mb << 20
    if args.on_error is not None:
        recipe["on_error"] = args.on_error
    if args.max_retries is not None:
        recipe["max_retries"] = args.max_retries
    if args.task_timeout_s is not None:
        recipe["task_timeout_s"] = args.task_timeout_s
    mode = args.mode
    if args.stream:
        if mode == "memory":
            raise SystemExit("--stream conflicts with --mode memory")
        mode = "streaming"
    if args.shard_output and mode == "memory":
        # Executor.execute would reject this too; fail with CLI vocabulary
        raise SystemExit("--shard-output conflicts with --mode memory")

    pipeline = Pipeline.from_recipe(recipe)
    report = pipeline.run(mode=mode, shard_output=args.shard_output)
    planner = report.get("planner") or {}
    if planner:
        print(ExecutionPlan.from_dict(planner).describe())
    print(f"processed {args.dataset}: kept {report['num_output_samples']} samples")
    if args.export:
        exported = report.get("export_paths") or [args.export]
        print(f"exported to {', '.join(str(path) for path in exported)}")
    print(json.dumps(report.get("resources", {}), indent=2))
    work_dir = Path(pipeline.to_config().work_dir)
    report_path = work_dir / REPORT_FILE
    if report_path.exists():
        print(f"run report written to {report_path} (render with: repro report --work-dir {work_dir})")
    return 0


def cmd_validate_recipe(args: argparse.Namespace) -> int:
    """Schema-validate a recipe (or every built-in) without executing anything.

    Every bad parameter is reported with its operator name and allowed
    range; the exit code is 1 when any recipe has problems.
    """
    if args.all:
        from repro.recipes import BUILT_IN_RECIPES

        failed = []
        for name in sorted(BUILT_IN_RECIPES):
            issues = validate_recipe(BUILT_IN_RECIPES[name])
            print(f"{name}: {'ok' if not issues else f'{len(issues)} problem(s)'}")
            for issue in issues:
                print(f"  - {issue}")
            if issues:
                failed.append(name)
        if failed:
            print(f"{len(failed)} built-in recipe(s) failed validation: {', '.join(failed)}")
            return 1
        print(f"all {len(BUILT_IN_RECIPES)} built-in recipes are valid")
        return 0
    if args.recipe and args.recipe_file:
        raise SystemExit("use either --recipe or --recipe-file, not both")
    try:
        if args.recipe:
            recipe: dict | str = get_recipe(args.recipe)
        elif args.recipe_file:
            # hand the raw file to the validator: unlike process, validation
            # must collect every problem instead of stopping at the first
            recipe = args.recipe_file
        else:
            raise SystemExit("one of --recipe, --recipe-file or --all is required")
        issues = validate_recipe(recipe)
    except (ConfigError, RegistryError) as error:
        # unknown built-in name / missing or unparseable file: still a
        # validation problem, reported like one instead of a traceback
        print(render_problems([error], ""))
        return 1
    print(render_issues(issues))
    return 1 if issues else 0


def cmd_report(args: argparse.Namespace) -> int:
    """Render the unified run report of a finished run (text or JSON).

    Reports come from three equivalent sources: a run's ``--work-dir``, an
    explicit ``--report`` file, or a service job (``--job`` + the server's
    ``--service-root``) — queued-job reports render with the same code path
    as CLI runs.
    """
    if args.job and not args.service_root:
        raise SystemExit("--job requires --service-root (the `repro serve` root directory)")
    if args.job:
        from repro.service import resolve_job_report

        try:
            path = resolve_job_report(args.service_root, args.job)
        except FileNotFoundError as error:
            raise SystemExit(str(error))
        report = RunReport.load(path)
        if args.json:
            print(json.dumps(report.as_dict(), indent=2, ensure_ascii=False, default=repr))
        else:
            print(report.render())
        return 0
    target = args.report or args.work_dir
    if not target:
        raise SystemExit("one of --report, --work-dir or --job is required")
    path = Path(target)
    if path.is_dir():
        path = path / REPORT_FILE
    if not path.exists():
        raise SystemExit(f"no run report found at {path} (did the run finish?)")
    report = RunReport.load(path)
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, ensure_ascii=False, default=repr))
    else:
        print(report.render())
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    """Compute and print the data probe of a dataset file or finished run."""
    if args.report and args.dataset:
        raise SystemExit("use either --dataset or --report, not both")
    analyzer = Analyzer()
    if args.report:
        probe = analyzer.analyze_run(args.report)
    elif not args.dataset:
        raise SystemExit("one of --dataset or --report is required")
    elif args.stream:
        formatter = load_formatter(args.dataset)
        probe = analyzer.analyze_stream(formatter.iter_records())
    else:
        probe = analyzer.analyze(load_dataset(args.dataset))
    print(probe.render())
    if args.output:
        payload = {name: summary.as_dict() for name, summary in probe.summaries.items()}
        Path(args.output).write_text(json.dumps(payload, indent=2), encoding="utf-8")
        print(f"summary written to {args.output}")
    return 0


def cmd_docs_ops(args: argparse.Namespace) -> int:
    """Generate (or verify) the operator catalog from the op registry."""
    from repro.tools.docgen import catalog_in_sync, write_ops_catalog

    path = Path(args.output)
    if args.check:
        if catalog_in_sync(path):
            print(f"{path} is in sync with the operator registry")
            return 0
        print(f"{path} is OUT OF SYNC with the operator registry; run `make docs`")
        return 1
    changed = write_ops_catalog(path)
    print(f"{'wrote' if changed else 'unchanged'} {path}")
    return 0


def cmd_dataflow(args: argparse.Namespace) -> int:
    """Statically verify recipe dataflow (exit 1 on any finding).

    Resolves each step's inferred effect signature and symbolically executes
    the recipe over a field-set lattice; see ``docs/dataflow.md`` for the
    rule catalog.  ``--all`` checks every built-in recipe (the CI gate).
    """
    from repro.tools import dataflow as dataflow_tool

    if args.list_rules:
        print(dataflow_tool.render_rule_catalog())
        return 0
    if args.all:
        from repro.recipes import BUILT_IN_RECIPES

        results = []
        for name in sorted(BUILT_IN_RECIPES):
            result = dataflow_tool.check_recipe(BUILT_IN_RECIPES[name])
            result.recipe = result.recipe or name
            results.append(result)
        if args.json:
            print(dataflow_tool.render_json_many(results))
        else:
            for result in results:
                status = "clean" if not result.findings else f"{len(result.findings)} finding(s)"
                print(f"{result.recipe}: {status}")
                for finding in result.findings:
                    print(f"  - {finding}")
            clean = sum(1 for result in results if not result.findings)
            print(f"{clean}/{len(results)} built-in recipe(s) dataflow-clean")
        return max((result.exit_code for result in results), default=0)
    if args.recipe and args.recipe_file:
        raise SystemExit("use either --recipe or --recipe-file, not both")
    try:
        if args.recipe:
            recipe: dict | str = get_recipe(args.recipe)
        elif args.recipe_file:
            recipe = args.recipe_file
        else:
            raise SystemExit("one of --recipe, --recipe-file or --all is required")
        result = dataflow_tool.check_recipe(recipe)
    except (ConfigError, RegistryError) as error:
        print(render_problems([error], ""))
        return 1
    if args.json:
        print(dataflow_tool.render_json(result))
    else:
        print(dataflow_tool.render_text(result, verbose_suppressed=args.show_suppressed))
    return result.exit_code


def cmd_lint(args: argparse.Namespace) -> int:
    """Statically check the operator contracts (purity, config honesty, ...).

    With no paths the built-in operator pool is linted.  Exit code 1 on any
    unsuppressed violation, so ``make check`` enforces the contracts
    headlessly; ``--baseline`` subtracts a known-violation snapshot (written
    with ``--write-baseline``) so a new rule can land before its backlog is
    fully burned down.  ``--recipes`` runs the recipe dataflow checker over
    every built-in recipe instead (the ``repro dataflow --all`` gate).
    """
    from repro.tools import lint as lint_tool

    if args.recipes:
        flow_args = argparse.Namespace(
            all=True, recipe=None, recipe_file=None, json=args.json,
            list_rules=False, show_suppressed=args.show_suppressed,
        )
        return cmd_dataflow(flow_args)
    if args.list_rules:
        print(lint_tool.render_rule_catalog())
        return 0
    writing = args.write_baseline is not None
    baseline_target = args.write_baseline or args.baseline
    if writing and not baseline_target:
        raise SystemExit("--write-baseline needs a FILE (or a --baseline path to write to)")
    keep = None
    if args.baseline and not writing:
        baseline_path = Path(args.baseline)
        if not baseline_path.exists():
            raise SystemExit(
                f"baseline {baseline_path} does not exist "
                "(create it with --write-baseline)"
            )
        keep = lint_tool.baseline_filter(lint_tool.load_baseline(baseline_path))
    try:
        result = lint_tool.lint_paths(
            args.paths or None,
            rule_ids=args.rules,
            keep=keep,
            severities=args.severity or None,
        )
    except ValueError as error:  # unknown --rule id, with did-you-mean hint
        raise SystemExit(str(error))
    if writing:
        count = lint_tool.write_baseline(baseline_target, result)
        print(f"baseline with {count} violation(s) written to {baseline_target}")
        return 0
    if args.json:
        print(lint_tool.render_json(result))
    else:
        print(lint_tool.render_text(result, verbose_suppressed=args.show_suppressed))
    return result.exit_code


def cmd_schema(args: argparse.Namespace) -> int:
    """Dump the machine-readable operator/recipe catalog.

    ``--json`` prints the exact payload the service's ``GET /schema``
    endpoint returns (same producer: :func:`repro.service.catalog_payload`);
    without it, a compact per-op summary.
    """
    from repro.service import catalog_payload

    payload = catalog_payload()
    if args.json:
        print(json.dumps(payload, indent=2, ensure_ascii=False, default=repr))
        return 0
    for entry in payload["ops"]:
        params = ", ".join(spec["name"] for spec in entry["params"]) or "-"
        print(f"{entry['name']} [{entry['category']}] params: {params}")
    print(f"{len(payload['ops'])} operator(s), {len(payload['recipes'])} recipe(s)")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the long-lived pipeline service (blocking; Ctrl-C to stop)."""
    from repro.service import create_core
    from repro.service.http import serve

    core = create_core(args.root, queue_limit=args.queue_limit)
    serve(core, host=args.host, port=args.port)
    return 0


def cmd_serve_smoke(args: argparse.Namespace) -> int:
    """End-to-end serving smoke check over a real ephemeral-port server."""
    from repro.service.smoke import run_smoke

    return run_smoke(
        root=args.root,
        num_samples=args.num_samples,
        max_shard_rows=args.max_shard_rows,
        timeout_s=args.timeout_s,
    )


def cmd_synth(args: argparse.Namespace) -> int:
    """Generate a synthetic corpus and write it to a jsonl file."""
    dataset = make_corpus(args.corpus, num_samples=args.num_samples, seed=args.seed)
    path = Exporter(args.output, keep_stats=False).export(dataset)
    print(f"wrote {len(dataset)} samples to {path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Data-Juicer reproduction: one-stop LLM data processing"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list-ops", help="list all registered operators").set_defaults(
        func=cmd_list_ops
    )
    subparsers.add_parser("list-recipes", help="list all built-in data recipes").set_defaults(
        func=cmd_list_recipes
    )

    process = subparsers.add_parser("process", help="run a data recipe over a dataset file")
    process.add_argument("--dataset", required=True, help="input dataset path (jsonl/json/csv/...)")
    process.add_argument("--recipe", help="name of a built-in recipe")
    process.add_argument("--recipe-file", help="path to a YAML/JSON recipe file")
    process.add_argument("--export", help="output path (jsonl/json/txt)")
    process.add_argument("--work-dir", help="working directory for cache/checkpoints/traces")
    process.add_argument(
        "--np",
        type=int,
        default=None,
        help="worker processes for Mapper/Filter stages (overrides the recipe's np)",
    )
    process.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="rows per batch of the batched columnar op path (overrides the recipe's batch_size)",
    )
    process.add_argument(
        "--mode",
        choices=EXECUTION_MODES,
        default="auto",
        help="execution mode: 'auto' lets the planner choose in-memory vs "
        "streaming from the input size and memory budget (default)",
    )
    process.add_argument(
        "--memory-budget-mb",
        type=int,
        default=None,
        help="memory budget in MiB for the 'auto' mode decision "
        "(default: detected from free memory)",
    )
    process.add_argument(
        "--stream",
        action="store_true",
        help="alias for --mode streaming: process shard by shard with bounded memory",
    )
    process.add_argument(
        "--max-shard-rows",
        type=int,
        default=None,
        help="streaming shard budget: close a shard after this many rows",
    )
    process.add_argument(
        "--max-shard-chars",
        type=int,
        default=None,
        help="streaming shard budget: close a shard after this many text characters",
    )
    process.add_argument(
        "--shard-output",
        action="store_true",
        help="write size-capped numbered output shards (out-00001.jsonl.gz, ...); "
        "implies --mode streaming",
    )
    process.add_argument(
        "--on-error",
        choices=ERROR_POLICIES,
        default=None,
        help="fault policy: 'raise' aborts on persistent op failure (default), "
        "'skip' drops failing rows/shards, 'quarantine' drops them and writes "
        "each to <work_dir>/quarantine/ for inspection and replay",
    )
    process.add_argument(
        "--max-retries",
        type=int,
        default=None,
        help="retries with capped exponential backoff per failing op call/row/"
        "shard before the --on-error verdict applies (overrides the recipe)",
    )
    process.add_argument(
        "--task-timeout-s",
        type=float,
        default=None,
        help="worker-pool dispatch timeout in seconds; enables dead/hung-worker "
        "supervision (detect, rebuild the pool, retry) — unset means no timeout",
    )
    process.set_defaults(func=cmd_process)

    validate = subparsers.add_parser(
        "validate-recipe",
        help="schema-validate a recipe without executing it (exit 1 on problems)",
    )
    validate.add_argument("--recipe", help="name of a built-in recipe")
    validate.add_argument("--recipe-file", help="path to a YAML/JSON recipe file")
    validate.add_argument(
        "--all",
        action="store_true",
        help="validate every built-in recipe instead of a single one",
    )
    validate.set_defaults(func=cmd_validate_recipe)

    report = subparsers.add_parser(
        "report", help="render the unified run report of a finished run"
    )
    report.add_argument("--work-dir", help="run work directory containing report.json")
    report.add_argument("--report", help="path to a report.json written by a run")
    report.add_argument("--job", help="service job id (e.g. job-000001); needs --service-root")
    report.add_argument(
        "--service-root",
        help="root directory a `repro serve` server runs against "
        "(job reports live under <root>/jobs/<id>/)",
    )
    report.add_argument("--json", action="store_true", help="emit the raw JSON report")
    report.set_defaults(func=cmd_report)

    analyze = subparsers.add_parser(
        "analyze", help="compute the data probe of a dataset file or finished run"
    )
    analyze.add_argument("--dataset", help="input dataset path")
    analyze.add_argument(
        "--report",
        help="analyze the exported output of a finished run "
        "(path to its report.json or work directory)",
    )
    analyze.add_argument(
        "--stream",
        action="store_true",
        help="stream the dataset record by record (bounded memory)",
    )
    analyze.add_argument("--output", help="optional JSON file for the stats summary")
    analyze.set_defaults(func=cmd_analyze)

    docs_ops = subparsers.add_parser(
        "docs-ops", help="generate docs/ops_catalog.md from the operator registry"
    )
    docs_ops.add_argument(
        "--output", default=DEFAULT_OPS_CATALOG, help="catalog output path"
    )
    docs_ops.add_argument(
        "--check",
        action="store_true",
        help="verify the committed catalog matches the registry (exit 1 when stale)",
    )
    docs_ops.set_defaults(func=cmd_docs_ops)

    lint = subparsers.add_parser(
        "lint",
        help="statically check operator contracts (exit 1 on violations)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the built-in operator pool)",
    )
    lint.add_argument("--json", action="store_true", help="emit the machine-readable report")
    lint.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="RULE_ID",
        help="run only this rule (repeatable; see --list-rules)",
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    lint.add_argument(
        "--baseline",
        metavar="FILE",
        help="subtract the violations recorded in this JSON baseline",
    )
    lint.add_argument(
        "--write-baseline",
        metavar="FILE",
        nargs="?",
        const="",
        help="snapshot current violations to FILE (default: the --baseline path) and exit 0",
    )
    lint.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also list findings silenced by lint-ignore comments",
    )
    lint.add_argument(
        "--severity",
        action="append",
        choices=["error", "warning"],
        metavar="LEVEL",
        help="report only findings of this severity (repeatable)",
    )
    lint.add_argument(
        "--recipes",
        action="store_true",
        help="check every built-in recipe's dataflow instead of op contracts",
    )
    lint.set_defaults(func=cmd_lint)

    dataflow = subparsers.add_parser(
        "dataflow",
        help="statically verify recipe dataflow (exit 1 on findings)",
    )
    dataflow.add_argument("--recipe", help="name of a built-in recipe")
    dataflow.add_argument("--recipe-file", help="path to a YAML/JSON recipe file")
    dataflow.add_argument(
        "--all",
        action="store_true",
        help="check every built-in recipe instead of a single one",
    )
    dataflow.add_argument(
        "--json", action="store_true", help="emit the machine-readable report"
    )
    dataflow.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    dataflow.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also list findings silenced by dataflow_ignore entries",
    )
    dataflow.set_defaults(func=cmd_dataflow)

    schema = subparsers.add_parser(
        "schema", help="dump the machine-readable operator/recipe catalog"
    )
    schema.add_argument(
        "--json",
        action="store_true",
        help="emit the full JSON catalog (identical to the service's GET /schema)",
    )
    schema.set_defaults(func=cmd_schema)

    serve = subparsers.add_parser(
        "serve", help="run the long-lived pipeline service (HTTP/JSON)"
    )
    serve.add_argument(
        "--root",
        required=True,
        help="service root directory (job work dirs under <root>/jobs/, "
        "shared shard cache under <root>/cache/)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8400, help="bind port (0 = ephemeral)")
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=16,
        help="maximum pending jobs before submissions are rejected with 503",
    )
    serve.set_defaults(func=cmd_serve)

    serve_smoke = subparsers.add_parser(
        "serve-smoke",
        help="end-to-end serving smoke check (ephemeral port, fig8 job, "
        "warm-cache resubmission, export diff vs the CLI path)",
    )
    serve_smoke.add_argument(
        "--root", help="scratch directory (default: a fresh temp directory)"
    )
    serve_smoke.add_argument("--num-samples", type=int, default=120)
    serve_smoke.add_argument("--max-shard-rows", type=int, default=17)
    serve_smoke.add_argument("--timeout-s", type=float, default=180.0)
    serve_smoke.set_defaults(func=cmd_serve_smoke)

    synth = subparsers.add_parser("synth", help="generate a synthetic corpus")
    synth.add_argument("--corpus", required=True, choices=sorted(CORPUS_BUILDERS))
    synth.add_argument("--num-samples", type=int, default=100)
    synth.add_argument("--seed", type=int, default=0)
    synth.add_argument("--output", required=True, help="output jsonl path")
    synth.set_defaults(func=cmd_synth)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv if argv is not None else sys.argv[1:])
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
