"""Vocabularies backing the synthetic corpus generators.

The generators compose documents from these word pools with a Zipf-like rank
distribution, which gives the synthetic corpora realistic token statistics
(stop-word density, word-length distribution, verb-noun structure) without
shipping any real corpus.
"""

from __future__ import annotations

# Function words (high frequency) — also drive the stop-word ratio statistics.
FUNCTION_WORDS = [
    "the", "of", "and", "a", "to", "in", "is", "was", "it", "for", "with",
    "as", "on", "be", "at", "by", "this", "that", "from", "or", "an", "are",
    "not", "but", "they", "which", "have", "has", "had", "were", "their",
    "its", "we", "you", "can", "will", "would", "there", "been", "more",
]

# Content nouns (mid frequency).
NOUNS = [
    "system", "data", "model", "language", "research", "paper", "method",
    "result", "experiment", "analysis", "process", "quality", "information",
    "network", "algorithm", "structure", "science", "history", "theory",
    "energy", "market", "company", "student", "teacher", "city", "country",
    "government", "policy", "problem", "solution", "project", "design",
    "library", "dataset", "pipeline", "operator", "filter", "sample",
    "document", "corpus", "token", "training", "evaluation", "benchmark",
    "knowledge", "question", "answer", "example", "feature", "value",
    "people", "world", "water", "music", "story", "family", "health",
    "economy", "climate", "culture", "education", "industry", "technology",
]

# Verbs (mid frequency) — drive the verb-noun diversity analysis.
VERBS = [
    "make", "use", "find", "show", "provide", "describe", "explain",
    "analyze", "compare", "improve", "build", "create", "develop", "evaluate",
    "measure", "train", "test", "process", "filter", "generate", "collect",
    "study", "consider", "propose", "present", "support", "require",
    "increase", "reduce", "apply", "observe", "report", "discuss", "design",
    "summarize", "translate", "classify", "extract", "identify", "write",
]

# Adjectives / adverbs (lower frequency).
MODIFIERS = [
    "new", "large", "small", "good", "important", "different", "significant",
    "high", "low", "effective", "efficient", "robust", "simple", "complex",
    "general", "specific", "recent", "early", "various", "common", "main",
    "novel", "practical", "open", "public", "modern", "diverse", "massive",
]

# Rare "long tail" words to stretch the vocabulary (lowest frequency).
RARE_WORDS = [
    "heterogeneity", "composability", "deduplication", "tokenization",
    "optimization", "scalability", "visualization", "infrastructure",
    "hyperparameter", "configuration", "reproducibility", "distributed",
    "throughput", "bottleneck", "fingerprint", "checkpoint", "perplexity",
    "anonymization", "granularity", "orchestration", "materialization",
]

# Simplified Chinese-like characters (for the ZH corpus variants).
CJK_CHARS = list("数据处理系统模型语言大规模训练评估质量多样性文本清洗过滤重复指令对话帮助用户问题回答研究方法结果分析实验设计改进提高效果性能内容信息知识学习理解生成")

# Code identifiers and keywords for the code-like corpus.
CODE_KEYWORDS = [
    "def", "return", "class", "import", "for", "while", "if", "else", "try",
    "except", "lambda", "yield", "assert", "raise", "with", "pass",
]
CODE_IDENTIFIERS = [
    "load_data", "process_batch", "compute_stats", "run_pipeline", "main",
    "parse_args", "get_config", "build_model", "train_step", "evaluate",
    "tokenize", "normalize", "filter_samples", "dedup", "export_results",
    "value", "result", "index", "count", "total", "buffer", "handler",
]
