"""Synthetic corpora standing in for the paper's source datasets.

Each builder returns a :class:`~repro.core.dataset.NestedDataset` whose samples
carry a ``meta`` dict (source, language, tags) so recipes, selectors and the
fine-tuning experiments can operate on the same metadata the paper uses.  The
``quality`` knob controls what fraction of documents are clean versus degraded
by :class:`~repro.synth.generators.NoiseInjector`, and ``duplicate_ratio``
injects exact/near duplicates for the deduplicators to find.
"""

from __future__ import annotations

import random

from repro.core.dataset import NestedDataset
from repro.core.sample import Fields
from repro.synth.generators import DocumentGenerator, NoiseInjector


def _make_samples(
    num_samples: int,
    seed: int,
    source: str,
    quality: float,
    duplicate_ratio: float,
    build_clean,
    build_dirty=None,
    language: str = "en",
    extra_meta: dict | None = None,
) -> NestedDataset:
    """Shared corpus assembly: clean/dirty mix plus injected duplicates."""
    rng = random.Random(seed)
    samples: list[dict] = []
    for index in range(num_samples):
        is_clean = rng.random() < quality
        if is_clean or build_dirty is None:
            text = build_clean(index)
        else:
            text = build_dirty(index)
        meta = {"source": source, "language": language, "clean": is_clean}
        if extra_meta:
            meta.update(extra_meta)
        samples.append({Fields.text: text, Fields.meta: meta, Fields.source: source})
    # inject duplicates of existing samples
    num_duplicates = int(num_samples * duplicate_ratio)
    for _ in range(num_duplicates):
        victim = rng.randrange(len(samples))
        duplicate = dict(samples[victim])
        duplicate[Fields.meta] = dict(duplicate[Fields.meta], duplicate=True)
        samples.append(duplicate)
    rng.shuffle(samples)
    return NestedDataset.from_list(samples)


def common_crawl_like(
    num_samples: int = 200,
    seed: int = 0,
    quality: float = 0.35,
    duplicate_ratio: float = 0.1,
) -> NestedDataset:
    """A CommonCrawl-like web corpus: mostly noisy pages, some clean prose."""
    generator = DocumentGenerator(seed)
    noise = NoiseInjector(seed + 1)
    rng = random.Random(seed + 2)

    def clean(_index: int) -> str:
        return generator.document()

    def dirty(_index: int) -> str:
        roll = rng.random()
        if roll < 0.2:
            return noise.gibberish()
        if roll < 0.35:
            return noise.truncate(generator.paragraph())
        # always include at least one visible web defect so raw crawl pages are
        # distinguishable from curated prose (as real CommonCrawl text is)
        visible = rng.sample(["html", "links", "repetition", "flagged"], k=rng.randint(1, 3))
        subtle = ["mojibake"] if rng.random() < 0.3 else []
        return noise.corrupt(generator.document(), kinds=visible + subtle)

    return _make_samples(
        num_samples, seed, "common_crawl", quality, duplicate_ratio, clean, dirty
    )


def c4_like(num_samples: int = 200, seed: int = 10, quality: float = 0.6) -> NestedDataset:
    """A C4-like corpus: cleaned web text with residual boilerplate."""
    generator = DocumentGenerator(seed)
    noise = NoiseInjector(seed + 1)

    def clean(_index: int) -> str:
        return generator.document()

    def dirty(_index: int) -> str:
        return noise.corrupt(generator.document(), kinds=["links", "repetition"])

    return _make_samples(num_samples, seed, "c4", quality, 0.05, clean, dirty)


def wikipedia_like(num_samples: int = 150, seed: int = 20) -> NestedDataset:
    """A Wikipedia-like corpus: clean encyclopedic prose with headings."""
    generator = DocumentGenerator(seed)

    def clean(index: int) -> str:
        return generator.title() + "\n\n" + generator.document(num_paragraphs=4)

    return _make_samples(num_samples, seed, "wikipedia", 1.0, 0.0, clean)


def books_like(num_samples: int = 60, seed: int = 30) -> NestedDataset:
    """A Books-like corpus: long, coherent documents."""
    generator = DocumentGenerator(seed)

    def clean(_index: int) -> str:
        return generator.document(num_paragraphs=12)

    return _make_samples(num_samples, seed, "books", 1.0, 0.0, clean)


def arxiv_like(num_samples: int = 100, seed: int = 40, quality: float = 0.8) -> NestedDataset:
    """An arXiv-like corpus: LaTeX sources with preamble, macros, comments, bibliography."""
    generator = DocumentGenerator(seed)

    def clean(index: int) -> str:
        body = generator.document(num_paragraphs=4)
        return (
            "\\documentclass{article}\n"
            "\\newcommand{\\method}{JuicyNet}\n"
            "% internal review comment\n"
            "\\begin{document}\n"
            f"\\section{{Introduction}}\n{body}\n"
            "The \\method approach is described above. % trailing note\n"
            "\\begin{thebibliography}{9}\\bibitem{x} Some Reference.\\end{thebibliography}\n"
            "\\end{document}\n"
        )

    def dirty(index: int) -> str:
        return "\\documentclass{article}\n% only preamble, no content\n\\usepackage{amsmath}\n"

    return _make_samples(num_samples, seed, "arxiv", quality, 0.02, clean, dirty)


def code_like(num_samples: int = 100, seed: int = 50, quality: float = 0.7) -> NestedDataset:
    """A GitHub-like code corpus with star-count metadata and copyright headers."""
    generator = DocumentGenerator(seed)
    rng = random.Random(seed + 3)

    def clean(index: int) -> str:
        return generator.code_document()

    def dirty(index: int) -> str:
        header = (
            "# Copyright (c) 2020 Example Corp. All rights reserved.\n"
            "# Licensed under the Apache License, Version 2.0\n"
        )
        return header + generator.code_document(num_functions=1)

    dataset = _make_samples(num_samples, seed, "github", quality, 0.05, clean, dirty)
    stars = [rng.randint(0, 2000) for _ in range(len(dataset))]
    rows = []
    for row, star_count in zip(dataset, stars):
        meta = dict(row.get(Fields.meta) or {})
        meta["stars"] = star_count
        row = dict(row)
        row[Fields.meta] = meta
        row[Fields.suffix] = ".py"
        rows.append(row)
    return NestedDataset.from_list(rows)


def stackexchange_like(num_samples: int = 150, seed: int = 60, quality: float = 0.75) -> NestedDataset:
    """A StackExchange-like Q&A corpus."""
    generator = DocumentGenerator(seed)
    noise = NoiseInjector(seed + 1)

    def clean(_index: int) -> str:
        question = "Q: " + generator.sentence(8, 16)
        answer = "A: " + generator.paragraph(3)
        return question + "\n" + answer

    def dirty(_index: int) -> str:
        return noise.corrupt(clean(0), kinds=["links"])

    return _make_samples(num_samples, seed, "stackexchange", quality, 0.08, clean, dirty)


def chinese_web_like(num_samples: int = 120, seed: int = 70, quality: float = 0.5) -> NestedDataset:
    """A Chinese-like web corpus (CJK characters) with noisy variants."""
    generator = DocumentGenerator(seed)
    noise = NoiseInjector(seed + 1)

    def clean(_index: int) -> str:
        return generator.cjk_document()

    def dirty(_index: int) -> str:
        return noise.add_links_and_emails(generator.cjk_document(num_sentences=2))

    return _make_samples(
        num_samples, seed, "chinese_web", quality, 0.05, clean, dirty, language="zh"
    )


def instruction_dataset(
    num_samples: int = 200,
    seed: int = 80,
    language: str = "en",
    usage: str = "IFT",
    quality: float = 0.8,
    name: str | None = None,
) -> NestedDataset:
    """A fine-tuning dataset of (instruction, input, output) samples.

    ``usage`` is the paper's meta-tag: ``"IFT"`` (instruct fine-tuning) or
    ``"CFT"`` (chat fine-tuning).  The text field concatenates the parts so
    text-level OPs work unchanged, while the structured fields are kept for
    recipe tooling.
    """
    generator = DocumentGenerator(seed)
    noise = NoiseInjector(seed + 1)
    rng = random.Random(seed + 2)
    source = name or f"{usage.lower()}_{language}_{seed}"
    templates = [
        "Summarize the following text",
        "Explain the concept of",
        "Translate this sentence about",
        "Write a short story about",
        "List three facts about",
        "Compare and contrast",
        "Answer the question about",
        "Classify the sentiment of",
        "Extract the key entities from",
        "Generate a question about",
    ]
    samples = []
    for index in range(num_samples):
        is_clean = rng.random() < quality
        if language == "zh":
            instruction = "请总结以下内容" if rng.random() < 0.5 else "请解释下面的概念"
            input_text = generator.cjk_sentence()
            output_text = generator.cjk_document(num_sentences=3)
        else:
            instruction = f"{rng.choice(templates)} {rng.choice(['the', 'a'])} {generator.title().lower()}."
            input_text = generator.sentence(8, 20)
            output_text = generator.paragraph(3)
        if not is_clean:
            output_text = noise.corrupt(
                output_text, kinds=rng.sample(["repetition", "flagged", "links"], k=2)
            )
        text = f"{instruction}\n{input_text}\n{output_text}"
        samples.append(
            {
                Fields.text: text,
                "instruction": instruction,
                "input": input_text,
                "output": output_text,
                Fields.meta: {
                    "source": source,
                    "language": language.upper(),
                    "usage": usage,
                    "clean": is_clean,
                },
                Fields.source: source,
            }
        )
    return NestedDataset.from_list(samples)


CORPUS_BUILDERS = {
    "common_crawl": common_crawl_like,
    "c4": c4_like,
    "wikipedia": wikipedia_like,
    "books": books_like,
    "arxiv": arxiv_like,
    "github": code_like,
    "stackexchange": stackexchange_like,
    "chinese_web": chinese_web_like,
}


def make_corpus(name: str, num_samples: int = 100, seed: int = 0, **kwargs) -> NestedDataset:
    """Build one of the named synthetic corpora."""
    if name not in CORPUS_BUILDERS:
        raise ValueError(f"unknown corpus {name!r}; choose from {sorted(CORPUS_BUILDERS)}")
    return CORPUS_BUILDERS[name](num_samples=num_samples, seed=seed, **kwargs)
