"""Core synthetic text generator with controllable quality defects.

``DocumentGenerator`` produces English-like prose with realistic token
statistics; ``NoiseInjector`` degrades clean documents with the defects the
paper's operator pool targets: HTML debris, URLs/e-mails, repeated n-grams,
flagged words, broken unicode, exotic whitespace and truncation.  All output
is deterministic given the seed.
"""

from __future__ import annotations

import random

from repro.synth import vocabulary as vocab


class DocumentGenerator:
    """Generate clean, structured prose documents from the embedded vocabulary."""

    def __init__(self, seed: int = 0):
        self.rng = random.Random(seed)

    # ------------------------------------------------------------------
    def word(self) -> str:
        """Sample one word with a rough Zipf-like distribution across pools."""
        roll = self.rng.random()
        if roll < 0.45:
            return self.rng.choice(vocab.FUNCTION_WORDS)
        if roll < 0.70:
            return self.rng.choice(vocab.NOUNS)
        if roll < 0.85:
            return self.rng.choice(vocab.VERBS)
        if roll < 0.96:
            return self.rng.choice(vocab.MODIFIERS)
        return self.rng.choice(vocab.RARE_WORDS)

    def sentence(self, min_words: int = 6, max_words: int = 18) -> str:
        """Generate one sentence of the form 'The <noun> <verb>s the <noun> ...'."""
        length = self.rng.randint(min_words, max_words)
        words = [
            "the" if self.rng.random() < 0.15 else self.word() for _ in range(length)
        ]
        # guarantee one verb and one noun so diversity analysis finds pairs
        words[min(1, length - 1)] = self.rng.choice(vocab.VERBS)
        words[min(2, length - 1)] = self.rng.choice(vocab.NOUNS)
        text = " ".join(words)
        return text[0].upper() + text[1:] + "."

    def paragraph(self, num_sentences: int | None = None) -> str:
        """Generate one paragraph of several sentences."""
        count = num_sentences or self.rng.randint(3, 7)
        return " ".join(self.sentence() for _ in range(count))

    def document(self, num_paragraphs: int | None = None) -> str:
        """Generate one clean multi-paragraph document."""
        count = num_paragraphs or self.rng.randint(2, 6)
        return "\n\n".join(self.paragraph() for _ in range(count))

    def title(self) -> str:
        """Generate a short title-like line."""
        words = [self.rng.choice(vocab.MODIFIERS), self.rng.choice(vocab.NOUNS),
                 self.rng.choice(vocab.NOUNS)]
        return " ".join(word.capitalize() for word in words)

    def cjk_sentence(self, min_chars: int = 10, max_chars: int = 40) -> str:
        """Generate a Chinese-like sentence from the CJK character pool."""
        length = self.rng.randint(min_chars, max_chars)
        return "".join(self.rng.choice(vocab.CJK_CHARS) for _ in range(length)) + "。"

    def cjk_document(self, num_sentences: int | None = None) -> str:
        """Generate a Chinese-like document."""
        count = num_sentences or self.rng.randint(4, 10)
        return "".join(self.cjk_sentence() for _ in range(count))

    def code_document(self, num_functions: int | None = None) -> str:
        """Generate a Python-like source file."""
        count = num_functions or self.rng.randint(2, 5)
        lines = ['"""Utility module."""', "", "import os", "import sys", ""]
        for _ in range(count):
            name = self.rng.choice(vocab.CODE_IDENTIFIERS)
            arg = self.rng.choice(vocab.CODE_IDENTIFIERS)
            lines.append(f"def {name}({arg}):")
            for _ in range(self.rng.randint(2, 5)):
                left = self.rng.choice(vocab.CODE_IDENTIFIERS)
                right = self.rng.choice(vocab.CODE_IDENTIFIERS)
                lines.append(f"    {left} = {right} + {self.rng.randint(0, 99)}")
            lines.append(f"    return {arg}")
            lines.append("")
        return "\n".join(lines)


class NoiseInjector:
    """Degrade clean documents with the quality defects targeted by the OP pool."""

    def __init__(self, seed: int = 0):
        self.rng = random.Random(seed)

    def add_html(self, text: str) -> str:
        """Wrap parts of the text in HTML debris."""
        return (
            "<html><body><div class=\"content\"><p>"
            + text.replace("\n\n", "</p>\n<p>")
            + "</p></div><script>var x = 1;</script></body></html>"
        )

    def add_links_and_emails(self, text: str) -> str:
        """Append navigation boilerplate full of URLs and e-mail addresses."""
        boiler = (
            " Visit https://example-site{0}.com/page?id={0} now."
            " Contact admin{0}@example.com or see www.tracker{0}.net/click."
        ).format(self.rng.randint(1, 999))
        return text + ("\n" + boiler) * self.rng.randint(1, 3)

    def add_repetition(self, text: str) -> str:
        """Repeat one sentence many times (generation-loop style defect)."""
        sentences = text.split(". ")
        victim = self.rng.choice(sentences) if sentences else text
        return text + " " + (". ".join([victim] * self.rng.randint(5, 10)))

    def add_flagged_words(self, text: str) -> str:
        """Sprinkle flagged marker words into the text."""
        from repro.ops.common.flagged_words import FLAGGED_WORDS_EN

        words = text.split()
        for _ in range(max(3, len(words) // 10)):
            position = self.rng.randint(0, len(words))
            words.insert(position, self.rng.choice(sorted(FLAGGED_WORDS_EN)))
        return " ".join(words)

    def add_mojibake(self, text: str) -> str:
        """Introduce broken unicode sequences."""
        return text.replace("the", "â€™the", 3).replace(" a ", " Â a ", 2)

    def add_messy_whitespace(self, text: str) -> str:
        """Replace normal spaces with exotic whitespace characters."""
        return text.replace(" ", " ", len(text) // 8).replace(" ", " ", len(text) // 10)

    def truncate(self, text: str) -> str:
        """Truncate to a tiny fragment (too-short document defect)."""
        return text[: self.rng.randint(5, 30)]

    def gibberish(self, length: int | None = None) -> str:
        """Produce symbol soup with no natural-language structure."""
        length = length or self.rng.randint(80, 300)
        alphabet = "qwrtypsdfghjklzxcvbnm#$%&*@!{}[]<>|\\/~^"
        return "".join(self.rng.choice(alphabet) for _ in range(length))

    def corrupt(self, text: str, kinds: list[str] | None = None) -> str:
        """Apply a random subset of defects to a clean document."""
        operations = {
            "html": self.add_html,
            "links": self.add_links_and_emails,
            "repetition": self.add_repetition,
            "flagged": self.add_flagged_words,
            "mojibake": self.add_mojibake,
            "whitespace": self.add_messy_whitespace,
            "truncate": self.truncate,
        }
        chosen = kinds if kinds is not None else self.rng.sample(
            sorted(operations), k=self.rng.randint(1, 3)
        )
        for kind in chosen:
            text = operations[kind](text)
        return text
