"""Synthetic corpora and text generators (substitutes for the paper's datasets)."""

from repro.synth.corpora import (
    CORPUS_BUILDERS,
    arxiv_like,
    books_like,
    c4_like,
    chinese_web_like,
    code_like,
    common_crawl_like,
    instruction_dataset,
    make_corpus,
    stackexchange_like,
    wikipedia_like,
)
from repro.synth.generators import DocumentGenerator, NoiseInjector

__all__ = [
    "CORPUS_BUILDERS",
    "DocumentGenerator",
    "NoiseInjector",
    "arxiv_like",
    "books_like",
    "c4_like",
    "chinese_web_like",
    "code_like",
    "common_crawl_like",
    "instruction_dataset",
    "make_corpus",
    "stackexchange_like",
    "wikipedia_like",
]
