"""Baseline LLM data-processing pipelines compared against in the paper's evaluation."""

from repro.baselines.dolma_like import DolmaLikePipeline
from repro.baselines.redpajama_like import BaselineResult, RedPajamaLikePipeline

__all__ = ["BaselineResult", "DolmaLikePipeline", "RedPajamaLikePipeline"]
