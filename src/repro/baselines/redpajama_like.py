"""A RedPajama-like baseline pipeline (Sec. 7.2.1 / Appendix B.3.4).

The RedPajama processing scripts operate on plain Python dicts, load the whole
dataset at once, keep full intermediate copies between rules, re-tokenise the
text inside every rule (no shared context) and round-trip records through JSON
between stages (modelling their per-stage file IO).  This baseline implements
the same *cleaning semantics* as the Data-Juicer recipe it is compared with —
only less efficiently — so the Figure 8 comparison isolates the system design,
not the operator logic.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field

from repro.core.base_op import Deduplicator, Filter, Mapper
from repro.core.dataset import NestedDataset
from repro.core.sample import Fields
from repro.ops import load_ops


@dataclass
class BaselineResult:
    """Output of a baseline pipeline run."""

    rows: list[dict]
    wall_time_s: float
    peak_copies: int
    stage_times: dict[str, float] = field(default_factory=dict)

    @property
    def num_samples(self) -> int:
        """Number of surviving samples."""
        return len(self.rows)


class RedPajamaLikePipeline:
    """Rule-by-rule processing over plain dict lists with full intermediate copies."""

    def __init__(self, process_list: list):
        self.process_list = list(process_list)
        self.ops = load_ops(process_list)

    # ------------------------------------------------------------------
    @staticmethod
    def _json_roundtrip(rows: list[dict]) -> list[dict]:
        """Model the per-stage ``.jsonl.gz`` write/read of the original scripts."""
        import gzip

        payload = gzip.compress(json.dumps(rows, ensure_ascii=False, default=repr).encode("utf-8"))
        return json.loads(gzip.decompress(payload).decode("utf-8"))

    def run(self, dataset: NestedDataset) -> BaselineResult:
        """Run every rule sequentially, keeping a fresh full copy per rule."""
        start = time.perf_counter()
        # load the entire dataset into plain dicts up front
        rows = self._json_roundtrip(dataset.to_list())
        peak_copies = 1
        stage_times: dict[str, float] = {}
        for op in self.ops:
            stage_start = time.perf_counter()
            if isinstance(op, Mapper):
                new_rows = [op.process(dict(row)) for row in rows]
            elif isinstance(op, Filter):
                new_rows = []
                for row in rows:
                    # stats are recomputed from scratch for every rule (no caching,
                    # no shared tokenisation) and then discarded again
                    probe = op.compute_stats(dict(row))
                    if op.process(probe):
                        new_rows.append(dict(row))
            elif isinstance(op, Deduplicator):
                hashed = [op.compute_hash(dict(row)) for row in rows]
                deduped, _ = op.process(NestedDataset.from_list(hashed))
                new_rows = deduped.to_list()
            else:
                new_rows = [dict(row) for row in rows]
            # the scripts persist every stage to disk and reload it
            new_rows = self._json_roundtrip(new_rows)
            peak_copies = max(peak_copies, 2)
            rows = new_rows
            stage_times[op.name] = time.perf_counter() - stage_start
        rows = [
            {key: value for key, value in row.items() if key != Fields.stats} for row in rows
        ]
        return BaselineResult(
            rows=rows,
            wall_time_s=time.perf_counter() - start,
            peak_copies=peak_copies,
            stage_times=stage_times,
        )
