"""A Dolma-like baseline pipeline (Sec. 7.2.1 / Appendix B.3.4).

The Dolma toolkit processes data in separate stages — attribute *tagging*,
filtering by tagged attributes, then deduplication — with the input sharded in
advance and attributes persisted between stages.  This baseline reproduces the
same staged workflow (shard → tag → persist attributes → filter → dedup),
again with identical operator semantics to the Data-Juicer recipe so the
Figure 8 comparison measures the workflow overhead rather than different
cleaning rules.
"""

from __future__ import annotations

import json
import time

from repro.core.base_op import Deduplicator, Filter, Mapper
from repro.core.dataset import NestedDataset
from repro.core.sample import Fields
from repro.distributed.partition import partition_rows
from repro.ops import load_ops
from repro.baselines.redpajama_like import BaselineResult


class DolmaLikePipeline:
    """Staged tag → filter → dedup processing over pre-sharded inputs."""

    def __init__(self, process_list: list, num_shards: int = 4):
        self.process_list = list(process_list)
        self.ops = load_ops(process_list)
        self.num_shards = max(1, num_shards)

    @staticmethod
    def _persist(payload) -> object:
        """Model writing/reading the intermediate gzipped attribute files."""
        import gzip

        compressed = gzip.compress(json.dumps(payload, ensure_ascii=False, default=repr).encode("utf-8"))
        return json.loads(gzip.decompress(compressed).decode("utf-8"))

    def run(self, dataset: NestedDataset) -> BaselineResult:
        """Run the staged workflow and return the surviving rows."""
        start = time.perf_counter()
        stage_times: dict[str, float] = {}

        # stage 0: mandatory sharding of the input
        shard_start = time.perf_counter()
        shards = partition_rows(self._persist(dataset.to_list()), self.num_shards)
        stage_times["shard"] = time.perf_counter() - shard_start

        mappers = [op for op in self.ops if isinstance(op, Mapper)]
        filters = [op for op in self.ops if isinstance(op, Filter)]
        dedups = [op for op in self.ops if isinstance(op, Deduplicator)]

        # stage 1: mapping + attribute tagging, attributes persisted separately
        tag_start = time.perf_counter()
        tagged_shards = []
        attribute_shards = []
        for shard in shards:
            rows = [dict(row) for row in shard]
            for mapper in mappers:
                rows = [mapper.process(dict(row)) for row in rows]
            attributes = []
            for row in rows:
                probe = dict(row)
                for filter_op in filters:
                    probe = filter_op.compute_stats(probe)
                attributes.append(probe.get(Fields.stats, {}))
            tagged_shards.append(self._persist(rows))
            attribute_shards.append(self._persist(attributes))
        stage_times["tag"] = time.perf_counter() - tag_start

        # stage 2: filtering by the persisted attributes
        filter_start = time.perf_counter()
        kept_rows: list[dict] = []
        for rows, attributes in zip(tagged_shards, attribute_shards):
            for row, stats in zip(rows, attributes):
                probe = dict(row)
                probe[Fields.stats] = stats
                if all(filter_op.process(probe) for filter_op in filters):
                    kept_rows.append(row)
        kept_rows = self._persist(kept_rows)
        stage_times["filter"] = time.perf_counter() - filter_start

        # stage 3: deduplication over the merged survivors
        dedup_start = time.perf_counter()
        merged = NestedDataset.from_list(kept_rows)
        for dedup in dedups:
            merged = dedup.run(merged)
        stage_times["dedup"] = time.perf_counter() - dedup_start

        rows = [
            {key: value for key, value in row.items() if key != Fields.stats}
            for row in merged.to_list()
        ]
        return BaselineResult(
            rows=rows,
            wall_time_s=time.perf_counter() - start,
            peak_copies=3,
            stage_times=stage_times,
        )
