"""Dispatch helper choosing the right formatter for a path, directory or glob."""

from __future__ import annotations

from pathlib import Path

from repro.core.base_op import Formatter
from repro.core.dataset import NestedDataset
from repro.core.errors import FormatError
from repro.core.registry import FORMATTERS
from repro.formats.sharded import ShardedSource, effective_suffix, is_glob


def _formatter_for_suffix(suffix: str):
    """Return the registered formatter class accepting ``suffix``, or ``None``."""
    for name in FORMATTERS.list():
        formatter_cls = FORMATTERS.get(name)
        if suffix in getattr(formatter_cls, "SUFFIXES", ()):
            return formatter_cls
    return None


def load_formatter(dataset_path: str, text_keys=("text",), **kwargs) -> Formatter:
    """Return the formatter instance able to load ``dataset_path``.

    Dispatch is by *effective* file suffix (``.gz`` envelopes are
    transparent, so ``shard.jsonl.gz`` dispatches as ``.jsonl``).  A
    directory or glob pattern is probed for its most common **loadable**
    suffix — files no formatter understands never win the vote — and the
    chosen formatter then loads and concatenates every matching file.
    """
    path = Path(dataset_path)
    if path.is_file():
        suffix = effective_suffix(path)
        formatter_cls = _formatter_for_suffix(suffix)
        if formatter_cls is None:
            raise FormatError(
                f"no formatter registered for suffix {suffix!r} (path {dataset_path})"
            )
        return formatter_cls(dataset_path=dataset_path, text_keys=text_keys, **kwargs)
    if path.is_dir() or is_glob(str(dataset_path)):
        counts = ShardedSource(dataset_path).suffix_counts()
        loadable = {
            suffix: count
            for suffix, count in counts.items()
            if _formatter_for_suffix(suffix) is not None
        }
        if not loadable:
            raise FormatError(
                f"no loadable files under {dataset_path}; "
                f"found suffixes {sorted(counts)} but no formatter accepts any of them"
            )
        # most common loadable suffix; ties break deterministically by name
        suffix = max(sorted(loadable), key=loadable.get)
        formatter_cls = _formatter_for_suffix(suffix)
        return formatter_cls(dataset_path=dataset_path, text_keys=text_keys, **kwargs)
    raise FormatError(f"path not found: {dataset_path}")


def load_dataset(dataset_path: str, text_keys=("text",), **kwargs) -> NestedDataset:
    """Load and unify a dataset from a path in one call."""
    return load_formatter(dataset_path, text_keys=text_keys, **kwargs).load_dataset()
