"""Dispatch helper choosing the right formatter for a path or suffix."""

from __future__ import annotations

from pathlib import Path

from repro.core.base_op import Formatter
from repro.core.dataset import NestedDataset
from repro.core.errors import FormatError
from repro.core.registry import FORMATTERS


def load_formatter(dataset_path: str, text_keys=("text",), **kwargs) -> Formatter:
    """Return the formatter instance able to load ``dataset_path``.

    Dispatch is by file suffix; directories are probed for their most common
    loadable suffix.
    """
    path = Path(dataset_path)
    suffix = path.suffix
    if path.is_dir():
        counts: dict[str, int] = {}
        for child in path.rglob("*"):
            if child.is_file():
                counts[child.suffix] = counts.get(child.suffix, 0) + 1
        if not counts:
            raise FormatError(f"no files found under directory {path}")
        suffix = max(counts, key=counts.get)

    for name in FORMATTERS.list():
        formatter_cls = FORMATTERS.get(name)
        if suffix in getattr(formatter_cls, "SUFFIXES", ()):
            return formatter_cls(dataset_path=dataset_path, text_keys=text_keys, **kwargs)
    raise FormatError(f"no formatter registered for suffix {suffix!r} (path {dataset_path})")


def load_dataset(dataset_path: str, text_keys=("text",), **kwargs) -> NestedDataset:
    """Load and unify a dataset from a path in one call."""
    return load_formatter(dataset_path, text_keys=text_keys, **kwargs).load_dataset()
