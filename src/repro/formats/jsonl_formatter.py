"""Formatters for JSON-lines and JSON array files (plain or gzip-compressed)."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator

from repro.core.errors import FormatError
from repro.core.registry import FORMATTERS
from repro.core.sample import Fields
from repro.formats.sharded import ShardedFileFormatter, effective_suffix, open_shard


@FORMATTERS.register_module("jsonl_formatter")
class JsonlFormatter(ShardedFileFormatter):
    """Load ``.jsonl`` shards: one JSON object per line, unified to the text schema.

    The dataset path may be a single file, a directory or a glob; every
    matching shard (including ``.jsonl.gz``) is streamed line by line in
    sorted path order.
    """

    SUFFIXES = (".jsonl", ".ndjson")

    def iter_file_records(self, path: Path) -> Iterator[dict]:
        """Lazily parse one ``.jsonl`` shard, one record per line."""
        suffix = effective_suffix(path)
        with open_shard(path) as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as error:
                    raise FormatError(f"{path}:{line_number}: invalid JSON: {error}") from error
                if not isinstance(record, dict):
                    record = {Fields.text: str(record)}
                record[Fields.suffix] = suffix
                yield record


@FORMATTERS.register_module("json_formatter")
class JsonFormatter(ShardedFileFormatter):
    """Load ``.json`` files containing a list of records (or a single record).

    Each file is parsed whole (a JSON array is one document), but multi-file
    inputs still stream file by file.
    """

    SUFFIXES = (".json",)

    def iter_file_records(self, path: Path) -> Iterator[dict]:
        """Lazily yield the records of one JSON-array (or object) file."""
        suffix = effective_suffix(path)
        try:
            with open_shard(path) as handle:
                payload = json.load(handle)
        except json.JSONDecodeError as error:
            raise FormatError(f"{path}: invalid JSON: {error}") from error
        if isinstance(payload, dict):
            payload = [payload]
        if not isinstance(payload, list):
            raise FormatError(f"{path}: expected a JSON list or object at top level")
        for record in payload:
            if not isinstance(record, dict):
                record = {Fields.text: str(record)}
            record[Fields.suffix] = suffix
            yield record
