"""Formatters for JSON-lines and JSON array files."""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.base_op import Formatter
from repro.core.dataset import NestedDataset
from repro.core.errors import FormatError
from repro.core.registry import FORMATTERS
from repro.core.sample import Fields


@FORMATTERS.register_module("jsonl_formatter")
class JsonlFormatter(Formatter):
    """Load ``.jsonl`` files: one JSON object per line, unified to the text schema."""

    SUFFIXES = (".jsonl", ".ndjson")

    def load_dataset(self) -> NestedDataset:
        path = Path(self.dataset_path)
        if not path.exists():
            raise FormatError(f"jsonl file not found: {path}")
        records = []
        with path.open("r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as error:
                    raise FormatError(f"{path}:{line_number}: invalid JSON: {error}") from error
                if not isinstance(record, dict):
                    record = {Fields.text: str(record)}
                record[Fields.suffix] = path.suffix
                records.append(record)
        return NestedDataset.from_list(self.unify_samples(records, self.text_keys))


@FORMATTERS.register_module("json_formatter")
class JsonFormatter(Formatter):
    """Load ``.json`` files containing a list of records (or a single record)."""

    SUFFIXES = (".json",)

    def load_dataset(self) -> NestedDataset:
        path = Path(self.dataset_path)
        if not path.exists():
            raise FormatError(f"json file not found: {path}")
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise FormatError(f"{path}: invalid JSON: {error}") from error
        if isinstance(payload, dict):
            payload = [payload]
        if not isinstance(payload, list):
            raise FormatError(f"{path}: expected a JSON list or object at top level")
        records = []
        for record in payload:
            if not isinstance(record, dict):
                record = {Fields.text: str(record)}
            record[Fields.suffix] = path.suffix
            records.append(record)
        return NestedDataset.from_list(self.unify_samples(records, self.text_keys))
