"""Sharded input resolution: directories, globs and compressed shards.

Production corpora rarely arrive as one file — they come as directories of
``shard-00000.jsonl.gz``-style pieces.  :class:`ShardedSource` unifies the
three ways of naming such an input (a single file, a directory, a glob
pattern) into one ordered file list, understands ``.gz`` compression as a
transparent envelope (the *effective* suffix of ``docs.jsonl.gz`` is
``.jsonl``), and opens every shard through one gzip-aware code path.

:class:`ShardedFileFormatter` builds on it: concrete file formatters only
implement :meth:`~ShardedFileFormatter.iter_file_records` for a single shard
and inherit lazy multi-file iteration (``iter_records``) plus the materialised
``load_dataset`` view.
"""

from __future__ import annotations

import glob as _glob
import gzip
import io
from pathlib import Path
from typing import IO, Iterator, Sequence

from repro.core.base_op import Formatter
from repro.core.dataset import NestedDataset
from repro.core.errors import FormatError

#: compression envelope recognised on any shard file
GZIP_SUFFIX = ".gz"

_GLOB_CHARS = ("*", "?", "[")


def effective_suffix(path: str | Path) -> str:
    """File-type suffix with the ``.gz`` envelope stripped.

    ``docs.jsonl.gz`` → ``.jsonl``; ``docs.jsonl`` → ``.jsonl``; a bare
    ``docs.gz`` has no inner suffix and reports ``.gz`` itself.
    """
    path = Path(path)
    if path.suffix == GZIP_SUFFIX:
        inner = Path(path.stem).suffix
        return inner or GZIP_SUFFIX
    return path.suffix


class _GzipTextWriter(io.TextIOWrapper):
    """Text writer over a deterministic gzip stream.

    ``GzipFile`` is constructed with an empty embedded filename and a zeroed
    mtime so identical content produces identical bytes — exports and spill
    shards stay byte-reproducible across runs and paths.  Closing the wrapper
    also closes the raw file handle (``GzipFile`` never closes a borrowed
    ``fileobj`` itself).
    """

    def __init__(self, path: Path, newline: str | None = None):
        self._raw = open(path, "wb")
        try:
            compressed = gzip.GzipFile(filename="", mode="wb", fileobj=self._raw, mtime=0)
        except Exception:
            self._raw.close()
            raise
        super().__init__(compressed, encoding="utf-8", newline=newline)

    def close(self) -> None:
        """Flush and close the text wrapper, then the underlying gzip stream."""
        try:
            super().close()
        finally:
            if not self._raw.closed:
                self._raw.close()


def open_shard(
    path: str | Path,
    mode: str = "r",
    newline: str | None = None,
    errors: str | None = None,
) -> IO[str]:
    """Open a shard for text I/O, transparently (de)compressing ``.gz`` files."""
    path = Path(path)
    if path.suffix == GZIP_SUFFIX:
        if "w" in mode:
            return _GzipTextWriter(path, newline=newline)
        return gzip.open(path, "rt", encoding="utf-8", newline=newline, errors=errors)
    return open(path, mode, encoding="utf-8", newline=newline, errors=errors)


def is_glob(spec: str) -> bool:
    """True when the path spec contains glob magic characters."""
    return any(char in spec for char in _GLOB_CHARS)


class ShardedSource:
    """An ordered list of shard files behind one path spec.

    The spec may be a single file, a directory (all files underneath,
    recursively) or a glob pattern (``data/shard-*.jsonl.gz``).  ``suffixes``
    restricts the match to the given *effective* suffixes, so ``.jsonl``
    accepts both ``a.jsonl`` and ``a.jsonl.gz``.  Files are returned sorted
    by path, making shard order — and therefore sample order — deterministic.
    """

    def __init__(self, spec: str | Path, suffixes: Sequence[str] | None = None):
        self.spec = str(spec)
        self.suffixes = tuple(suffixes) if suffixes else None

    def _matches(self, path: Path) -> bool:
        return self.suffixes is None or effective_suffix(path) in self.suffixes

    def files(self) -> list[Path]:
        """Resolve the spec to its sorted shard files.

        Raises :class:`FormatError` when the spec names nothing, or when it
        names files but none carry an accepted suffix.
        """
        path = Path(self.spec)
        if path.is_file():
            if not self._matches(path):
                raise FormatError(
                    f"{path}: suffix {effective_suffix(path)!r} not in {self.suffixes}"
                )
            return [path]
        if path.is_dir():
            candidates = sorted(child for child in path.rglob("*") if child.is_file())
            where: str | Path = path
        elif is_glob(self.spec):
            candidates = sorted(
                Path(match) for match in _glob.glob(self.spec, recursive=True)
                if Path(match).is_file()
            )
            where = self.spec
        else:
            raise FormatError(f"path not found: {path}")
        if not candidates:
            raise FormatError(f"no files found under {where}")
        matched = [candidate for candidate in candidates if self._matches(candidate)]
        if not matched:
            raise FormatError(
                f"no files with suffixes {self.suffixes} under {where}"
            )
        return matched

    def suffix_counts(self) -> dict[str, int]:
        """Histogram of effective suffixes over every file the spec names."""
        counts: dict[str, int] = {}
        unfiltered = ShardedSource(self.spec)
        for path in unfiltered.files():
            suffix = effective_suffix(path)
            counts[suffix] = counts.get(suffix, 0) + 1
        return counts


class ShardedFileFormatter(Formatter):
    """Base of every file-backed formatter: sharded inputs, lazy records.

    Subclasses implement :meth:`iter_file_records` (raw records of one shard
    file) and inherit:

    * :meth:`resolve_paths` — the spec resolved via :class:`ShardedSource`
      against the formatter's ``SUFFIXES``;
    * :meth:`iter_records` — unified samples streamed file by file, the
      bounded-memory path the streaming executor consumes;
    * :meth:`load_dataset` — the materialised in-memory view.
    """

    def resolve_paths(self) -> list[Path]:
        """Shard files of this formatter's path spec, in processing order."""
        if self.dataset_path is None:
            raise FormatError(f"{self.name} needs a dataset_path to load files")
        return ShardedSource(self.dataset_path, suffixes=self.SUFFIXES).files()

    def iter_file_records(self, path: Path) -> Iterator[dict]:
        """Yield the raw records of one shard file."""
        raise NotImplementedError

    def iter_records(self) -> Iterator[dict]:
        """Lazily yield unified samples across every resolved shard file."""
        for path in self.resolve_paths():
            for record in self.iter_file_records(path):
                yield self.unify_sample(record, self.text_keys)

    def load_dataset(self) -> NestedDataset:
        """Materialise :meth:`iter_records` as an in-memory dataset."""
        return NestedDataset.from_list(list(self.iter_records()))


__all__ = [
    "GZIP_SUFFIX",
    "ShardedFileFormatter",
    "ShardedSource",
    "effective_suffix",
    "is_glob",
    "open_shard",
]
