"""Formatters for plain-text, markdown, HTML and source-code files."""

from __future__ import annotations

from pathlib import Path

from repro.core.base_op import Formatter
from repro.core.dataset import NestedDataset
from repro.core.errors import FormatError
from repro.core.registry import FORMATTERS
from repro.core.sample import Fields


class _FileFormatter(Formatter):
    """Shared implementation: one sample per file (or per paragraph for txt)."""

    split_paragraphs = False

    def _paths(self) -> list[Path]:
        root = Path(self.dataset_path)
        if root.is_dir():
            paths = sorted(
                path for path in root.rglob("*") if path.is_file() and path.suffix in self.SUFFIXES
            )
        elif root.is_file():
            paths = [root]
        else:
            raise FormatError(f"path not found: {root}")
        if not paths:
            raise FormatError(f"no files with suffixes {self.SUFFIXES} under {root}")
        return paths

    def load_dataset(self) -> NestedDataset:
        records = []
        for path in self._paths():
            content = path.read_text(encoding="utf-8", errors="replace")
            record = {
                Fields.text: content,
                Fields.meta: {"source_file": str(path)},
                Fields.suffix: path.suffix,
            }
            records.append(record)
        return NestedDataset.from_list(self.unify_samples(records, self.text_keys))


@FORMATTERS.register_module("text_formatter")
class TextFormatter(_FileFormatter):
    """Load plain ``.txt`` files, one sample per file."""

    SUFFIXES = (".txt",)


@FORMATTERS.register_module("markdown_formatter")
class MarkdownFormatter(_FileFormatter):
    """Load ``.md`` / ``.markdown`` files, one sample per file."""

    SUFFIXES = (".md", ".markdown")


@FORMATTERS.register_module("html_formatter")
class HtmlFormatter(_FileFormatter):
    """Load raw ``.html`` files; markup removal is left to ``clean_html_mapper``."""

    SUFFIXES = (".html", ".htm")


@FORMATTERS.register_module("code_formatter")
class CodeFormatter(_FileFormatter):
    """Load source-code files (``.py``, ``.cpp``, ``.java``, ...), one sample per file."""

    SUFFIXES = (".py", ".cpp", ".c", ".h", ".java", ".js", ".ts", ".go", ".rs", ".sh")
