"""Formatters for plain-text, markdown, HTML and source-code files."""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

from repro.core.registry import FORMATTERS
from repro.core.sample import Fields
from repro.formats.sharded import ShardedFileFormatter, effective_suffix, open_shard


class _FileFormatter(ShardedFileFormatter):
    """Shared implementation: one sample per file, streamed in path order.

    Directory, glob and ``.gz``-compressed inputs all resolve through
    :class:`~repro.formats.sharded.ShardedSource`.
    """

    def iter_file_records(self, path: Path) -> Iterator[dict]:
        """Yield one record holding the whole file as its text payload."""
        with open_shard(path, errors="replace") as handle:
            content = handle.read()
        yield {
            Fields.text: content,
            Fields.meta: {"source_file": str(path)},
            Fields.suffix: effective_suffix(path),
        }


@FORMATTERS.register_module("text_formatter")
class TextFormatter(_FileFormatter):
    """Load plain ``.txt`` files, one sample per file."""

    SUFFIXES = (".txt",)


@FORMATTERS.register_module("markdown_formatter")
class MarkdownFormatter(_FileFormatter):
    """Load ``.md`` / ``.markdown`` files, one sample per file."""

    SUFFIXES = (".md", ".markdown")


@FORMATTERS.register_module("html_formatter")
class HtmlFormatter(_FileFormatter):
    """Load raw ``.html`` files; markup removal is left to ``clean_html_mapper``."""

    SUFFIXES = (".html", ".htm")


@FORMATTERS.register_module("code_formatter")
class CodeFormatter(_FileFormatter):
    """Load source-code files (``.py``, ``.cpp``, ``.java``, ...), one sample per file."""

    SUFFIXES = (".py", ".cpp", ".c", ".h", ".java", ".js", ".ts", ".go", ".rs", ".sh")
