"""Formatters: load heterogeneous raw files and unify them into NestedDatasets."""

from repro.core.registry import FORMATTERS
from repro.formats.csv_formatter import CsvFormatter, TsvFormatter
from repro.formats.jsonl_formatter import JsonFormatter, JsonlFormatter
from repro.formats.load import load_dataset, load_formatter
from repro.formats.mixture_formatter import MixtureFormatter, mix_datasets
from repro.formats.sharded import (
    ShardedFileFormatter,
    ShardedSource,
    effective_suffix,
    open_shard,
)
from repro.formats.text_formatter import (
    CodeFormatter,
    HtmlFormatter,
    MarkdownFormatter,
    TextFormatter,
)

__all__ = [
    "FORMATTERS",
    "CodeFormatter",
    "CsvFormatter",
    "HtmlFormatter",
    "JsonFormatter",
    "JsonlFormatter",
    "MarkdownFormatter",
    "MixtureFormatter",
    "ShardedFileFormatter",
    "ShardedSource",
    "TextFormatter",
    "TsvFormatter",
    "effective_suffix",
    "load_dataset",
    "load_formatter",
    "mix_datasets",
    "open_shard",
]
