"""Formatters for CSV and TSV files."""

from __future__ import annotations

import csv
from pathlib import Path

from repro.core.base_op import Formatter
from repro.core.dataset import NestedDataset
from repro.core.errors import FormatError
from repro.core.registry import FORMATTERS
from repro.core.sample import Fields


class _DelimitedFormatter(Formatter):
    """Shared implementation for delimiter-separated files with a header row."""

    delimiter = ","

    def load_dataset(self) -> NestedDataset:
        path = Path(self.dataset_path)
        if not path.exists():
            raise FormatError(f"file not found: {path}")
        records = []
        with path.open("r", encoding="utf-8", newline="") as handle:
            reader = csv.DictReader(handle, delimiter=self.delimiter)
            if reader.fieldnames is None:
                raise FormatError(f"{path}: missing header row")
            for row in reader:
                record = {key: value for key, value in row.items() if key is not None}
                record[Fields.suffix] = path.suffix
                records.append(record)
        return NestedDataset.from_list(self.unify_samples(records, self.text_keys))


@FORMATTERS.register_module("csv_formatter")
class CsvFormatter(_DelimitedFormatter):
    """Load ``.csv`` files (header row required); the text column is unified to ``text``."""

    SUFFIXES = (".csv",)
    delimiter = ","


@FORMATTERS.register_module("tsv_formatter")
class TsvFormatter(_DelimitedFormatter):
    """Load ``.tsv`` files (header row required); the text column is unified to ``text``."""

    SUFFIXES = (".tsv",)
    delimiter = "\t"
