"""Formatters for CSV and TSV files (plain or gzip-compressed)."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterator

from repro.core.errors import FormatError
from repro.core.registry import FORMATTERS
from repro.core.sample import Fields
from repro.formats.sharded import ShardedFileFormatter, effective_suffix, open_shard


class _DelimitedFormatter(ShardedFileFormatter):
    """Shared implementation for delimiter-separated shards with a header row."""

    delimiter = ","

    def iter_file_records(self, path: Path) -> Iterator[dict]:
        """Lazily yield one delimited file's rows as header-keyed dicts."""
        suffix = effective_suffix(path)
        with open_shard(path, newline="") as handle:
            reader = csv.DictReader(handle, delimiter=self.delimiter)
            if reader.fieldnames is None:
                raise FormatError(f"{path}: missing header row")
            for row in reader:
                record = {key: value for key, value in row.items() if key is not None}
                record[Fields.suffix] = suffix
                yield record


@FORMATTERS.register_module("csv_formatter")
class CsvFormatter(_DelimitedFormatter):
    """Load ``.csv`` files (header row required); the text column is unified to ``text``."""

    SUFFIXES = (".csv",)
    delimiter = ","


@FORMATTERS.register_module("tsv_formatter")
class TsvFormatter(_DelimitedFormatter):
    """Load ``.tsv`` files (header row required); the text column is unified to ``text``."""

    SUFFIXES = (".tsv",)
    delimiter = "\t"
