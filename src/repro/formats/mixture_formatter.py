"""Formatter that mixes several datasets according to sampling weights."""

from __future__ import annotations

import random
from typing import Sequence

from repro.core.base_op import Formatter
from repro.core.dataset import NestedDataset
from repro.core.errors import FormatError
from repro.core.registry import FORMATTERS
from repro.core.sample import Fields


@FORMATTERS.register_module("mixture_formatter")
class MixtureFormatter(Formatter):
    """Build a mixture dataset from several already-loaded datasets.

    ``weights`` are per-source sampling proportions (they need not sum to 1;
    they are normalised).  ``max_samples`` bounds the size of the mixture.
    Each sample is tagged with its source name under ``__source__`` so recipes
    and analyzers can report per-component statistics (Table 7 of the paper).
    """

    def __init__(
        self,
        datasets: dict[str, NestedDataset] | None = None,
        weights: dict[str, float] | None = None,
        max_samples: int | None = None,
        seed: int = 42,
        **kwargs,
    ):
        super().__init__(dataset_path=None, **kwargs)
        self.datasets = dict(datasets or {})
        self.weights = dict(weights or {})
        self.max_samples = max_samples
        self.seed = seed

    def load_dataset(self) -> NestedDataset:
        if not self.datasets:
            raise FormatError("mixture_formatter requires at least one source dataset")
        names = list(self.datasets)
        raw_weights = [max(0.0, float(self.weights.get(name, 1.0))) for name in names]
        total_weight = sum(raw_weights)
        if total_weight <= 0:
            raise FormatError("mixture weights must contain at least one positive value")
        normalized = [weight / total_weight for weight in raw_weights]

        total_available = sum(len(dataset) for dataset in self.datasets.values())
        target_total = min(self.max_samples or total_available, total_available)

        rng = random.Random(self.seed)
        mixed_rows: list[dict] = []
        for name, weight in zip(names, normalized):
            dataset = self.datasets[name]
            take = min(len(dataset), int(round(target_total * weight)))
            indices = rng.sample(range(len(dataset)), take) if take < len(dataset) else list(range(len(dataset)))
            for index in sorted(indices):
                row = dict(dataset[index])
                row[Fields.source] = name
                mixed_rows.append(row)
        rng.shuffle(mixed_rows)
        return NestedDataset.from_list(self.unify_samples(mixed_rows, self.text_keys))

    @staticmethod
    def mix(
        datasets: dict[str, NestedDataset],
        weights: dict[str, float],
        max_samples: int | None = None,
        seed: int = 42,
    ) -> NestedDataset:
        """Convenience wrapper: build and load a mixture in one call."""
        formatter = MixtureFormatter(
            datasets=datasets, weights=weights, max_samples=max_samples, seed=seed
        )
        return formatter.load_dataset()


def mix_datasets(
    datasets: dict[str, NestedDataset],
    weights: dict[str, float] | Sequence[float],
    max_samples: int | None = None,
    seed: int = 42,
) -> NestedDataset:
    """Module-level helper accepting either a weight dict or a weight sequence."""
    if not isinstance(weights, dict):
        weights = dict(zip(datasets.keys(), weights))
    return MixtureFormatter.mix(datasets, weights, max_samples=max_samples, seed=seed)
