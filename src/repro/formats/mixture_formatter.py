"""Formatter that mixes several datasets according to sampling weights."""

from __future__ import annotations

import math
import random
from typing import Iterator, Sequence

from repro.core.base_op import Formatter
from repro.core.dataset import NestedDataset
from repro.core.errors import FormatError
from repro.core.registry import FORMATTERS
from repro.core.sample import Fields


def largest_remainder_allocation(total: int, weights: Sequence[float], capacities: Sequence[int]) -> list[int]:
    """Apportion ``total`` samples over sources by weight, never overshooting.

    Independent per-source rounding (``int(round(total * w))``) can overshoot
    the target — weights ``[.5, .5]`` with ``total=7`` round to ``4 + 4 = 8``.
    The largest-remainder method allocates floors first and hands the missing
    units to the largest fractional remainders, so the quotas sum to exactly
    ``total``.  Each quota is then capped by its source's capacity — weights
    stay *sampling proportions* (a small source under-fills its quota rather
    than spilling it to the other sources), so the result never exceeds
    ``total`` and equals it whenever every source can fill its quota.
    """
    weight_sum = sum(weights)
    if weight_sum <= 0 or total <= 0:
        return [0] * len(weights)
    exact = [total * weight / weight_sum for weight in weights]
    quotas = [int(math.floor(value)) for value in exact]
    leftover = total - sum(quotas)
    by_remainder = sorted(
        range(len(weights)),
        key=lambda index: (-(exact[index] - math.floor(exact[index])), index),
    )
    for index in by_remainder[:leftover]:
        quotas[index] += 1
    return [min(quota, capacity) for quota, capacity in zip(quotas, capacities)]


@FORMATTERS.register_module("mixture_formatter")
class MixtureFormatter(Formatter):
    """Build a mixture dataset from several already-loaded datasets.

    ``weights`` are per-source sampling proportions (they need not sum to 1;
    they are normalised).  ``max_samples`` bounds the size of the mixture;
    per-source takes are apportioned with the largest-remainder method so
    they sum to exactly the target (never overshooting — a source smaller
    than its quota under-fills it, keeping the weights true proportions).
    Each sample is tagged with its source name under ``__source__`` so
    recipes and analyzers can report per-component statistics (Table 7 of
    the paper).
    """

    def __init__(
        self,
        datasets: dict[str, NestedDataset] | None = None,
        weights: dict[str, float] | None = None,
        max_samples: int | None = None,
        seed: int = 42,
        **kwargs,
    ):
        super().__init__(dataset_path=None, **kwargs)
        self.datasets = dict(datasets or {})
        self.weights = dict(weights or {})
        self.max_samples = max_samples
        self.seed = seed

    def _plan(self) -> list[tuple[str, int]]:
        """Deterministic shuffled pick list of ``(source_name, row_index)`` pairs.

        Only indices are materialised here — the row payloads are fetched
        lazily by :meth:`iter_records`, keeping the mixture path streamable.
        """
        if not self.datasets:
            raise FormatError("mixture_formatter requires at least one source dataset")
        names = list(self.datasets)
        raw_weights = [max(0.0, float(self.weights.get(name, 1.0))) for name in names]
        total_weight = sum(raw_weights)
        if total_weight <= 0:
            raise FormatError("mixture weights must contain at least one positive value")
        normalized = [weight / total_weight for weight in raw_weights]

        capacities = [len(self.datasets[name]) for name in names]
        total_available = sum(capacities)
        target_total = min(self.max_samples or total_available, total_available)

        takes = largest_remainder_allocation(target_total, normalized, capacities)
        rng = random.Random(self.seed)
        picks: list[tuple[str, int]] = []
        for name, take, capacity in zip(names, takes, capacities):
            indices = rng.sample(range(capacity), take) if take < capacity else list(range(capacity))
            picks.extend((name, index) for index in sorted(indices))
        rng.shuffle(picks)
        return picks

    def iter_records(self) -> Iterator[dict]:
        """Lazily yield the mixed samples (payloads fetched one at a time)."""
        for name, index in self._plan():
            row = dict(self.datasets[name][index])
            row[Fields.source] = name
            yield self.unify_sample(row, self.text_keys)

    def load_dataset(self) -> NestedDataset:
        """Materialise the sampled mixture as one unified dataset."""
        return NestedDataset.from_list(list(self.iter_records()))

    @staticmethod
    def mix(
        datasets: dict[str, NestedDataset],
        weights: dict[str, float],
        max_samples: int | None = None,
        seed: int = 42,
    ) -> NestedDataset:
        """Convenience wrapper: build and load a mixture in one call."""
        formatter = MixtureFormatter(
            datasets=datasets, weights=weights, max_samples=max_samples, seed=seed
        )
        return formatter.load_dataset()


def mix_datasets(
    datasets: dict[str, NestedDataset],
    weights: dict[str, float] | Sequence[float],
    max_samples: int | None = None,
    seed: int = 42,
) -> NestedDataset:
    """Module-level helper accepting either a weight dict or a weight sequence."""
    if not isinstance(weights, dict):
        weights = dict(zip(datasets.keys(), weights))
    return MixtureFormatter.mix(datasets, weights, max_samples=max_samples, seed=seed)
