"""Pre-training mixture recipes (Table 7 of the paper, scaled to the simulator).

The paper's refined pre-training recipe mixes 15 components (CommonCrawl, C4,
GitHub, Books, Wikipedia, arXiv, ...) with specific sampling proportions and
extra epochs on the high-quality components.  This module records those
proportions, builds a scaled-down synthetic counterpart of the mixture, and
assembles the three corpora compared in Figure 7:

* ``redpajama``        — RedPajama-like components, unrefined;
* ``redpajama_pile``   — RedPajama + Pile-like components, unrefined;
* ``data_juicer``      — the same union refined with the built-in recipe.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dataset import NestedDataset, dataset_token_count
from repro.core.executor import Executor
from repro.formats.mixture_formatter import mix_datasets
from repro.recipes.registry import get_recipe
from repro.synth import corpora

#: Table 7 — component token counts (paper values, in tokens) and sampling
#: proportions of the Data-Juicer pre-training recipe.
PRETRAIN_COMPONENTS: dict[str, dict] = {
    "CommonCrawl": {"tokens": 360_925_581_674, "proportion": 0.4491, "epochs": 1.0},
    "C4": {"tokens": 181_951_688_729, "proportion": 0.2264, "epochs": 1.0},
    "GitHub": {"tokens": 65_076_921_292, "proportion": 0.0810, "epochs": 1.0},
    "Books": {"tokens": 26_389_944_579, "proportion": 0.0657, "epochs": 2.0},
    "Wikipedia": {"tokens": 17_615_935_449, "proportion": 0.0548, "epochs": 2.5},
    "arXiv": {"tokens": 29_093_082_586, "proportion": 0.0362, "epochs": 1.0},
    "PubMed Central": {"tokens": 25_589_708_647, "proportion": 0.0318, "epochs": 1.0},
    "StackExchange": {"tokens": 19_793_629_900, "proportion": 0.0246, "epochs": 1.0},
    "FreeLaw": {"tokens": 13_057_506_102, "proportion": 0.0162, "epochs": 1.0},
    "PubMed Abstracts": {"tokens": 5_208_343_613, "proportion": 0.0065, "epochs": 1.0},
    "USPTO": {"tokens": 4_021_281_155, "proportion": 0.0050, "epochs": 1.0},
    "EuroParl": {"tokens": 780_962_770, "proportion": 0.0010, "epochs": 1.0},
    "HackerNews": {"tokens": 485_584_871, "proportion": 0.0006, "epochs": 1.0},
    "PhilPapers": {"tokens": 478_040_431, "proportion": 0.0006, "epochs": 1.0},
    "NIH ExPorter": {"tokens": 436_414_852, "proportion": 0.0005, "epochs": 1.0},
}

#: mapping of the paper's components onto the synthetic corpus builders
_COMPONENT_BUILDERS = {
    "CommonCrawl": ("common_crawl", {}),
    "C4": ("c4", {}),
    "GitHub": ("github", {}),
    "Books": ("books", {}),
    "Wikipedia": ("wikipedia", {}),
    "arXiv": ("arxiv", {}),
    "StackExchange": ("stackexchange", {}),
}


@dataclass
class MixtureStats:
    """Per-component statistics of an assembled mixture (the Table 7 rows)."""

    component: str
    num_samples: int
    num_tokens: int
    sampling_proportion: float

    def as_dict(self) -> dict:
        """Plain-dict view for the Table 7 benchmark."""
        return {
            "component": self.component,
            "num_samples": self.num_samples,
            "num_tokens": self.num_tokens,
            "sampling_proportion": self.sampling_proportion,
        }


def paper_table7_rows() -> list[dict]:
    """The paper's Table 7 rows (component, tokens, sampling proportion)."""
    return [
        {"component": name, "tokens": spec["tokens"], "proportion": spec["proportion"]}
        for name, spec in PRETRAIN_COMPONENTS.items()
    ]


def build_component_datasets(samples_per_component: int = 80, seed: int = 0) -> dict[str, NestedDataset]:
    """Build a synthetic counterpart of every mapped component."""
    datasets: dict[str, NestedDataset] = {}
    for index, (component, (builder, kwargs)) in enumerate(_COMPONENT_BUILDERS.items()):
        datasets[component] = corpora.make_corpus(
            builder, num_samples=samples_per_component, seed=seed + index * 101, **kwargs
        )
    return datasets


def build_pretrain_mixture(
    samples_per_component: int = 80,
    seed: int = 0,
    include_pile_like: bool = True,
    refined: bool = False,
) -> NestedDataset:
    """Assemble one of the three Figure 7 corpora.

    ``include_pile_like=False`` models the RedPajama-only corpus (web-heavy
    components only); ``refined=True`` additionally runs the built-in
    refinement recipe over the mixture.
    """
    datasets = build_component_datasets(samples_per_component, seed)
    if not include_pile_like:
        datasets = {
            name: dataset
            for name, dataset in datasets.items()
            if name in ("CommonCrawl", "C4", "GitHub", "Books", "Wikipedia", "arXiv", "StackExchange")
            and name not in ("StackExchange",)
        }
    weights = {
        name: PRETRAIN_COMPONENTS[name]["proportion"] * PRETRAIN_COMPONENTS[name]["epochs"]
        for name in datasets
    }
    mixture = mix_datasets(datasets, weights, seed=seed)
    if refined:
        recipe = get_recipe("pretrain-redpajama-pile-refine")
        with Executor(recipe) as executor:
            mixture = executor.run(mixture)
    return mixture


def mixture_stats(mixture: NestedDataset) -> list[MixtureStats]:
    """Per-component sample/token statistics of an assembled mixture."""
    from collections import defaultdict

    from repro.core.sample import Fields

    groups: dict[str, list[dict]] = defaultdict(list)
    for row in mixture:
        source = row.get(Fields.source) or (row.get(Fields.meta) or {}).get("source") or "unknown"
        groups[str(source)].append(row)
    total_tokens = dataset_token_count(mixture) or 1
    stats = []
    for component, rows in sorted(groups.items(), key=lambda item: -len(item[1])):
        tokens = sum(len(str(row.get(Fields.text, "")).split()) for row in rows)
        stats.append(
            MixtureStats(
                component=component,
                num_samples=len(rows),
                num_tokens=tokens,
                sampling_proportion=tokens / total_tokens,
            )
        )
    return stats
