"""Built-in data recipes: the recipe catalogue plus pre-training / fine-tuning builders."""

from repro.recipes.finetune import (
    FINETUNE_CATEGORY_COUNTS,
    build_finetune_pool,
    data_juicer_finetune_dataset,
    paper_table8_rows,
    random_finetune_dataset,
)
from repro.recipes.pretrain import (
    PRETRAIN_COMPONENTS,
    MixtureStats,
    build_component_datasets,
    build_pretrain_mixture,
    mixture_stats,
    paper_table7_rows,
)
from repro.recipes.registry import BUILT_IN_RECIPES, get_recipe, list_recipes

__all__ = [
    "BUILT_IN_RECIPES",
    "FINETUNE_CATEGORY_COUNTS",
    "MixtureStats",
    "PRETRAIN_COMPONENTS",
    "build_component_datasets",
    "build_finetune_pool",
    "build_pretrain_mixture",
    "data_juicer_finetune_dataset",
    "get_recipe",
    "list_recipes",
    "mixture_stats",
    "paper_table7_rows",
    "paper_table8_rows",
    "random_finetune_dataset",
]
