"""Fine-tuning data pools and recipes (Table 8 / Table 3 of the paper).

The paper labels the Alpaca-CoT collection of 39 datasets with language
(EN/ZH/multilingual), usage (IFT / CFT single-round / CFT multi-round /
preference) and other tags, then builds refined fine-tuning recipes by
filtering on tags and sampling for diversity.  This module records the Table 8
category counts, builds a synthetic counterpart pool of tagged datasets and
implements the two dataset constructions compared in Table 3: random sampling
versus the Data-Juicer recipe (tag filtering + refinement + diversity-aware
sampling).
"""

from __future__ import annotations

from repro.core.dataset import NestedDataset, concatenate_datasets
from repro.core.executor import Executor
from repro.recipes.registry import get_recipe
from repro.synth.corpora import instruction_dataset
from repro.tools.sampler.diversity import DiversitySampler

#: Table 8 — number of datasets per category tag in the labelled Alpaca-CoT collection.
FINETUNE_CATEGORY_COUNTS: dict[str, dict[str, int]] = {
    "Language": {"English": 28, "Chinese": 14, "Multilingual": 3},
    "Usage": {
        "Instruct Fine-Tuning (IFT)": 17,
        "CFT: Single-Round Dialog": 23,
        "CFT: Multi-Round Dialog": 2,
        "CFT: Preference": 5,
    },
    "Task Type": {"Multi-Task": 27, "Task-Specific": 13},
    "Generation Method": {
        "Human-Generated": 3,
        "Self-Instruct": 12,
        "Mixed": 5,
        "Collection of Datasets": 19,
    },
}


def paper_table8_rows() -> list[dict]:
    """The paper's Table 8 rows (category, sub-category, #datasets)."""
    rows = []
    for category, counts in FINETUNE_CATEGORY_COUNTS.items():
        for sub_category, num_datasets in counts.items():
            rows.append(
                {"category": category, "sub_category": sub_category, "num_datasets": num_datasets}
            )
    return rows


def build_finetune_pool(
    num_datasets: int = 8,
    samples_per_dataset: int = 120,
    seed: int = 0,
) -> dict[str, NestedDataset]:
    """Build a pool of tagged synthetic fine-tuning datasets.

    The pool alternates language (EN/ZH), usage (IFT/CFT) and quality so the
    tag filters and the diversity sampler have real signal to work with.
    """
    pool: dict[str, NestedDataset] = {}
    for index in range(num_datasets):
        language = "zh" if index % 3 == 2 else "en"
        usage = "IFT" if index % 2 == 0 else "CFT"
        # alternate between noisier crowd-sourced-style and cleaner curated-style
        # datasets so tag filtering + refinement has real signal to exploit
        quality = 0.55 if index % 4 < 2 else 0.85
        name = f"{usage.lower()}_{language}_{index:02d}"
        pool[name] = instruction_dataset(
            num_samples=samples_per_dataset,
            seed=seed + index * 37,
            language=language,
            usage=usage,
            quality=quality,
            name=name,
        )
    return pool


def random_finetune_dataset(
    pool: dict[str, NestedDataset], num_samples: int, seed: int = 0
) -> NestedDataset:
    """The trivial baseline of Table 3: uniform random sampling from the pool."""
    merged = concatenate_datasets(list(pool.values()))
    return merged.shuffle(seed=seed).take(num_samples)


def data_juicer_finetune_dataset(
    pool: dict[str, NestedDataset],
    num_samples: int,
    language: str = "EN",
    usage: str = "CFT",
    seed: int = 0,
) -> NestedDataset:
    """The Data-Juicer construction of Table 3.

    Tag-filter the pool, refine it with the built-in fine-tuning recipe and
    sample for verb–noun diversity down to the requested size.
    """
    merged = concatenate_datasets(list(pool.values()))
    recipe_name = "finetune-cft-zh-refine" if language.upper() == "ZH" else "finetune-cft-en-refine"
    recipe = get_recipe(recipe_name)
    # restrict to the requested usage tag on top of the language tag filter
    recipe["process"].insert(
        0, {"specified_field_filter": {"field_key": "meta.usage", "target_values": [usage]}}
    )
    with Executor(recipe) as executor:
        refined = executor.run(merged)
    if len(refined) <= num_samples:
        return refined
    return DiversitySampler(seed=seed).sample(refined, num_samples)
