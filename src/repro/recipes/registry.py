"""Built-in data recipes (Sec. 5.1): ready-to-use process lists for common scenarios.

The original system ships 20+ recipes for pre-training and fine-tuning data in
English and Chinese.  The same catalogue is reproduced here as plain recipe
dictionaries that :func:`repro.load_config` accepts directly; users refine them
by the "subtraction" (edit a full recipe) or "addition" (start from scratch)
methodology the paper describes.
"""

from __future__ import annotations

import copy

from repro.core.errors import RegistryError
from repro.core.registry import unknown_name_message

# ----------------------------------------------------------------------
# Reusable process fragments
# ----------------------------------------------------------------------
_COMMON_CLEANING: list = [
    {"fix_unicode_mapper": {}},
    {"whitespace_normalization_mapper": {}},
    {"punctuation_normalization_mapper": {}},
    {"remove_non_printable_mapper": {}},
]

_WEB_FILTERING: list = [
    {"clean_html_mapper": {}},
    {"clean_links_mapper": {}},
    {"clean_email_mapper": {}},
    {"clean_ip_mapper": {}},
    {"language_id_score_filter": {"lang": "en", "min_score": 0.2}},
    {"special_characters_filter": {"max_ratio": 0.4}},
    {"character_repetition_filter": {"rep_len": 10, "max_ratio": 0.5}},
    {"word_repetition_filter": {"rep_len": 5, "max_ratio": 0.4}},
    {"flagged_words_filter": {"max_ratio": 0.01}},
    {"stopwords_filter": {"min_ratio": 0.2}},
    {"words_num_filter": {"min_num": 20}},
    {"text_length_filter": {"min_len": 100}},
]

_DEDUP: list = [
    {"document_deduplicator": {"lowercase": True}},
    {"document_minhash_deduplicator": {"jaccard_threshold": 0.8}},
]


def _recipe(name: str, process: list, **overrides) -> dict:
    payload = {
        "project_name": name,
        "process": copy.deepcopy(process),
        "op_fusion": True,
    }
    payload.update(overrides)
    return payload


# ----------------------------------------------------------------------
# The built-in recipe catalogue
# ----------------------------------------------------------------------
BUILT_IN_RECIPES: dict[str, dict] = {
    # --- pre-training refinement recipes (one per major component) ---
    "pretrain-common-crawl-refine-en": _recipe(
        "pretrain-common-crawl-refine-en", _COMMON_CLEANING + _WEB_FILTERING + _DEDUP
    ),
    "pretrain-c4-refine-en": _recipe(
        "pretrain-c4-refine-en",
        _COMMON_CLEANING
        + [
            {"clean_links_mapper": {}},
            {"special_characters_filter": {"max_ratio": 0.3}},
            {"word_repetition_filter": {"rep_len": 10, "max_ratio": 0.3}},
            {"words_num_filter": {"min_num": 30}},
        ]
        + _DEDUP,
    ),
    "pretrain-wikipedia-refine-en": _recipe(
        "pretrain-wikipedia-refine-en",
        _COMMON_CLEANING
        + [
            {"text_length_filter": {"min_len": 200}},
            {"sentence_num_filter": {"min_num": 3}},
            {"document_deduplicator": {}},
        ],
    ),
    "pretrain-books-refine-en": _recipe(
        "pretrain-books-refine-en",
        _COMMON_CLEANING
        + [
            {"words_num_filter": {"min_num": 100}},
            {"average_line_length_filter": {"min_len": 20}},
            {"document_simhash_deduplicator": {}},
        ],
    ),
    "pretrain-arxiv-refine-en": _recipe(
        "pretrain-arxiv-refine-en",
        [
            {"remove_header_mapper": {}},
            {"remove_comments_mapper": {}},
            {"expand_macro_mapper": {}},
            {"remove_bibliography_mapper": {}},
        ]
        + _COMMON_CLEANING
        + [
            {"text_length_filter": {"min_len": 200}},
            {"document_deduplicator": {}},
        ],
    ),
    "pretrain-code-refine": _recipe(
        "pretrain-code-refine",
        [
            {"clean_copyright_mapper": {}},
            {"remove_non_printable_mapper": {}},
            {"maximum_line_length_filter": {"max_len": 400}},
            {"average_line_length_filter": {"min_len": 5, "max_len": 200}},
            {"alphanumeric_filter": {"min_ratio": 0.3}},
            {"specified_numeric_field_filter": {"field_key": "meta.stars", "min_value": 10}},
            {"document_deduplicator": {}},
        ],
    ),
    "pretrain-stackexchange-refine-en": _recipe(
        "pretrain-stackexchange-refine-en",
        _COMMON_CLEANING
        + [
            {"clean_links_mapper": {}},
            {"words_num_filter": {"min_num": 15}},
            {"document_deduplicator": {"lowercase": True}},
        ],
    ),
    "pretrain-chinese-web-refine-zh": _recipe(
        "pretrain-chinese-web-refine-zh",
        [
            {"nfkc_normalization_mapper": {}},
            {"whitespace_normalization_mapper": {}},
            {"clean_links_mapper": {}},
            {"clean_email_mapper": {}},
            {"language_id_score_filter": {"lang": "zh", "min_score": 0.2}},
            {"text_length_filter": {"min_len": 20}},
            {"document_deduplicator": {}},
        ],
    ),
    # --- the merged RedPajama + Pile refinement used by Figure 7 / Table 2 ---
    "pretrain-redpajama-pile-refine": _recipe(
        "pretrain-redpajama-pile-refine", _COMMON_CLEANING + _WEB_FILTERING + _DEDUP
    ),
    # --- fine-tuning recipes ---
    "finetune-ift-en-refine": _recipe(
        "finetune-ift-en-refine",
        _COMMON_CLEANING
        + [
            {"words_num_filter": {"min_num": 5}},
            {"text_action_filter": {"min_action_num": 1}},
            {"word_repetition_filter": {"rep_len": 5, "max_ratio": 0.5}},
            {"flagged_words_filter": {"max_ratio": 0.0}},
            {"document_deduplicator": {"lowercase": True}},
        ],
    ),
    "finetune-cft-en-refine": _recipe(
        "finetune-cft-en-refine",
        _COMMON_CLEANING
        + [
            {"clean_links_mapper": {}},
            {"specified_field_filter": {"field_key": "meta.language", "target_values": ["EN"]}},
            {"words_num_filter": {"min_num": 8}},
            {"text_action_filter": {"min_action_num": 1}},
            {"word_repetition_filter": {"rep_len": 3, "max_ratio": 0.4}},
            {"flagged_words_filter": {"max_ratio": 0.0}},
            {"document_deduplicator": {"lowercase": True}},
        ],
    ),
    "finetune-cft-zh-refine": _recipe(
        "finetune-cft-zh-refine",
        [
            {"nfkc_normalization_mapper": {}},
            {"whitespace_normalization_mapper": {}},
            {"clean_links_mapper": {}},
            {"specified_field_filter": {"field_key": "meta.language", "target_values": ["ZH"]}},
            {"text_length_filter": {"min_len": 10}},
            {"character_repetition_filter": {"rep_len": 5, "max_ratio": 0.6}},
            {"flagged_words_filter": {"lang": "all", "max_ratio": 0.0}},
            {"document_deduplicator": {}},
        ],
    ),
    "finetune-preference-en-refine": _recipe(
        "finetune-preference-en-refine",
        _COMMON_CLEANING
        + [
            {"specified_field_filter": {"field_key": "meta.usage", "target_values": ["CFT"]}},
            {"words_num_filter": {"min_num": 10}},
            {"document_deduplicator": {"lowercase": True}},
        ],
    ),
    # --- domain recipes mirroring the real-world deployments of Sec. 7.3 ---
    "domain-financial-refine": _recipe(
        "domain-financial-refine",
        _COMMON_CLEANING
        + [
            {"digit_ratio_filter": {"max_ratio": 0.6}},
            {"words_num_filter": {"min_num": 30}},
            {"document_deduplicator": {}},
        ],
    ),
    "domain-reading-assistant-refine": _recipe(
        "domain-reading-assistant-refine",
        _COMMON_CLEANING
        + [
            {"text_length_filter": {"min_len": 500}},
            {"sentence_num_filter": {"min_num": 5}},
            {"word_repetition_filter": {"rep_len": 10, "max_ratio": 0.3}},
            {"document_simhash_deduplicator": {}},
        ],
    ),
    "domain-character-dialog-refine": _recipe(
        "domain-character-dialog-refine",
        _COMMON_CLEANING
        + [
            {"sentence_num_filter": {"min_num": 2}},
            {"text_action_filter": {"min_action_num": 1}},
            {"document_deduplicator": {"lowercase": True}},
        ],
    ),
    # --- analysis-only and utility recipes ---
    "analysis-default": _recipe(
        "analysis-default",
        [
            {"alphanumeric_filter": {"min_ratio": 0.0}},
            {"special_characters_filter": {"max_ratio": 1.0}},
            {"text_length_filter": {"min_len": 0}},
            {"words_num_filter": {"min_num": 0}},
        ],
        op_fusion=False,
    ),
    "dedup-only-exact": _recipe("dedup-only-exact", [{"document_deduplicator": {}}], op_fusion=False),
    "dedup-only-fuzzy": _recipe(
        "dedup-only-fuzzy", [{"document_minhash_deduplicator": {}}], op_fusion=False
    ),
    "anonymize-only": _recipe(
        "anonymize-only",
        [{"clean_email_mapper": {}}, {"clean_ip_mapper": {}}, {"clean_links_mapper": {}}],
        op_fusion=False,
    ),
    "latex-clean-only": _recipe(
        "latex-clean-only",
        [
            {"remove_header_mapper": {}},
            {"remove_comments_mapper": {}},
            {"expand_macro_mapper": {}},
            {"remove_bibliography_mapper": {}},
        ],
        op_fusion=False,
    ),
    "code-clean-only": _recipe(
        "code-clean-only",
        [{"clean_copyright_mapper": {}}, {"remove_non_printable_mapper": {}}],
        op_fusion=False,
    ),
    # --- out-of-core variant: the Common-Crawl refinement in streaming mode,
    # sized so one shard stays a few MB of text regardless of corpus scale ---
    "pretrain-common-crawl-stream-en": _recipe(
        "pretrain-common-crawl-stream-en",
        _COMMON_CLEANING + _WEB_FILTERING + _DEDUP,
        stream=True,
        max_shard_rows=4096,
        max_shard_chars=4_000_000,
    ),
}


def list_recipes() -> list[str]:
    """Names of all built-in recipes."""
    return sorted(BUILT_IN_RECIPES)


def get_recipe(name: str) -> dict:
    """Return a deep copy of a built-in recipe (safe to modify).

    Unknown names raise :class:`RegistryError` with "did you mean"
    close-match suggestions, like every other registry lookup.
    """
    if name not in BUILT_IN_RECIPES:
        raise RegistryError(unknown_name_message("recipe name", name, BUILT_IN_RECIPES))
    return copy.deepcopy(BUILT_IN_RECIPES[name])
