"""Distributed processing substrate: partitioning, Ray-like and Beam-like runners."""

from repro.distributed.cluster import ClusterSpec, ScalabilitySweep, SweepPoint
from repro.distributed.partition import merge_partitions, partition_rows, split_dataset
from repro.distributed.runners import BeamLikeRunner, RayLikeRunner, RunResult

__all__ = [
    "BeamLikeRunner",
    "ClusterSpec",
    "RayLikeRunner",
    "RunResult",
    "ScalabilitySweep",
    "SweepPoint",
    "merge_partitions",
    "partition_rows",
    "split_dataset",
]
