"""Simulated multi-node cluster and the scalability sweep used for Figure 10."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.dataset import NestedDataset
from repro.distributed.runners import BeamLikeRunner, RayLikeRunner, RunResult


@dataclass
class ClusterSpec:
    """Description of the simulated cluster (mirrors the paper's test platform)."""

    num_nodes: int = 1
    cores_per_node: int = 1
    network_bandwidth_gbps: float = 20.0

    @property
    def total_workers(self) -> int:
        """Number of worker processes the runners may use."""
        return max(1, self.num_nodes * self.cores_per_node)


@dataclass
class SweepPoint:
    """One point of the scalability sweep."""

    backend: str
    num_nodes: int
    #: measured host wall-clock of the run
    wall_time_s: float
    load_time_s: float
    num_output_samples: int
    #: simulated-cluster projection (see :class:`~repro.distributed.runners.RunResult`)
    simulated_time_s: float = 0.0
    #: pool workers that served the point (empty for inline execution)
    worker_pids: list[int] = field(default_factory=list)


@dataclass
class ScalabilitySweep:
    """Run the same recipe across several node counts and back-ends.

    All points share the process-wide worker pools of :mod:`repro.parallel`
    (one persistent pool per distinct worker count): the sweep pays worker
    start-up and operator instantiation once per pool, not once per point,
    and the Ray-like and Beam-like back-ends reuse each other's pools.
    """

    process_list: list
    node_counts: list[int] = field(default_factory=lambda: [1, 2, 4])
    cores_per_node: int = 1
    start_method: str | None = None

    def run(self, dataset: NestedDataset, backends: tuple[str, ...] = ("ray", "beam")) -> list[SweepPoint]:
        """Execute the sweep and return one :class:`SweepPoint` per (backend, nodes)."""
        points: list[SweepPoint] = []
        for backend in backends:
            for num_nodes in self.node_counts:
                spec = ClusterSpec(num_nodes=num_nodes, cores_per_node=self.cores_per_node)
                runner: RayLikeRunner
                if backend == "ray":
                    runner = RayLikeRunner(num_nodes=spec.total_workers, start_method=self.start_method)
                elif backend == "beam":
                    runner = BeamLikeRunner(num_nodes=spec.total_workers, start_method=self.start_method)
                else:
                    raise ValueError(f"unknown backend {backend!r}")
                result: RunResult = runner.run(dataset, self.process_list)
                points.append(
                    SweepPoint(
                        backend=backend,
                        num_nodes=num_nodes,
                        wall_time_s=result.wall_time_s,
                        load_time_s=result.load_time_s,
                        num_output_samples=len(result.dataset),
                        simulated_time_s=result.simulated_time_s,
                        worker_pids=list(result.worker_pids),
                    )
                )
        return points
