"""Dataset partitioning for distributed processing."""

from __future__ import annotations

from repro.core.dataset import NestedDataset


def split_dataset(dataset: NestedDataset, num_partitions: int) -> list[NestedDataset]:
    """Split a dataset into ``num_partitions`` contiguous, near-equal partitions.

    Empty partitions are avoided when the dataset is smaller than the number
    of partitions.
    """
    if num_partitions <= 0:
        raise ValueError("num_partitions must be positive")
    length = len(dataset)
    num_partitions = min(num_partitions, max(1, length))
    base = length // num_partitions
    remainder = length % num_partitions
    partitions = []
    start = 0
    for index in range(num_partitions):
        size = base + (1 if index < remainder else 0)
        partitions.append(dataset.select(range(start, start + size)))
        start += size
    return partitions


def merge_partitions(partitions: list[NestedDataset]) -> NestedDataset:
    """Concatenate processed partitions back into one dataset."""
    return NestedDataset.concatenate(partitions)


def partition_rows(rows: list[dict], num_partitions: int) -> list[list[dict]]:
    """Partition raw row lists (used by the worker-process entry points)."""
    if num_partitions <= 0:
        raise ValueError("num_partitions must be positive")
    num_partitions = min(num_partitions, max(1, len(rows)))
    base = len(rows) // num_partitions
    remainder = len(rows) % num_partitions
    result = []
    start = 0
    for index in range(num_partitions):
        size = base + (1 if index < remainder else 0)
        result.append(rows[start:start + size])
        start += size
    return result
