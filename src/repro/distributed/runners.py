"""Distributed processing runners: Ray-like and Beam-like back-ends (simulated).

The original system runs its single-machine pipelines unchanged on Ray (by
swapping HuggingFace-datasets for Ray-datasets) or on Apache Beam with the
Flink runner.  Here, a *node* of the simulated cluster is a worker process of
the shared :mod:`repro.parallel` engine:

* :class:`RayLikeRunner` partitions the dataset across all nodes, runs the
  sample-level operators (Mappers / Filters) on a persistent
  :class:`~repro.parallel.WorkerPool`, merges the results and applies
  dataset-level operators (Deduplicators / Selectors) globally — the same
  split the Ray adaptation uses.  Pools are obtained from
  :func:`repro.parallel.get_shared_pool`, so repeated runs (e.g. a
  scalability sweep) reuse the same initialized workers instead of forking a
  fresh pool and re-running ``load_ops`` per run.
* :class:`BeamLikeRunner` adds the behaviour the paper observed to limit Beam
  scalability: the data loading / translation component runs on a single
  worker regardless of cluster size (a full serialise + deserialise pass over
  the dataset), so total time stays nearly flat as nodes are added.

Timing model
------------
``RunResult.wall_time_s`` is the *simulated cluster* wall-clock: the serial
coordinator segments (partitioning, merging, dataset-level ops, Beam's
loading stage) measured directly, plus the **longest per-node CPU time** of
the partition-parallel stage.  Per-node cost is measured inside the workers
with ``time.process_time``, so the simulation reports what a real cluster —
where every node owns its core, as on the paper's test platform — would
measure, even when the host CI machine multiplexes all worker processes onto
fewer physical cores.  ``RunResult.host_time_s`` keeps the raw host
wall-clock for transparency.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass

from repro.core.base_op import Deduplicator, Selector
from repro.core.dataset import NestedDataset
from repro.core.registry import OPERATORS
from repro.distributed.partition import partition_rows
from repro.ops import load_ops, split_process_entry
from repro.parallel import apply_sample_ops, get_shared_pool


@dataclass
class RunResult:
    """Output of one distributed run."""

    dataset: NestedDataset
    wall_time_s: float
    num_nodes: int
    load_time_s: float = 0.0
    process_time_s: float = 0.0
    #: raw wall-clock on the host machine (>= ``wall_time_s`` whenever the
    #: host has fewer free cores than simulated nodes)
    host_time_s: float = 0.0


class RayLikeRunner:
    """Partition-parallel runner standing in for the Ray executor."""

    def __init__(
        self,
        num_nodes: int = 1,
        use_processes: bool = True,
        start_method: str | None = None,
        chunk_size: int | None = None,
    ):
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        self.num_nodes = num_nodes
        self.use_processes = use_processes
        self.start_method = start_method
        self.chunk_size = chunk_size

    def _split_process_list(self, process_list: list) -> tuple[list, list]:
        """Split the recipe into sample-level entries and dataset-level entries.

        Classification goes through the ``OPERATORS`` registry *classes* —
        no operator is instantiated here, so timed runs are not skewed by a
        useless extra ``load_ops`` pass.
        """
        sample_level, dataset_level = [], []
        for entry in process_list:
            op_cls = OPERATORS.get(split_process_entry(entry)[0])
            if issubclass(op_cls, (Deduplicator, Selector)):
                dataset_level.append(entry)
            else:
                sample_level.append(entry)
        return sample_level, dataset_level

    def run(self, dataset: NestedDataset, process_list: list) -> RunResult:
        """Run the recipe over the dataset using ``num_nodes`` simulated nodes."""
        start = time.perf_counter()
        sample_level, dataset_level = self._split_process_list(process_list)
        rows = dataset.to_list()
        partitions = partition_rows(rows, self.num_nodes)

        dispatch_start = time.perf_counter()
        if self.use_processes and self.num_nodes > 1 and len(partitions) > 1 and sample_level:
            pool = get_shared_pool(
                len(partitions), sample_level, start_method=self.start_method
            )
            node_rows, node_cpu = pool.run_sample_pipeline(partitions, chunk_size=self.chunk_size)
        else:
            ops = load_ops(sample_level)
            node_rows, node_cpu = [], []
            for partition in partitions:
                cpu_start = time.process_time()
                node_rows.append(apply_sample_ops(ops, partition))
                node_cpu.append(time.process_time() - cpu_start)
        dispatch_end = time.perf_counter()

        merged = NestedDataset.from_list([row for part in node_rows for row in part])
        for op in load_ops(dataset_level):
            merged = op.run(merged)
        end = time.perf_counter()

        # simulated cluster wall-clock: serial coordinator segments + the
        # slowest node's CPU time (nodes run concurrently on a real cluster)
        parallel_span = max(node_cpu, default=0.0)
        serial_span = (dispatch_start - start) + (end - dispatch_end)
        return RunResult(
            dataset=merged,
            wall_time_s=serial_span + parallel_span,
            num_nodes=self.num_nodes,
            process_time_s=parallel_span + (end - dispatch_end),
            host_time_s=end - start,
        )


class BeamLikeRunner(RayLikeRunner):
    """Runner reproducing the Beam/Flink behaviour: single-node data loading.

    Before any distributed work happens, the whole dataset goes through a
    serialise/deserialise "translation" pass on one worker (Beam's source
    reading + PCollection construction), which the paper identified as the
    scalability bottleneck of its Beam adaptation.
    """

    #: how many serialise/deserialise passes the loading stage performs; Beam's
    #: source reading, PCollection construction and pre-translation of the
    #: pipeline all touch the full dataset on one worker before any fan-out,
    #: which the paper identified as the dominant cost of its Beam adaptation
    LOAD_PASSES = 20

    def run(self, dataset: NestedDataset, process_list: list) -> RunResult:
        load_start = time.perf_counter()
        rows = dataset.to_list()
        for _ in range(self.LOAD_PASSES):
            rows = json.loads(json.dumps(rows, ensure_ascii=False, default=repr))
        loaded = NestedDataset.from_list(rows)
        load_time = time.perf_counter() - load_start

        result = super().run(loaded, process_list)
        return RunResult(
            dataset=result.dataset,
            wall_time_s=load_time + result.wall_time_s,
            num_nodes=self.num_nodes,
            load_time_s=load_time,
            process_time_s=result.process_time_s,
            host_time_s=load_time + result.host_time_s,
        )
