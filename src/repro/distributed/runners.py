"""Distributed processing runners: Ray-like and Beam-like back-ends (simulated).

The original system runs its single-machine pipelines unchanged on Ray (by
swapping HuggingFace-datasets for Ray-datasets) or on Apache Beam with the
Flink runner.  Here, a *node* of the simulated cluster is a worker process of
the shared :mod:`repro.parallel` engine:

* :class:`RayLikeRunner` partitions the dataset across all nodes, runs the
  sample-level operators (Mappers / Filters) on a persistent
  :class:`~repro.parallel.WorkerPool`, merges the results and applies
  dataset-level operators (Deduplicators / Selectors) globally — the same
  split the Ray adaptation uses.  Pools are obtained from
  :func:`repro.parallel.get_shared_pool`, so repeated runs (e.g. a
  scalability sweep) reuse the same initialized workers instead of forking a
  fresh pool and re-running ``load_ops`` per run.
* :class:`BeamLikeRunner` adds the behaviour the paper observed to limit Beam
  scalability: the data loading / translation component runs on a single
  worker regardless of cluster size (a full serialise + deserialise pass over
  the dataset), so total time stays nearly flat as nodes are added.

Timing model
------------
``RunResult.wall_time_s`` is the **measured host wall-clock** of the run —
never a derived or modelled quantity.  ``RunResult.simulated_time_s``
additionally reports the simulated-cluster projection: the serial coordinator
segments (partitioning, merging, dataset-level ops, Beam's loading stage)
measured directly, plus the **longest per-node CPU time** of the
partition-parallel stage, measured inside the workers with
``time.process_time``.  The projection estimates what a real cluster — where
every node owns its core, as on the paper's test platform — would measure
when the host has fewer physical cores than simulated nodes; consumers that
assert on it must independently verify that the parallel engine really ran
(see ``RunResult.worker_pids``), because the projection alone shrinks with
the node count by construction.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field

from repro.core.base_op import Deduplicator, Selector
from repro.core.dataset import NestedDataset
from repro.core.registry import OPERATORS
from repro.distributed.partition import partition_rows
from repro.ops import load_ops, split_process_entry
from repro.ops.common import preload_assets
from repro.parallel import apply_sample_ops, get_shared_pool


@dataclass
class RunResult:
    """Output of one distributed run."""

    dataset: NestedDataset
    #: measured wall-clock of the run on the host machine
    wall_time_s: float
    num_nodes: int
    load_time_s: float = 0.0
    #: projection of the processing stage: slowest node's worker-measured CPU
    #: plus the measured merge / dataset-level-op wall segment — a modelled
    #: quantity like ``simulated_time_s``, not a pure wall measurement
    process_time_s: float = 0.0
    #: simulated-cluster projection: serial coordinator segments + slowest
    #: node's worker-measured CPU time.  Typically well below ``wall_time_s``
    #: on an oversubscribed host, but not a guaranteed bound: a node's chunks
    #: may be served by several workers concurrently, so max-per-node CPU can
    #: exceed the dispatch wall window
    simulated_time_s: float = 0.0
    #: process ids of the pool workers that served the partition-parallel
    #: stage (empty when it ran inline in the coordinator process)
    worker_pids: list[int] = field(default_factory=list)


class RayLikeRunner:
    """Partition-parallel runner standing in for the Ray executor."""

    def __init__(
        self,
        num_nodes: int = 1,
        use_processes: bool = True,
        start_method: str | None = None,
        chunk_size: int | None = None,
    ):
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        self.num_nodes = num_nodes
        self.use_processes = use_processes
        self.start_method = start_method
        self.chunk_size = chunk_size

    def _split_process_list(self, process_list: list) -> tuple[list, list]:
        """Split the recipe into sample-level entries and dataset-level entries.

        Classification goes through the ``OPERATORS`` registry *classes* —
        no operator is instantiated here, so timed runs are not skewed by a
        useless extra ``load_ops`` pass.
        """
        sample_level, dataset_level = [], []
        for entry in process_list:
            op_cls = OPERATORS.get(split_process_entry(entry)[0])
            if issubclass(op_cls, (Deduplicator, Selector)):
                dataset_level.append(entry)
            else:
                sample_level.append(entry)
        return sample_level, dataset_level

    def run(self, dataset: NestedDataset, process_list: list) -> RunResult:
        """Run the recipe over the dataset using ``num_nodes`` simulated nodes."""
        sample_level, dataset_level = self._split_process_list(process_list)
        # provisioning happens before the timed region for BOTH execution
        # paths: the paper's Figure-10 cluster is already up when a job
        # starts, and timing it would bias the comparison — the multi-node
        # points would amortise a one-off cost the single-node baseline pays
        # on every measurement (or vice versa)
        pool = None
        if self.use_processes and self.num_nodes > 1 and sample_level:
            pool = get_shared_pool(
                self.num_nodes, sample_level, start_method=self.start_method
            )
        # inline ops are provisioned unconditionally: they also serve the
        # fallback taken when a provisioned pool goes unused because the
        # dataset is too small to partition (0/1 rows), which would otherwise
        # sneak load_ops + asset loading back into the timed region
        inline_ops = load_ops(sample_level)
        preload_assets()

        start = time.perf_counter()
        rows = dataset.to_list()
        partitions = partition_rows(rows, self.num_nodes)

        dispatch_start = time.perf_counter()
        worker_pids: list[int] = []
        if pool is not None and len(partitions) > 1:
            node_rows, node_cpu = pool.run_sample_pipeline(partitions, chunk_size=self.chunk_size)
            # pids that actually executed tasks — evidence of out-of-process
            # parallel execution, not just of a live pool object
            worker_pids = list(pool.last_served_pids)
        else:
            node_rows, node_cpu = [], []
            for partition in partitions:
                cpu_start = time.process_time()
                node_rows.append(apply_sample_ops(inline_ops, partition))
                node_cpu.append(time.process_time() - cpu_start)
        dispatch_end = time.perf_counter()

        merged = NestedDataset.from_list([row for part in node_rows for row in part])
        for op in load_ops(dataset_level):
            merged = op.run(merged)
        end = time.perf_counter()

        # simulated cluster projection: serial coordinator segments + the
        # slowest node's CPU time (nodes run concurrently on a real cluster)
        parallel_span = max(node_cpu, default=0.0)
        serial_span = (dispatch_start - start) + (end - dispatch_end)
        return RunResult(
            dataset=merged,
            wall_time_s=end - start,
            num_nodes=self.num_nodes,
            process_time_s=parallel_span + (end - dispatch_end),
            simulated_time_s=serial_span + parallel_span,
            worker_pids=worker_pids,
        )


class BeamLikeRunner(RayLikeRunner):
    """Runner reproducing the Beam/Flink behaviour: single-node data loading.

    Before any distributed work happens, the whole dataset goes through a
    serialise/deserialise "translation" pass on one worker (Beam's source
    reading + PCollection construction), which the paper identified as the
    scalability bottleneck of its Beam adaptation.
    """

    #: how many serialise/deserialise passes the loading stage performs; Beam's
    #: source reading, PCollection construction and pre-translation of the
    #: pipeline all touch the full dataset on one worker before any fan-out,
    #: which the paper identified as the dominant cost of its Beam adaptation
    LOAD_PASSES = 20

    def run(self, dataset: NestedDataset, process_list: list) -> RunResult:
        load_start = time.perf_counter()
        rows = dataset.to_list()
        for _ in range(self.LOAD_PASSES):
            rows = json.loads(json.dumps(rows, ensure_ascii=False, default=repr))
        loaded = NestedDataset.from_list(rows)
        load_time = time.perf_counter() - load_start

        result = super().run(loaded, process_list)
        return RunResult(
            dataset=result.dataset,
            wall_time_s=load_time + result.wall_time_s,
            num_nodes=self.num_nodes,
            load_time_s=load_time,
            process_time_s=result.process_time_s,
            simulated_time_s=load_time + result.simulated_time_s,
            worker_pids=result.worker_pids,
        )
