"""Distributed processing runners: Ray-like and Beam-like back-ends (simulated).

The original system runs its single-machine pipelines unchanged on Ray (by
swapping HuggingFace-datasets for Ray-datasets) or on Apache Beam with the
Flink runner.  Here, a *node* of the simulated cluster is a worker process:

* :class:`RayLikeRunner` partitions the dataset across all workers, runs the
  sample-level operators (Mappers / Filters) in parallel, merges the results
  and applies dataset-level operators (Deduplicators / Selectors) globally —
  the same split the Ray adaptation uses.  Wall-clock time therefore shrinks
  roughly linearly with the number of nodes (Figure 10).
* :class:`BeamLikeRunner` adds the behaviour the paper observed to limit Beam
  scalability: the data loading / translation component runs on a single
  worker regardless of cluster size (a full serialise + deserialise pass over
  the dataset), so total time stays nearly flat as nodes are added.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from multiprocessing import get_context

from repro.core.base_op import Deduplicator, Filter, Mapper, Selector
from repro.core.dataset import NestedDataset
from repro.distributed.partition import partition_rows
from repro.ops import load_ops


def _process_rows(payload: tuple[list[dict], list]) -> list[dict]:
    """Worker entry point: run sample-level ops over a partition of rows.

    Operators are re-instantiated inside the worker from their recipe entries
    so nothing non-picklable crosses the process boundary.
    """
    rows, process_list = payload
    ops = load_ops(process_list)
    dataset = NestedDataset.from_list(rows)
    for op in ops:
        if isinstance(op, (Mapper, Filter)):
            dataset = op.run(dataset)
    return dataset.to_list()


@dataclass
class RunResult:
    """Output of one distributed run."""

    dataset: NestedDataset
    wall_time_s: float
    num_nodes: int
    load_time_s: float = 0.0
    process_time_s: float = 0.0


class RayLikeRunner:
    """Partition-parallel runner standing in for the Ray executor."""

    def __init__(self, num_nodes: int = 1, use_processes: bool = True):
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        self.num_nodes = num_nodes
        self.use_processes = use_processes

    def _split_process_list(self, process_list: list) -> tuple[list, list]:
        """Split the recipe into sample-level entries and dataset-level entries."""
        ops = load_ops(process_list)
        sample_level, dataset_level = [], []
        for entry, op in zip(process_list, ops):
            if isinstance(op, (Deduplicator, Selector)):
                dataset_level.append(entry)
            else:
                sample_level.append(entry)
        return sample_level, dataset_level

    def run(self, dataset: NestedDataset, process_list: list) -> RunResult:
        """Run the recipe over the dataset using ``num_nodes`` workers."""
        start = time.perf_counter()
        sample_level, dataset_level = self._split_process_list(process_list)
        rows = dataset.to_list()
        partitions = partition_rows(rows, self.num_nodes)
        payloads = [(partition, sample_level) for partition in partitions]

        process_start = time.perf_counter()
        if self.use_processes and self.num_nodes > 1 and len(partitions) > 1:
            context = get_context("fork")
            with context.Pool(processes=len(partitions)) as pool:
                results = pool.map(_process_rows, payloads)
        else:
            results = [_process_rows(payload) for payload in payloads]
        merged_rows = [row for partition in results for row in partition]
        merged = NestedDataset.from_list(merged_rows)

        for op in load_ops(dataset_level):
            merged = op.run(merged)
        end = time.perf_counter()
        return RunResult(
            dataset=merged,
            wall_time_s=end - start,
            num_nodes=self.num_nodes,
            process_time_s=end - process_start,
        )


class BeamLikeRunner(RayLikeRunner):
    """Runner reproducing the Beam/Flink behaviour: single-node data loading.

    Before any distributed work happens, the whole dataset goes through a
    serialise/deserialise "translation" pass on one worker (Beam's source
    reading + PCollection construction), which the paper identified as the
    scalability bottleneck of its Beam adaptation.
    """

    #: how many serialise/deserialise passes the loading stage performs; Beam's
    #: source reading, PCollection construction and pre-translation of the
    #: pipeline all touch the full dataset on one worker before any fan-out,
    #: which the paper identified as the dominant cost of its Beam adaptation
    LOAD_PASSES = 20

    def run(self, dataset: NestedDataset, process_list: list) -> RunResult:
        load_start = time.perf_counter()
        rows = dataset.to_list()
        for _ in range(self.LOAD_PASSES):
            rows = json.loads(json.dumps(rows, ensure_ascii=False, default=repr))
        loaded = NestedDataset.from_list(rows)
        load_time = time.perf_counter() - load_start

        result = super().run(loaded, process_list)
        return RunResult(
            dataset=result.dataset,
            wall_time_s=load_time + result.wall_time_s,
            num_nodes=self.num_nodes,
            load_time_s=load_time,
            process_time_s=result.process_time_s,
        )
