"""The fluent, lazy, mode-agnostic pipeline builder — the package's front door.

A :class:`Pipeline` is a *logical* plan: an input source, an ordered chain of
operator steps, and run options.  Building one executes nothing — every
builder method validates eagerly (operator names against the registry with
"did you mean" suggestions, parameters against the typed op schemas, step
categories against the operator's actual category) and returns a **new**
pipeline, so intermediate pipelines can be shared and extended freely::

    from repro.api import Pipeline

    report = (
        Pipeline.read("data/*.jsonl.gz")
        .apply("clean_html_mapper")
        .filter("text_length_filter", min_len=50)
        .dedup("document_minhash_deduplicator", jaccard_threshold=0.8)
        .export("out.jsonl", mode="auto")
    )

Execution is deferred to the terminal methods (:meth:`Pipeline.run`,
:meth:`Pipeline.export`, :meth:`Pipeline.collect`), which compile the
pipeline into a :class:`~repro.core.config.RecipeConfig`, let the
:mod:`repro.core.planner` pick the physical mode (in-memory batched/pooled vs
out-of-core streaming) and hand the plan to a context-managed
:class:`~repro.core.executor.Executor` — the Executor is the backend, never
the front door.

Pipelines and recipes are lossless inverses: :meth:`Pipeline.from_recipe`
accepts any recipe (dict, file, built-in name, ``RecipeConfig``) and
:meth:`Pipeline.to_recipe` emits one back whose operator chain carries the
*identical* incremental fingerprint chain — the tested round-trip contract.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Sequence

from repro.core.base_op import Deduplicator, Filter, Mapper, Selector, op_category
from repro.core.config import KNOWN_RECIPE_KEYS, RecipeConfig, load_config
from repro.core.dataset import NestedDataset, _stable_hash
from repro.core.errors import ConfigError, SchemaError
from repro.core.executor import Executor
from repro.core.planner import ExecutionPlan, ResourceBudget, plan_execution
from repro.core.registry import OPERATORS, unknown_keys_message
from repro.core.report import RunReport
from repro.core.schema import schema_for

#: categories a step may declare; ``None`` (via ``apply``) accepts any op
_CATEGORY_BASES = {
    "mapper": Mapper,
    "filter": Filter,
    "deduplicator": Deduplicator,
    "selector": Selector,
}


class Pipeline:
    """A lazy, immutable chain of operator steps over one input source.

    Do not call the constructor directly — start from :meth:`read` (a path
    input), :meth:`from_recipe` (any existing recipe) or :meth:`new` (no
    source yet, e.g. for in-memory datasets passed at run time).
    """

    __slots__ = ("_settings", "_steps")

    def __init__(
        self,
        settings: dict[str, Any] | None = None,
        steps: Sequence[tuple[str, dict]] = (),
    ):
        self._settings: dict[str, Any] = dict(settings or {})
        self._steps: tuple[tuple[str, dict], ...] = tuple(
            (name, dict(params)) for name, params in steps
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def new(cls, **options: Any) -> "Pipeline":
        """An empty pipeline with no input source (supply one at run time)."""
        return cls().options(**options)

    @classmethod
    def read(cls, dataset_path: str | Path, **options: Any) -> "Pipeline":
        """A pipeline reading from a file, directory or glob pattern.

        Every input the formatter layer understands works: single files
        (``data.jsonl``, ``data.csv``, …), directories of shards, glob
        patterns, and transparently gzip-compressed variants
        (``data/*.jsonl.gz``).
        """
        return cls({"dataset_path": str(dataset_path)}).options(**options)

    @classmethod
    def from_recipe(
        cls, recipe: str | Path | dict | RecipeConfig
    ) -> "Pipeline":
        """Build a pipeline from any recipe form — the lossless inverse of
        :meth:`to_recipe`.

        ``recipe`` may be a built-in recipe name, a YAML/JSON recipe file
        path, a recipe mapping, or a :class:`RecipeConfig`.  The recipe's
        ``process`` list becomes the step chain (validated against the typed
        op schemas) and every other key becomes a pipeline setting.
        """
        if isinstance(recipe, str):
            from repro.recipes import BUILT_IN_RECIPES, get_recipe

            path = Path(recipe)
            if recipe in BUILT_IN_RECIPES:
                recipe = get_recipe(recipe)
            elif not path.exists() and path.suffix not in (".yaml", ".yml", ".json"):
                # not a recipe file: treat as a (misspelled) built-in name so
                # the error carries "did you mean" suggestions
                recipe = get_recipe(recipe)
        if isinstance(recipe, RecipeConfig):
            payload = recipe.as_dict()
        elif isinstance(recipe, dict):
            payload = dict(recipe)
        else:
            payload = load_config(recipe).as_dict()
        process = payload.pop("process", [])
        pipeline = cls().options(**payload)
        from repro.ops import split_process_entry

        for entry in process:
            name, params = split_process_entry(entry)
            pipeline = pipeline.apply(name, **params)
        return pipeline

    # ------------------------------------------------------------------
    # Fluent builders (each returns a NEW pipeline)
    # ------------------------------------------------------------------
    def _with_step(self, category: str | None, name: str, params: dict) -> "Pipeline":
        """Append one validated step; the category gate and schema run here."""
        op_cls = OPERATORS.get(name)  # unknown names raise with suggestions
        actual = op_category(op_cls)
        if category is not None and actual != category:
            raise ConfigError(
                f"{name!r} is a {actual}, not a {category}; use "
                f".{_BUILDER_FOR_CATEGORY.get(actual, 'apply')}(...) "
                "(or the category-agnostic .apply(...))"
            )
        issues = schema_for(op_cls, name=name).validate(params)
        if issues:
            raise SchemaError(
                f"invalid parameters for operator {name!r}:\n  "
                + "\n  ".join(str(issue) for issue in issues),
                issues=issues,
            )
        return Pipeline(self._settings, self._steps + ((name, dict(params)),))

    def apply(self, name: str, **params: Any) -> "Pipeline":
        """Append any operator by registered name (category-agnostic)."""
        return self._with_step(None, name, params)

    def map(self, name: str, **params: Any) -> "Pipeline":
        """Append a Mapper step (raises when ``name`` is not a mapper)."""
        return self._with_step("mapper", name, params)

    def filter(self, name: str, **params: Any) -> "Pipeline":
        """Append a Filter step (raises when ``name`` is not a filter)."""
        return self._with_step("filter", name, params)

    def dedup(self, name: str, **params: Any) -> "Pipeline":
        """Append a Deduplicator step (raises when ``name`` is not one)."""
        return self._with_step("deduplicator", name, params)

    def select(self, name: str, **params: Any) -> "Pipeline":
        """Append a Selector step (raises when ``name`` is not a selector)."""
        return self._with_step("selector", name, params)

    def options(self, **settings: Any) -> "Pipeline":
        """Set recipe-level run options (``np``, ``batch_size``, ``use_cache``,
        ``op_fusion``, ``work_dir``, ``memory_budget``, …).

        Accepts exactly the keys a recipe mapping accepts; unknown keys raise
        :class:`ConfigError` with close-match suggestions.
        """
        unknown = set(settings) - KNOWN_RECIPE_KEYS
        if unknown:
            raise ConfigError(
                unknown_keys_message("pipeline options", unknown, KNOWN_RECIPE_KEYS)
            )
        if "process" in settings:
            raise ConfigError(
                "the operator chain is built with .apply()/.filter()/... , "
                "not via options(process=...)"
            )
        merged = dict(self._settings)
        merged.update(settings)
        return Pipeline(merged, self._steps)

    def on_error(
        self,
        policy: str,
        *,
        max_retries: int | None = None,
        backoff_s: float | None = None,
        task_timeout_s: float | None = None,
        max_pool_rebuilds: int | None = None,
    ) -> "Pipeline":
        """Set the fault-tolerance policy of the run (see ``docs/robustness.md``).

        ``policy`` is ``"raise"`` (abort on the first persistent failure —
        the default), ``"skip"`` (drop failing rows/shards and continue) or
        ``"quarantine"`` (drop them *and* write each to
        ``<work_dir>/quarantine/quarantine-*.jsonl.gz`` with the op name,
        exception and shard/row location for replay).  The keyword knobs
        mirror the recipe keys of the same names: retries with capped
        exponential backoff per failing unit, the worker-pool dispatch
        timeout that enables dead/hung-worker supervision, and the number of
        pool rebuilds tolerated before degrading to serial execution::

            Pipeline.read("data/*.jsonl").apply("clean_html_mapper") \\
                .on_error("quarantine", max_retries=2, task_timeout_s=60) \\
                .export("out.jsonl")
        """
        settings: dict[str, Any] = {"on_error": policy}
        if max_retries is not None:
            settings["max_retries"] = max_retries
        if backoff_s is not None:
            settings["backoff_s"] = backoff_s
        if task_timeout_s is not None:
            settings["task_timeout_s"] = task_timeout_s
        if max_pool_rebuilds is not None:
            settings["max_pool_rebuilds"] = max_pool_rebuilds
        return self.options(**settings)

    # ------------------------------------------------------------------
    # Introspection / recipe round-tripping
    # ------------------------------------------------------------------
    @property
    def steps(self) -> tuple[tuple[str, dict], ...]:
        """The ``(op_name, params)`` chain, in execution order."""
        return tuple((name, dict(params)) for name, params in self._steps)

    def __len__(self) -> int:
        return len(self._steps)

    def __repr__(self) -> str:
        chain = " -> ".join(name for name, _params in self._steps) or "(empty)"
        return f"Pipeline({len(self._steps)} steps: {chain})"

    def describe(self) -> str:
        """Multi-line rendering of the logical plan (steps + options)."""
        lines = [f"Pipeline ({len(self._steps)} steps)"]
        source = self._settings.get("dataset_path")
        if source:
            lines.append(f"  read {source}")
        for index, (name, params) in enumerate(self._steps, start=1):
            rendered = ", ".join(f"{key}={value!r}" for key, value in params.items())
            lines.append(f"  {index}. {name}({rendered})")
        export = self._settings.get("export_path")
        if export:
            lines.append(f"  export {export}")
        extra = {
            key: value
            for key, value in sorted(self._settings.items())
            if key not in ("dataset_path", "export_path") and value not in (None, False)
        }
        if extra:
            lines.append(
                "  options: " + ", ".join(f"{key}={value!r}" for key, value in extra.items())
            )
        return "\n".join(lines)

    def to_recipe(self) -> dict:
        """The recipe mapping this pipeline compiles to — the lossless inverse
        of :meth:`from_recipe` (identical op fingerprint chains guaranteed)."""
        recipe = dict(self._settings)
        recipe["process"] = [{name: dict(params)} for name, params in self._steps]
        return recipe

    def to_config(self) -> RecipeConfig:
        """The validated :class:`RecipeConfig` this pipeline compiles to."""
        return load_config(self.to_recipe())

    def build_ops(self) -> list:
        """Instantiate the raw (unfused) operator chain of this pipeline."""
        from repro.ops import load_ops

        return load_ops([{name: dict(params)} for name, params in self._steps])

    def op_fingerprint_chain(self, seed: str = "") -> list[str]:
        """Incremental fingerprint of each step, seeded by ``seed``.

        The exact recurrence the execution engines stamp on their outputs —
        ``hash(parent_fp, op.name, op.config())`` (see
        :meth:`repro.core.dataset.NestedDataset.derive_fingerprint`) — so two
        pipelines with equal chains are guaranteed to hit the same caches and
        produce the same rows.  This is the tested identity behind the
        recipe round-trip contract.
        """
        chain: list[str] = []
        fingerprint = seed
        for op in self.build_ops():
            fingerprint = _stable_hash(
                {"parent": fingerprint, "op": op.name, "params": op.config()}
            )
            chain.append(fingerprint)
        return chain

    # ------------------------------------------------------------------
    # Execution (terminal methods)
    # ------------------------------------------------------------------
    def plan(
        self,
        mode: str = "auto",
        dataset: NestedDataset | None = None,
        budget: ResourceBudget | None = None,
    ) -> ExecutionPlan:
        """Preview the mode decision without executing anything.

        The returned plan carries the pre-flight dataflow findings
        (``plan.dataflow``, see :mod:`repro.tools.dataflow`) so a field-broken
        pipeline is visible before :meth:`run` touches any data.
        """
        from repro.tools.dataflow import check_recipe

        cfg = self.to_config()
        plan = plan_execution(cfg, dataset=dataset, mode=mode, budget=budget)
        flow = check_recipe(cfg, stream=plan.mode == "streaming")
        plan.dataflow = [finding.as_dict() for finding in flow.findings]
        return plan

    def run(
        self,
        dataset: NestedDataset | None = None,
        mode: str = "auto",
        shard_output: bool = False,
        budget: ResourceBudget | None = None,
    ) -> RunReport:
        """Execute the pipeline and return the unified :class:`RunReport`.

        The planner picks in-memory vs streaming execution (``mode="auto"``,
        overridable); the backing :class:`Executor` is context-managed, so
        worker pools never outlive the call even when a stage raises.
        """
        with Executor(self.to_config()) as executor:
            return executor.execute(
                dataset=dataset, mode=mode, shard_output=shard_output, budget=budget
            )

    def export(
        self,
        export_path: str | Path,
        dataset: NestedDataset | None = None,
        mode: str = "auto",
        shard_output: bool = False,
        budget: ResourceBudget | None = None,
    ) -> RunReport:
        """Execute and export to ``export_path``; returns the run report.

        Equivalent to ``.options(export_path=...).run(...)`` — the exported
        bytes are identical whichever physical mode the planner picks.
        """
        return self.options(export_path=str(export_path)).run(
            dataset=dataset, mode=mode, shard_output=shard_output, budget=budget
        )

    def collect(self, dataset: NestedDataset | None = None) -> NestedDataset:
        """Execute in-memory and return the processed :class:`NestedDataset`.

        ``collect`` always uses the in-memory engine (a materialised result
        is the point); use :meth:`run` / :meth:`export` for planner-driven
        mode selection over large corpora.
        """
        with Executor(self.to_config()) as executor:
            return executor.run(dataset)


#: builder-method name per category (for the category-mismatch error message)
_BUILDER_FOR_CATEGORY = {
    "mapper": "map",
    "filter": "filter",
    "deduplicator": "dedup",
    "selector": "select",
}


__all__ = ["Pipeline"]
