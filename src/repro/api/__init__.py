"""The public fluent API: lazy, mode-agnostic pipelines over the operator pool.

This package is the power-user half of the paper's "one-stop" promise — the
novice half drives recipes through the CLI, while programmatic users compose
:class:`Pipeline` chains against the same operator registry, typed op schemas
(:mod:`repro.core.schema`) and execution planner (:mod:`repro.core.planner`),
with :class:`repro.core.executor.Executor` as the shared backend::

    from repro.api import Pipeline

    report = (
        Pipeline.read("data/*.jsonl.gz")
        .apply("clean_html_mapper")
        .filter("text_length_filter", min_len=50)
        .dedup("document_minhash_deduplicator")
        .export("out.jsonl", mode="auto")
    )

See ``docs/api.md`` for the full tour.
"""

from repro.api.pipeline import Pipeline
from repro.api.validate import render_issues, validate_recipe
from repro.core.planner import ExecutionPlan, ResourceBudget, plan_execution
from repro.core.schema import OpSchema, ParamSpec, SchemaIssue, schema_for
from repro.tools.dataflow import check_recipe, effect_signature

__all__ = [
    "ExecutionPlan",
    "OpSchema",
    "ParamSpec",
    "Pipeline",
    "ResourceBudget",
    "SchemaIssue",
    "check_recipe",
    "effect_signature",
    "plan_execution",
    "render_issues",
    "schema_for",
    "validate_recipe",
]
