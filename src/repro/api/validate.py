"""Schema-only recipe validation: report every bad parameter, execute nothing.

This is the engine behind ``repro validate-recipe``: it checks a recipe's
``process`` list against the typed operator schemas
(:mod:`repro.core.schema`) and its run options against
:class:`~repro.core.config.RecipeConfig`, collecting *every* violation —
unknown operators (with "did you mean" suggestions), unknown or mistyped
parameters, and out-of-range values with their allowed ranges — instead of
stopping at the first.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.config import (
    KNOWN_RECIPE_KEYS,
    RecipeConfig,
    load_config,
    load_recipe_payload,
)
from repro.core.errors import ConfigError
from repro.core.registry import suggestion_hint
from repro.core.reporting import render_problems
from repro.core.schema import SchemaIssue, validate_process


def validate_recipe(recipe: str | Path | dict | RecipeConfig) -> list[SchemaIssue]:
    """Validate a recipe end to end; return every issue found (empty = valid).

    Four layers are checked without executing anything: unknown top-level
    recipe keys, operator names and parameters against the typed op schemas,
    the structural run-option rules of
    :func:`repro.core.config.validate_config`, and — when the schema layers
    pass for the process list — the static dataflow rules of
    :mod:`repro.tools.dataflow` (undefined reads, order hazards, dead writes,
    fusion- and streaming-unsafety), folded into the same report.
    """
    issues: list[SchemaIssue] = []
    payload = load_recipe_payload(recipe)
    for key in sorted(set(payload) - KNOWN_RECIPE_KEYS):
        hint = suggestion_hint(key, KNOWN_RECIPE_KEYS, known_label="known keys")
        issues.append(SchemaIssue("(recipe)", key, f"unknown recipe key; {hint}"))
    process = payload.get("process", [])
    if isinstance(process, list):
        issues.extend(validate_process(process))
    else:
        issues.append(
            SchemaIssue("(recipe)", "process", "must be a list of operator entries")
        )
    try:
        known = {key: value for key, value in payload.items() if key in KNOWN_RECIPE_KEYS}
        known["process"] = []  # operator errors are already reported per-op above
        load_config(known)
    except ConfigError as error:
        issues.append(SchemaIssue("(recipe)", "(options)", str(error)))
    if not issues:
        # dataflow findings only make sense once the recipe is schema-valid;
        # the checker itself must never crash validation
        try:
            from repro.tools.dataflow import check_recipe

            flow = check_recipe(payload)
            issues.extend(
                SchemaIssue(
                    finding.op,
                    f"step {finding.index}",
                    f"[{finding.rule}] {finding.message}",
                )
                for finding in flow.findings
            )
        except ConfigError:
            pass
    return issues


def render_issues(issues: list[SchemaIssue]) -> str:
    """Human-readable one-line-per-issue rendering (the CLI output).

    Shares the ``found N problem(s)`` shape with ``repro lint`` via
    :func:`repro.core.reporting.render_problems`.
    """
    return render_problems(
        issues, "recipe is valid: every operator and parameter checks out"
    )


__all__ = ["render_issues", "validate_recipe"]
