"""End-to-end serving smoke check: the body of ``repro serve-smoke``.

Exercises the whole serving stack the way ``make check`` can afford to —
over a real socket, unlike the tier-1 tests:

1. synthesize a small corpus and write it to disk;
2. start a ``repro serve`` server on an **ephemeral port** (a daemon
   thread running the stdlib HTTP adapter);
3. submit a fig8 refinement job over HTTP and poll it to completion;
4. submit the *same* job again and require a cache-warm run
   (``cache.shard_hits > 0`` in its report);
5. run the equivalent pipeline through the direct CLI code path and
   require the service export to be **byte-identical** to it.

Returns a process exit code (0 = every gate passed) and prints one line
per gate, so failures localize without a debugger.
"""

from __future__ import annotations

import tempfile
import threading
from pathlib import Path

from repro.core.exporter import Exporter
from repro.recipes import get_recipe
from repro.service.client import HTTPClient
from repro.service.core import create_core
from repro.service.http import make_server
from repro.synth import make_corpus

#: the fig8 workload recipe the smoke run serves (small but full-stack:
#: cleaning mappers, filters and a deduplicator)
SMOKE_RECIPE = "pretrain-books-refine-en"


def _submission(input_path: Path, max_shard_rows: int) -> dict:
    """The job body submitted (twice) to the server."""
    return {
        "recipe_name": SMOKE_RECIPE,
        "mode": "streaming",
        "overrides": {
            "dataset_path": str(input_path),
            "max_shard_rows": max_shard_rows,
        },
    }


def run_smoke(
    root: str | None = None,
    num_samples: int = 120,
    max_shard_rows: int = 17,
    timeout_s: float = 180.0,
) -> int:
    """Run the serving smoke sequence; return the process exit code."""
    root_dir = Path(root) if root else Path(tempfile.mkdtemp(prefix="repro-serve-smoke-"))
    root_dir.mkdir(parents=True, exist_ok=True)
    dataset = make_corpus("books", num_samples=num_samples, seed=8)
    input_path = Exporter(str(root_dir / "corpus.jsonl"), keep_stats=False).export(dataset)
    print(f"[serve-smoke] corpus: {len(dataset)} samples at {input_path}")

    core = create_core(root_dir / "service")
    server = make_server(core, host="127.0.0.1", port=0)
    host, port = server.server_address[:2]
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve-smoke", daemon=True
    )
    thread.start()
    print(f"[serve-smoke] server listening on http://{host}:{port}")
    try:
        client = HTTPClient(f"http://{host}:{port}")
        health = client.get("/health").raise_for_status().body
        print(f"[serve-smoke] health: {health['status']}, jobs={health['jobs']}")

        views = []
        for round_number in (1, 2):
            job = client.submit_job(_submission(Path(input_path), max_shard_rows))
            view = client.wait_for_job(job["id"], timeout=timeout_s)
            print(
                f"[serve-smoke] job {view['id']} ({round_number}/2) "
                f"finished: {view['state']}"
            )
            if view["state"] != "succeeded":
                print(f"[serve-smoke] FAIL: job ended {view['state']}: {view.get('error')}")
                return 1
            views.append(view)

        warm_report = client.job_report(views[1]["id"])
        shard_hits = warm_report.get("cache", {}).get("shard_hits", 0)
        if shard_hits <= 0:
            print(f"[serve-smoke] FAIL: second job was not cache-warm (shard_hits={shard_hits})")
            return 1
        print(f"[serve-smoke] warm resubmission replayed {shard_hits} cached shard(s)")

        # the CLI-equivalent run: same recipe, same knobs, direct code path
        from repro.api import Pipeline

        recipe = get_recipe(SMOKE_RECIPE)
        recipe.update(
            dataset_path=str(input_path),
            export_path=str(root_dir / "cli-export.jsonl"),
            work_dir=str(root_dir / "cli-work"),
            max_shard_rows=max_shard_rows,
        )
        Pipeline.from_recipe(recipe).run(mode="streaming")
        cli_bytes = (root_dir / "cli-export.jsonl").read_bytes()
        for view in views:
            service_export = Path(view["export_paths"][0])
            if service_export.read_bytes() != cli_bytes:
                print(
                    f"[serve-smoke] FAIL: {service_export} differs from the "
                    "direct CLI export"
                )
                return 1
        print("[serve-smoke] both service exports are byte-identical to the CLI export")
        print("[serve-smoke] OK")
        return 0
    finally:
        server.shutdown()
        server.server_close()
        core.shutdown()


__all__ = ["SMOKE_RECIPE", "run_smoke"]
