"""The job queue: bounded FIFO submissions drained by one worker thread.

Jobs are executed strictly one at a time, in submission order, by a single
daemon thread.  That single-consumer design is what makes sharing the
process-wide :func:`repro.parallel.get_shared_pool` workers and one shard
cache directory across concurrent *submissions* safe: requests enqueue
concurrently (the transports are threaded), but pipeline execution — the
only code that touches the pool and the cache — is serialized.  Parallelism
within a job still comes from the recipe's ``np`` worker processes.

Cancellation is honest about what the executor guarantees: a ``queued`` job
cancels immediately; a ``running`` pipeline is never killed mid-shard (the
request is rejected with 409), matching the crash-consistency story of the
checkpoint/spill layers.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.service.types import JobSpec, JobState, JobView, ServiceError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.runtime import ServiceRuntime

#: default bound of the submission queue (pending jobs, not counting running)
DEFAULT_QUEUE_LIMIT = 16


@dataclass
class Job:
    """One submission's full server-side record (the view plus the spec)."""

    id: str
    spec: JobSpec
    view: JobView
    #: set while the job is queued and a cancel request arrives
    cancel_requested: bool = False
    #: signalled when the job reaches a terminal state
    done: threading.Event = field(default_factory=threading.Event)


class JobManager:
    """Bounded FIFO job queue with a single execution worker thread.

    All public methods are thread-safe; state transitions happen under one
    lock and every terminal transition sets the job's ``done`` event (and
    notifies a condition, for :meth:`wait`).  ``pause``/``resume`` gate the
    worker *between* jobs — used by tests to cancel a queued job
    deterministically and by shutdown to drain cleanly.
    """

    def __init__(self, runtime: "ServiceRuntime", queue_limit: int = DEFAULT_QUEUE_LIMIT):
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        self._runtime = runtime
        self._queue_limit = queue_limit
        self._lock = threading.Lock()
        self._state_changed = threading.Condition(self._lock)
        self._queue: deque[Job] = deque()
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._ids = itertools.count(1)
        self._paused = False
        self._stopping = False
        self._worker = threading.Thread(
            target=self._worker_loop, name="repro-service-jobs", daemon=True
        )
        self._worker.start()

    # ------------------------------------------------------------------
    # Submission API (called from transport threads)
    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec) -> Job:
        """Enqueue a validated spec; 503 when the bounded queue is full."""
        with self._lock:
            if self._stopping:
                raise ServiceError.overloaded("server is shutting down")
            if len(self._queue) >= self._queue_limit:
                raise ServiceError.overloaded(
                    f"job queue is full ({self._queue_limit} pending); retry later"
                )
            job_id = f"job-{next(self._ids):06d}"
            view = JobView(
                id=job_id,
                state=JobState.QUEUED,
                recipe_name=str(spec.recipe.get("project_name") or "(inline)"),
                mode=spec.mode,
                work_dir=str(self._runtime.job_dir(job_id)),
            )
            job = Job(id=job_id, spec=spec, view=view)
            self._jobs[job_id] = job
            self._queue.append(job)
            self._state_changed.notify_all()
        return job

    def get(self, job_id: str) -> Job:
        """Look up one job; 404 with the known ids when absent."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError.not_found(f"unknown job id {job_id!r}")
        return job

    def list_views(self) -> list[JobView]:
        """Snapshot of every job's view, in submission order."""
        with self._lock:
            return [job.view for job in self._jobs.values()]

    def counts(self) -> dict[str, int]:
        """Per-state job counts (the health endpoint's queue gauge)."""
        with self._lock:
            counts = dict.fromkeys(JobState.ALL, 0)
            for job in self._jobs.values():
                counts[job.view.state] = counts.get(job.view.state, 0) + 1
            return counts

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued job; running/terminal jobs reject with 409."""
        job = self.get(job_id)
        with self._lock:
            state = job.view.state
            if state == JobState.QUEUED:
                job.cancel_requested = True
                self._finish(job, JobState.CANCELLED)
                return job
            if state in JobState.TERMINAL:
                raise ServiceError.conflict(
                    f"job {job_id} already finished ({state})"
                )
            raise ServiceError.conflict(
                f"job {job_id} is running; a running pipeline cannot be killed "
                "mid-shard (wait for it to finish)"
            )

    def wait(self, job_id: str, timeout: float | None = None) -> JobView:
        """Block until the job is terminal (or timeout); return its view."""
        job = self.get(job_id)
        job.done.wait(timeout)
        return job.view

    # ------------------------------------------------------------------
    # Worker gating / lifecycle
    # ------------------------------------------------------------------
    def pause(self) -> None:
        """Stop the worker from *starting* new jobs (the running one finishes)."""
        with self._lock:
            self._paused = True

    def resume(self) -> None:
        with self._lock:
            self._paused = False
            self._state_changed.notify_all()

    def shutdown(self, timeout: float = 30.0) -> None:
        """Refuse new work, cancel everything still queued, stop the worker."""
        with self._lock:
            self._stopping = True
            while self._queue:
                job = self._queue.popleft()
                self._finish(job, JobState.CANCELLED)
            self._state_changed.notify_all()
        self._worker.join(timeout)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _finish(self, job: Job, state: str, error: str | None = None) -> None:
        """Terminal transition (caller must hold the lock)."""
        job.view.state = state
        job.view.finished_at = time.time()
        if error is not None:
            job.view.error = error
        job.done.set()
        self._state_changed.notify_all()

    def _next_job(self) -> Job | None:
        """Block until a startable job exists (skipping cancelled entries)."""
        with self._state_changed:
            while True:
                if self._stopping:
                    return None
                if not self._paused and self._queue:
                    job = self._queue.popleft()
                    if job.cancel_requested:
                        continue
                    job.view.state = JobState.RUNNING
                    job.view.started_at = time.time()
                    return job
                self._state_changed.wait(timeout=0.5)

    def _worker_loop(self) -> None:
        while True:
            job = self._next_job()
            if job is None:
                return
            try:
                self._runtime.run_job(job)
            except Exception as error:  # noqa: BLE001 - the loop must survive any job
                with self._lock:
                    self._finish(job, JobState.FAILED, error=repr(error))
            else:
                with self._lock:
                    self._finish(job, JobState.SUCCEEDED)


__all__ = ["DEFAULT_QUEUE_LIMIT", "Job", "JobManager"]
