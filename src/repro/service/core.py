"""The transport-agnostic service core: one route table, two transports.

:class:`ServiceCore` maps ``(method, path)`` to the injected services and
returns ``(status, body)`` pairs of plain JSON-ready dicts.  Both adapters —
the stdlib HTTP server behind ``repro serve`` and the in-process client the
tier-1 tests use — call :meth:`ServiceCore.handle` and nothing else, so
everything the tests exercise is exactly what a network client reaches.

Routes::

    GET  /health                 liveness + job counts + warm-pool gauge
    GET  /schema                 full machine-readable op/recipe catalog
    GET  /ops                    compact operator listing
    GET  /ops/<name>             one operator's schema + effect signature
    GET  /recipes                built-in recipe listing
    GET  /recipes/<name>         one recipe's payload
    POST /validate               schema + dataflow validation of a recipe
    POST /jobs                   submit a job (202, bounded FIFO queue)
    GET  /jobs                   every job's view, in submission order
    GET  /jobs/<id>              one job's view
    POST /jobs/<id>/cancel       cancel a *queued* job
    GET  /jobs/<id>/report       the finished job's RunReport
    GET  /jobs/<id>/trace        just the report's tracer summary
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.service.catalog import CatalogService, ValidationService
from repro.service.jobs import DEFAULT_QUEUE_LIMIT, JobManager
from repro.service.runtime import ServiceRuntime
from repro.service.types import JobSpec, ServiceError


class ServiceCore:
    """Dependency-injected request dispatcher shared by every transport."""

    def __init__(
        self,
        catalog: CatalogService,
        validation: ValidationService,
        runtime: ServiceRuntime,
        jobs: JobManager,
    ):
        self.catalog = catalog
        self.validation = validation
        self.runtime = runtime
        self.jobs = jobs

    # ------------------------------------------------------------------
    def handle(
        self, method: str, path: str, payload: Any = None
    ) -> tuple[int, dict]:
        """Dispatch one request; never raises — errors become status bodies."""
        try:
            return self._route(method.upper(), path, payload)
        except ServiceError as error:
            return error.status, error.as_dict()

    def _route(self, method: str, path: str, payload: Any) -> tuple[int, dict]:
        parts = [part for part in path.split("/") if part]
        if not parts:
            raise ServiceError.not_found("no route at '/' (try GET /health)")
        head, rest = parts[0], parts[1:]
        if head == "health" and not rest:
            self._require(method, "GET", path)
            return 200, self._health()
        if head == "schema" and not rest:
            self._require(method, "GET", path)
            return 200, self.catalog.schema()
        if head == "ops":
            self._require(method, "GET", path)
            if not rest:
                return 200, self.catalog.list_ops()
            if len(rest) == 1:
                return 200, self.catalog.get_op(rest[0])
        if head == "recipes":
            self._require(method, "GET", path)
            if not rest:
                return 200, self.catalog.list_recipes()
            if len(rest) == 1:
                return 200, self.catalog.get_recipe(rest[0])
        if head == "validate" and not rest:
            self._require(method, "POST", path)
            return 200, self.validation.validate(payload)
        if head == "jobs":
            return self._route_jobs(method, path, rest, payload)
        raise ServiceError.not_found(f"no route for {method} {path}")

    def _route_jobs(
        self, method: str, path: str, rest: list[str], payload: Any
    ) -> tuple[int, dict]:
        if not rest:
            if method == "POST":
                job = self.jobs.submit(JobSpec.from_payload(payload))
                return 202, {"job": job.view.as_dict()}
            self._require(method, "GET", path)
            return 200, {"jobs": [view.as_dict() for view in self.jobs.list_views()]}
        job = self.jobs.get(rest[0])
        action = rest[1] if len(rest) > 1 else None
        if action is None:
            self._require(method, "GET", path)
            return 200, {"job": job.view.as_dict()}
        if action == "cancel" and len(rest) == 2:
            self._require(method, "POST", path)
            return 200, {"job": self.jobs.cancel(job.id).view.as_dict()}
        if action == "report" and len(rest) == 2:
            self._require(method, "GET", path)
            report = self.runtime.load_report(job)
            return 200, {"job": job.view.as_dict(), "report": report.as_dict()}
        if action == "trace" and len(rest) == 2:
            self._require(method, "GET", path)
            report = self.runtime.load_report(job)
            return 200, {"job": job.view.as_dict(), "trace": list(report.trace)}
        raise ServiceError.not_found(f"no route for {method} {path}")

    @staticmethod
    def _require(method: str, expected: str, path: str) -> None:
        if method != expected:
            raise ServiceError.method_not_allowed(
                f"{path} only accepts {expected}, not {method}"
            )

    # ------------------------------------------------------------------
    def _health(self) -> dict:
        from repro.parallel.pool import _SHARED_POOLS, _SHARED_POOLS_LOCK

        with _SHARED_POOLS_LOCK:
            warm_pools = sum(1 for pool in _SHARED_POOLS.values() if pool.alive)
        return {
            "status": "ok",
            "root": str(self.runtime.root),
            "jobs": self.jobs.counts(),
            "warm_pools": warm_pools,
        }

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Drain the queue and stop the worker (shared pools stay with atexit)."""
        self.jobs.shutdown()


def create_core(
    root: str | Path, queue_limit: int = DEFAULT_QUEUE_LIMIT
) -> ServiceCore:
    """Wire the default service graph over a root directory."""
    runtime = ServiceRuntime(root)
    return ServiceCore(
        catalog=CatalogService(),
        validation=ValidationService(),
        runtime=runtime,
        jobs=JobManager(runtime, queue_limit=queue_limit),
    )


__all__ = ["ServiceCore", "create_core"]
