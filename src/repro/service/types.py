"""Typed request/response contracts of the pipeline service.

The service does not invent a wire schema: job submissions are plain recipe
payloads validated by the same :mod:`repro.core.schema` /
:mod:`repro.core.config` layers the CLI uses, and every response body is the
``as_dict()`` view of one of the dataclasses below.  :class:`ServiceError`
carries an HTTP-shaped status code so the transport adapters (in-process and
``http.server``) map failures identically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.core.planner import EXECUTION_MODES


class ServiceError(Exception):
    """A request-level failure with an HTTP-shaped status code.

    Raised by the service core (and its injected services); both transports
    render it as ``{"error": {"status": ..., "message": ...}}`` with the
    matching HTTP status, so in-process tests observe exactly what a network
    client would.
    """

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = int(status)
        self.message = message

    def as_dict(self) -> dict:
        return {"error": {"status": self.status, "message": self.message}}

    # -- conventional constructors -------------------------------------
    @classmethod
    def bad_request(cls, message: str) -> "ServiceError":
        return cls(400, message)

    @classmethod
    def not_found(cls, message: str) -> "ServiceError":
        return cls(404, message)

    @classmethod
    def method_not_allowed(cls, message: str) -> "ServiceError":
        return cls(405, message)

    @classmethod
    def conflict(cls, message: str) -> "ServiceError":
        return cls(409, message)

    @classmethod
    def overloaded(cls, message: str) -> "ServiceError":
        return cls(503, message)


class JobState:
    """Lifecycle states of a submitted job (a linear happy path + 3 exits).

    ``QUEUED -> RUNNING -> SUCCEEDED`` is the happy path; ``FAILED`` captures
    an execution error (the job view carries the message, the job directory
    an ``error.txt``), and ``CANCELLED`` is reachable only from ``QUEUED`` —
    a running pipeline is never killed mid-shard, matching the executor's
    crash-consistency guarantees.
    """

    QUEUED = "queued"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    CANCELLED = "cancelled"

    #: states a job can never leave
    TERMINAL = (SUCCEEDED, FAILED, CANCELLED)

    #: every state, in lifecycle order (for docs and validation)
    ALL = (QUEUED, RUNNING, SUCCEEDED, FAILED, CANCELLED)


@dataclass(frozen=True)
class JobSpec:
    """A validated job submission: the recipe payload plus run knobs.

    Built from a ``POST /jobs`` body by :meth:`from_payload`; the recipe is
    either inline (``recipe``: a full recipe dict) or a built-in name
    (``recipe_name``) with optional ``overrides`` merged on top — exactly
    the two recipe sources ``repro process`` accepts.
    """

    recipe: dict
    mode: str = "auto"
    shard_output: bool = False

    @classmethod
    def from_payload(cls, payload: Any) -> "JobSpec":
        """Validate a submission body and build the spec (400 on bad shape)."""
        if not isinstance(payload, dict):
            raise ServiceError.bad_request("submission body must be a JSON object")
        recipe = payload.get("recipe")
        recipe_name = payload.get("recipe_name")
        if (recipe is None) == (recipe_name is None):
            raise ServiceError.bad_request(
                "exactly one of 'recipe' (inline payload) or 'recipe_name' "
                "(built-in) is required"
            )
        if recipe_name is not None:
            from repro.core.errors import RegistryError
            from repro.recipes import get_recipe

            if not isinstance(recipe_name, str):
                raise ServiceError.bad_request("'recipe_name' must be a string")
            try:
                recipe = get_recipe(recipe_name)
            except RegistryError as error:
                raise ServiceError.not_found(str(error)) from error
            overrides = payload.get("overrides") or {}
            if not isinstance(overrides, dict):
                raise ServiceError.bad_request("'overrides' must be a JSON object")
            recipe.update(overrides)
        elif not isinstance(recipe, dict):
            raise ServiceError.bad_request("'recipe' must be a JSON object")
        elif "overrides" in payload:
            raise ServiceError.bad_request(
                "'overrides' only applies to 'recipe_name' submissions; "
                "merge them into the inline 'recipe' instead"
            )
        mode = payload.get("mode", "auto")
        if mode not in EXECUTION_MODES:
            raise ServiceError.bad_request(
                f"unknown mode {mode!r} (choose from {', '.join(EXECUTION_MODES)})"
            )
        shard_output = payload.get("shard_output", False)
        if not isinstance(shard_output, bool):
            raise ServiceError.bad_request("'shard_output' must be a boolean")
        if not recipe.get("dataset_path"):
            raise ServiceError.bad_request(
                "the recipe must set 'dataset_path' (the server does not "
                "accept request-attached data)"
            )
        return cls(recipe=dict(recipe), mode=mode, shard_output=shard_output)


@dataclass
class JobView:
    """The externally visible snapshot of one job (every ``/jobs`` response)."""

    id: str
    state: str
    recipe_name: str
    mode: str
    created_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    work_dir: str = ""
    export_paths: list[str] = field(default_factory=list)
    error: str | None = None

    def as_dict(self) -> dict:
        payload = {
            "id": self.id,
            "state": self.state,
            "recipe_name": self.recipe_name,
            "mode": self.mode,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "work_dir": self.work_dir,
            "export_paths": list(self.export_paths),
        }
        if self.error is not None:
            payload["error"] = self.error
        return payload


__all__ = ["JobSpec", "JobState", "JobView", "ServiceError"]
