"""Catalog and validation services: the read-only half of the service API.

:func:`catalog_payload` is the single machine-readable dump of the operator
ecosystem — every registered op's typed :class:`~repro.core.schema.OpSchema`
plus its statically-inferred effect signature, and the built-in recipe
catalogue.  ``repro schema --json`` prints it and the service's ``/schema``
endpoint returns it *verbatim*, so out-of-process clients and the CLI agree
byte-for-byte on what the system can do.
"""

from __future__ import annotations

from typing import Any

from repro.core.schema import OpSchema, ParamSpec, schema_for
from repro.service.types import ServiceError

#: bumped when the shape of :func:`catalog_payload` changes incompatibly
CATALOG_VERSION = 1


def _param_payload(spec: ParamSpec) -> dict:
    """JSON-ready view of one typed constructor parameter."""
    return {
        "name": spec.name,
        "type": spec.type_label,
        "required": spec.required,
        "default": None if spec.required else repr(spec.default),
        "nullable": spec.nullable,
        "min_value": spec.min_value,
        "max_value": spec.max_value,
        "choices": list(spec.choices) if spec.choices is not None else None,
        "doc": spec.doc,
    }


def op_payload(schema: OpSchema) -> dict:
    """One operator's full catalog entry: schema + effect signature."""
    effects = schema.effects()
    return {
        "name": schema.name,
        "category": schema.category,
        "summary": schema.summary,
        "params": [_param_payload(spec) for spec in schema.params],
        "common_params": [_param_payload(spec) for spec in schema.common],
        "effects": effects.as_dict() if effects is not None else None,
    }


def catalog_payload() -> dict:
    """The full machine-readable catalog (ops + recipes), deterministic.

    Shared verbatim by ``repro schema --json`` and ``GET /schema`` — tests
    assert equality of the two, so keep this the only producer.
    """
    import repro.ops  # noqa: F401  (populates the registry as an import side effect)
    from repro.core.registry import OPERATORS
    from repro.recipes import BUILT_IN_RECIPES

    ops = [
        op_payload(schema_for(OPERATORS.get(name), name))
        for name in sorted(OPERATORS.list())
    ]
    recipes = [
        {
            "name": name,
            "num_ops": len(BUILT_IN_RECIPES[name].get("process", [])),
            "streaming": bool(BUILT_IN_RECIPES[name].get("stream", False)),
        }
        for name in sorted(BUILT_IN_RECIPES)
    ]
    return {"version": CATALOG_VERSION, "ops": ops, "recipes": recipes}


class CatalogService:
    """Dependency-injected discovery endpoints over the op/recipe registries."""

    def schema(self) -> dict:
        """``GET /schema`` — the :func:`catalog_payload`, verbatim."""
        return catalog_payload()

    def list_ops(self) -> dict:
        """``GET /ops`` — compact name/category/summary listing."""
        payload = catalog_payload()
        return {
            "ops": [
                {
                    "name": entry["name"],
                    "category": entry["category"],
                    "summary": entry["summary"],
                }
                for entry in payload["ops"]
            ]
        }

    def get_op(self, name: str) -> dict:
        """``GET /ops/<name>`` — one op's full catalog entry (404 + hint)."""
        import repro.ops  # noqa: F401
        from repro.core.registry import OPERATORS, unknown_name_message

        if name not in OPERATORS:
            raise ServiceError.not_found(
                unknown_name_message("operator", name, OPERATORS.list())
            )
        return op_payload(schema_for(OPERATORS.get(name), name))

    def list_recipes(self) -> dict:
        """``GET /recipes`` — the built-in recipe listing."""
        return {"recipes": catalog_payload()["recipes"]}

    def get_recipe(self, name: str) -> dict:
        """``GET /recipes/<name>`` — one recipe's full payload (404 + hint)."""
        from repro.core.errors import RegistryError
        from repro.recipes import get_recipe

        try:
            return {"name": name, "recipe": get_recipe(name)}
        except RegistryError as error:
            raise ServiceError.not_found(str(error)) from error


class ValidationService:
    """Recipe/dataflow validation endpoint: ``repro validate-recipe`` as a service.

    Reuses :func:`repro.api.validate_recipe` (typed op schemas + run-option
    rules, with the static dataflow checker folded in once the schema layers
    pass), so a recipe the service accepts is exactly a recipe the CLI
    accepts.
    """

    def validate(self, payload: Any) -> dict:
        if not isinstance(payload, dict):
            raise ServiceError.bad_request("validation body must be a JSON object")
        recipe = payload.get("recipe")
        recipe_name = payload.get("recipe_name")
        if (recipe is None) == (recipe_name is None):
            raise ServiceError.bad_request(
                "exactly one of 'recipe' (inline payload) or 'recipe_name' "
                "(built-in) is required"
            )
        if recipe_name is not None:
            from repro.core.errors import RegistryError
            from repro.recipes import get_recipe

            try:
                recipe = get_recipe(recipe_name)
            except RegistryError as error:
                raise ServiceError.not_found(str(error)) from error
        elif not isinstance(recipe, dict):
            raise ServiceError.bad_request("'recipe' must be a JSON object")
        from repro.api import validate_recipe

        issues = validate_recipe(recipe)
        return {
            "valid": not issues,
            "issues": [
                {"op": issue.op, "param": issue.param, "message": issue.message}
                for issue in issues
            ],
        }


__all__ = [
    "CATALOG_VERSION",
    "CatalogService",
    "ValidationService",
    "catalog_payload",
    "op_payload",
]
