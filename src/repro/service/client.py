"""Service clients: the in-process test transport and a urllib HTTP client.

Both speak the same ``request(method, path, payload) -> ServiceResponse``
protocol over the same route table, so a test written against
:class:`InProcessClient` exercises byte-for-byte what an
:class:`HTTPClient` (and hence any network consumer) would see — without
binding a port.  The shared convenience helpers (``submit_job``,
``wait_for_job``) are the canonical polling loop for both.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Any

from repro.service.core import ServiceCore
from repro.service.types import JobState


@dataclass(frozen=True)
class ServiceResponse:
    """One response: HTTP-shaped status plus the parsed JSON body."""

    status: int
    body: dict

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def raise_for_status(self) -> "ServiceResponse":
        if not self.ok:
            error = (self.body or {}).get("error") or {}
            raise RuntimeError(
                f"service request failed with {self.status}: "
                f"{error.get('message', self.body)}"
            )
        return self


class _BaseClient:
    """The verb helpers and job workflow shared by both transports."""

    def request(self, method: str, path: str, payload: Any = None) -> ServiceResponse:
        raise NotImplementedError

    def get(self, path: str) -> ServiceResponse:
        return self.request("GET", path)

    def post(self, path: str, payload: Any = None) -> ServiceResponse:
        return self.request("POST", path, payload)

    # -- job workflow ---------------------------------------------------
    def submit_job(self, payload: dict) -> dict:
        """``POST /jobs`` and return the accepted job view."""
        return self.post("/jobs", payload).raise_for_status().body["job"]

    def job(self, job_id: str) -> dict:
        """``GET /jobs/<id>`` and return the current job view."""
        return self.get(f"/jobs/{job_id}").raise_for_status().body["job"]

    def wait_for_job(
        self, job_id: str, timeout: float = 120.0, poll_s: float = 0.05
    ) -> dict:
        """Poll job status until terminal; raise on timeout.

        Deliberately polls through the status endpoint (instead of peeking
        at server internals) so waiting exercises the same surface a remote
        client has.
        """
        deadline = time.monotonic() + timeout
        while True:
            view = self.job(job_id)
            if view["state"] in JobState.TERMINAL:
                return view
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {view['state']!r} after {timeout}s"
                )
            time.sleep(poll_s)

    def job_report(self, job_id: str) -> dict:
        """``GET /jobs/<id>/report`` and return the RunReport payload."""
        return self.get(f"/jobs/{job_id}/report").raise_for_status().body["report"]


class InProcessClient(_BaseClient):
    """Calls :meth:`ServiceCore.handle` directly — tier-1's portless transport."""

    def __init__(self, core: ServiceCore):
        self.core = core

    def request(self, method: str, path: str, payload: Any = None) -> ServiceResponse:
        # round-trip the payload through JSON so in-process requests can
        # carry exactly what the HTTP transport can (no live objects)
        encoded = json.loads(json.dumps(payload)) if payload is not None else None
        status, body = self.core.handle(method, path, encoded)
        return ServiceResponse(status=status, body=json.loads(json.dumps(body, default=repr)))


class HTTPClient(_BaseClient):
    """A tiny urllib client for ``repro serve`` (used by the smoke check)."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def request(self, method: str, path: str, payload: Any = None) -> ServiceResponse:
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return ServiceResponse(
                    status=response.status,
                    body=json.loads(response.read().decode("utf-8")),
                )
        except urllib.error.HTTPError as error:
            # service errors are JSON bodies with non-2xx statuses, not faults
            raw = error.read().decode("utf-8", errors="replace")
            try:
                body = json.loads(raw)
            except json.JSONDecodeError:
                body = {"error": {"status": error.code, "message": raw}}
            return ServiceResponse(status=error.code, body=body)


__all__ = ["HTTPClient", "InProcessClient", "ServiceResponse"]
