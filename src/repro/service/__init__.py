"""Pipeline-as-a-service: a long-running typed job server over the executor.

The CLI throws the expensive state away after every run — worker processes,
the shard cache, planner warmup all die with the process.  This package is
the always-on alternative the paper's system ships as: one server process
keeps the shared :func:`repro.parallel.get_shared_pool` workers and one
shard-cache directory warm while jobs come and go.

The layering (see ``docs/service.md``):

* :mod:`repro.service.types` — typed request/response contracts derived
  from the existing schema/config layer (no invented wire format);
* :mod:`repro.service.catalog` — op/recipe discovery and recipe validation
  services (the ``repro schema --json`` payload, served verbatim);
* :mod:`repro.service.jobs` — a bounded FIFO queue drained by one worker
  thread, serializing pipeline execution;
* :mod:`repro.service.runtime` — per-job ``work_dir`` isolation over the
  shared cache and pool;
* :mod:`repro.service.core` — the transport-agnostic route table;
* :mod:`repro.service.http` / :mod:`repro.service.client` — the stdlib
  HTTP adapter behind ``repro serve``, and the in-process transport tier-1
  tests use so they never bind a port.
"""

from repro.service.catalog import CatalogService, ValidationService, catalog_payload
from repro.service.client import HTTPClient, InProcessClient, ServiceResponse
from repro.service.core import ServiceCore, create_core
from repro.service.jobs import DEFAULT_QUEUE_LIMIT, Job, JobManager
from repro.service.runtime import ServiceRuntime, resolve_job_report
from repro.service.types import JobSpec, JobState, JobView, ServiceError

__all__ = [
    "CatalogService",
    "DEFAULT_QUEUE_LIMIT",
    "HTTPClient",
    "InProcessClient",
    "Job",
    "JobManager",
    "JobSpec",
    "JobState",
    "JobView",
    "ServiceCore",
    "ServiceError",
    "ServiceResponse",
    "ServiceRuntime",
    "ValidationService",
    "catalog_payload",
    "create_core",
    "resolve_job_report",
]
