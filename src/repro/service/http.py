"""The stdlib HTTP/JSON adapter: ``repro serve`` without any new dependency.

A thin :mod:`http.server` layer over :class:`~repro.service.core.
ServiceCore.handle` — request bodies are parsed as JSON, responses are the
core's dicts serialized back, and every status code (including
:class:`~repro.service.types.ServiceError` renderings) passes through
unchanged.  ``ThreadingHTTPServer`` keeps slow clients from blocking each
other; execution concurrency is still governed by the core's single job
worker, so threaded transports never race on the pool or the cache.
"""

from __future__ import annotations

import json
import logging
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.service.core import ServiceCore

logger = logging.getLogger(__name__)

#: request bodies larger than this are rejected (a recipe is a few KB)
MAX_BODY_BYTES = 4 << 20


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Translates HTTP requests to ``core.handle`` calls, 1:1."""

    server: "ServiceHTTPServer"
    #: advertise a stable server token instead of the Python version
    server_version = "repro-service"
    sys_version = ""

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET", payload=None)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            payload = self._read_json_body()
        except ValueError as error:
            self._write(400, {"error": {"status": 400, "message": str(error)}})
            return
        self._dispatch("POST", payload=payload)

    def _dispatch(self, method: str, payload: object) -> None:
        status, body = self.server.core.handle(method, self.path, payload)
        self._write(status, body)

    def _read_json_body(self) -> object:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ValueError(f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return None
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ValueError(f"request body is not valid JSON: {error}") from error

    def _write(self, status: int, body: dict) -> None:
        data = json.dumps(body, ensure_ascii=False, default=repr).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        # route access logs through logging instead of stderr spam
        logger.debug("%s - %s", self.address_string(), format % args)


class ServiceHTTPServer(ThreadingHTTPServer):
    """A ``ThreadingHTTPServer`` carrying the service core for its handlers."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], core: ServiceCore):
        super().__init__(address, ServiceRequestHandler)
        self.core = core


def make_server(core: ServiceCore, host: str = "127.0.0.1", port: int = 0) -> ServiceHTTPServer:
    """Bind (``port=0`` picks an ephemeral port) without starting to serve.

    The caller drives ``serve_forever()`` — ``repro serve`` blocks on it in
    the main thread, the smoke harness runs it in a daemon thread.
    """
    return ServiceHTTPServer((host, port), core)


def serve(core: ServiceCore, host: str = "127.0.0.1", port: int = 8400) -> None:
    """Blocking server loop (the body of ``repro serve``)."""
    server = make_server(core, host=host, port=port)
    bound_host, bound_port = server.server_address[:2]
    print(f"repro service listening on http://{bound_host}:{bound_port} (Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.shutdown()
        server.server_close()
        core.shutdown()


__all__ = ["MAX_BODY_BYTES", "ServiceHTTPServer", "ServiceRequestHandler", "make_server", "serve"]
