"""Job execution runtime: warm shared resources, cold per-job isolation.

Each job runs in its own work directory (``<root>/jobs/<id>``: report,
trace, checkpoints, quarantine, default export), while the expensive state
is shared across jobs and kept warm for the server's lifetime:

* **worker processes** — executors are built with ``shared_pool=True``, so
  parallel stages borrow the process-wide :func:`repro.parallel.
  get_shared_pool` workers (op instances resolve against the residents by
  config equivalence) and :meth:`Executor.close` detaches instead of
  killing them;
* **the shard cache** — one ``<root>/cache`` directory serves every job.
  Shard-cache keys are content-based (op fingerprint chain + shard row
  hash), so a resubmitted recipe over unchanged data replays cached shard
  outputs (``cache.shard_hits > 0`` in its report) without any
  cross-contamination between different recipes or inputs.

The per-job fault policy comes from the job's own recipe (``on_error``,
``max_retries``, ``task_timeout_s``, ...) exactly as it would from the CLI.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING

from repro.core.report import REPORT_FILE, RunReport
from repro.service.types import ServiceError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.jobs import Job

#: file a failed job's exception is persisted to, next to where report.json
#: would have been
ERROR_FILE = "error.txt"


class ServiceRuntime:
    """Owns the service root directory and executes jobs against it."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.cache_dir = self.root / "cache"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.cache_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def job_dir(self, job_id: str) -> Path:
        """The isolated work directory of one job."""
        return self.jobs_dir / job_id

    def job_config(self, job: "Job") -> dict:
        """The effective recipe payload of a job: isolation + warm defaults.

        The submitted recipe is taken as-is, then pinned to the job's own
        ``work_dir`` and the server's shared ``cache_dir``; ``use_cache``
        defaults on (that is the point of a warm server) but an explicit
        ``use_cache: false`` in the submission is honoured.  A recipe with
        no ``export_path`` exports to ``<job work_dir>/export.jsonl``.
        """
        payload = dict(job.spec.recipe)
        work_dir = self.job_dir(job.id)
        payload["work_dir"] = str(work_dir)
        payload["cache_dir"] = str(self.cache_dir)
        payload.setdefault("use_cache", True)
        payload.setdefault("export_path", str(work_dir / "export.jsonl"))
        return payload

    # ------------------------------------------------------------------
    def run_job(self, job: "Job") -> RunReport:
        """Execute one job end to end (called only by the queue worker).

        Failures are persisted to ``<work_dir>/error.txt`` and re-raised for
        the manager to record on the job view.
        """
        from repro.core.executor import Executor

        payload = self.job_config(job)
        work_dir = Path(payload["work_dir"])
        work_dir.mkdir(parents=True, exist_ok=True)
        try:
            with Executor(payload, shared_pool=True) as executor:
                report = executor.execute(
                    mode=job.spec.mode, shard_output=job.spec.shard_output
                )
            job.view.export_paths = [str(path) for path in report.export_paths]
            return report
        except Exception as error:
            try:
                (work_dir / ERROR_FILE).write_text(repr(error), encoding="utf-8")
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    def load_report(self, job: "Job") -> RunReport:
        """The persisted :class:`RunReport` of a finished job (404 until then)."""
        path = self.job_dir(job.id) / REPORT_FILE
        if not path.exists():
            raise ServiceError.not_found(
                f"job {job.id} has no report yet (state: {job.view.state})"
            )
        return RunReport.load(path)


def resolve_job_report(root: str | Path, job_id: str) -> Path:
    """Path of a job's ``report.json`` under a service root (CLI helper).

    This is what lets ``repro report --service-root <root> --job <id>``
    render a queued job's report with the same code path as a CLI run.
    """
    path = Path(root) / "jobs" / job_id / REPORT_FILE
    if not path.exists():
        raise FileNotFoundError(
            f"no run report for job {job_id!r} under {root} (expected {path})"
        )
    return path


__all__ = ["ERROR_FILE", "ServiceRuntime", "resolve_job_report"]
