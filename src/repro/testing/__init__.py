"""Deterministic testing utilities for the fault-tolerance layer.

The :mod:`repro.testing.chaos` harness injects seeded, reproducible faults
(exceptions, worker kills, hangs) into chosen operators on chosen rows, so
the chaos suite can assert that a faulted run completes and that its export
equals the fault-free export minus exactly the quarantined rows.
"""

from repro.testing.chaos import ChaosFault, FaultPlan, FaultSpec

__all__ = ["ChaosFault", "FaultPlan", "FaultSpec"]
