"""Deterministic chaos harness: seeded fault injection for operators.

A :class:`FaultPlan` describes exactly *where* faults fire (which operator,
which rows via substring match), *what* fires (an exception, a worker-process
kill, a hang) and *how often* (``times``-bounded via on-disk fuse tokens that
work across worker processes).  Installing the plan wraps the chosen
operators' execution methods in place — batched and per-row paths alike, and
recursively through :class:`repro.core.fusion.FusedFilter` members — so the
same plan perturbs the in-memory engine, the worker pool and the streaming
engine identically.

Determinism contract: triggers are pure functions of the row payloads
(substring match) plus the persistent fuse state, never of wall-clock time or
process scheduling, so a chaos test replays bit-for-bit.  Fuse tokens are
claimed *before* the fault fires, which is what makes ``kill`` and ``hang``
faults one-shot: the retried dispatch finds the fuse blown and runs clean.

Limitations: wrappers live on the operator *instances*, so worker processes
observe them only under the ``fork`` start method (Linux default), where the
pool inherits the parent's already-wrapped ops.  This harness is a test
utility — never install a plan in production pipelines.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from repro.core.base_op import Deduplicator, Filter, Mapper
from repro.core.sample import Fields

#: exit code of a chaos-killed worker process (distinctive in waitpid status)
KILL_EXIT_CODE = 43

#: wrapped method names per operator category (batched first, then per-row)
_METHODS_BY_CATEGORY = (
    (Mapper, ("process_batched", "process")),
    (Filter, ("compute_stats_batched", "compute_stats")),
    (Deduplicator, ("compute_hash_batched", "compute_hash")),
)

#: method names whose first argument is a columnar batch (dict of lists)
_BATCHED_METHODS = frozenset(
    {"process_batched", "compute_stats_batched", "compute_hash_batched"}
)


class ChaosFault(RuntimeError):
    """The exception raised by an injected ``raise`` fault."""


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: which op, what happens, on which rows, how often."""

    #: operator name the fault attaches to (fused members match by their own
    #: pre-fusion names)
    op_name: str
    #: ``raise`` (throw :class:`ChaosFault`), ``kill`` (``os._exit`` the
    #: executing process — a worker under ``np > 1``) or ``hang`` (sleep
    #: ``hang_s`` before proceeding, so a dispatch timeout sees a stuck worker)
    kind: str = "raise"
    #: substring of the row's text that arms the fault; ``None`` arms on
    #: every call
    match: str | None = None
    #: how many times the fault fires before burning out; ``None`` = always
    times: int | None = None
    #: sleep duration of a ``hang`` fault (seconds)
    hang_s: float = 30.0

    def __post_init__(self) -> None:
        if self.kind not in ("raise", "kill", "hang"):
            raise ValueError(f"unknown fault kind {self.kind!r}")


class FaultPlan:
    """A deterministic, installable collection of :class:`FaultSpec` faults.

    ``state_dir`` holds the fuse-token files that bound ``times``-limited
    faults across *all* processes touching the ops (parent and forked
    workers); it is required as soon as any spec sets ``times``.
    """

    def __init__(self, seed: int = 0, state_dir: str | Path | None = None):
        self.seed = seed
        self.state_dir = Path(state_dir) if state_dir is not None else None
        self.specs: list[FaultSpec] = []

    # ------------------------------------------------------------------
    def inject(
        self,
        op_name: str,
        kind: str = "raise",
        match: str | None = None,
        times: int | None = None,
        hang_s: float = 30.0,
    ) -> "FaultPlan":
        """Add one fault spec; chainable."""
        spec = FaultSpec(op_name, kind=kind, match=match, times=times, hang_s=hang_s)
        if spec.times is not None and self.state_dir is None:
            raise ValueError("times-bounded faults need a state_dir for fuse tokens")
        self.specs.append(spec)
        return self

    # ------------------------------------------------------------------
    # Fuse tokens: cross-process fire-at-most-N bookkeeping
    # ------------------------------------------------------------------
    def _claim(self, spec_index: int, spec: FaultSpec) -> bool:
        """Atomically claim one firing of ``spec``; False when burnt out.

        Token files are created with ``O_CREAT | O_EXCL`` so exactly one
        process wins each of the ``times`` slots, even when several forked
        workers race on the same shard text.
        """
        if spec.times is None:
            return True
        assert self.state_dir is not None
        self.state_dir.mkdir(parents=True, exist_ok=True)
        for slot in range(spec.times):
            token = self.state_dir / f"chaos-{self.seed}-spec{spec_index}-{slot}.fired"
            try:
                handle = os.open(token, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.close(handle)
            return True
        return False

    def fired(self, spec_index: int = 0) -> int:
        """Number of fuse tokens the given spec has burnt so far."""
        spec = self.specs[spec_index]
        if spec.times is None or self.state_dir is None:
            return 0
        return sum(
            1
            for slot in range(spec.times)
            if (self.state_dir / f"chaos-{self.seed}-spec{spec_index}-{slot}.fired").exists()
        )

    def reset(self) -> None:
        """Clear every fuse token so the plan can re-fire from scratch."""
        if self.state_dir is None:
            return
        for spec_index, spec in enumerate(self.specs):
            for slot in range(spec.times or 0):
                token = self.state_dir / f"chaos-{self.seed}-spec{spec_index}-{slot}.fired"
                if token.exists():
                    token.unlink()

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def install(self, ops: Iterable[Any]) -> "FaultPlan":
        """Wrap every matching operator's execution methods in place.

        Recurses into fused filters so plans written against the raw recipe
        op names keep working when ``op_fusion`` is on.  Returns ``self``
        for chaining.
        """
        for op in ops:
            members = getattr(op, "fused_filters", None)
            if members is not None:
                self.install(members)
            for spec_index, spec in enumerate(self.specs):
                if getattr(op, "name", None) != spec.op_name:
                    continue
                for base, method_names in _METHODS_BY_CATEGORY:
                    if not isinstance(op, base):
                        continue
                    for method_name in method_names:
                        self._wrap(op, method_name, spec_index, spec)
        return self

    def _wrap(self, op: Any, method_name: str, spec_index: int, spec: FaultSpec) -> None:
        original = getattr(op, method_name)
        text_key = getattr(op, "text_key", Fields.text)
        batched = method_name in _BATCHED_METHODS
        plan = self

        def chaotic(payload: Any, *args: Any, **kwargs: Any) -> Any:
            if _armed(payload, spec.match, text_key, batched) and plan._claim(
                spec_index, spec
            ):
                if spec.kind == "kill":
                    # simulate a hard worker death: no cleanup, no exception
                    os._exit(KILL_EXIT_CODE)
                if spec.kind == "raise":
                    raise ChaosFault(
                        f"chaos: injected failure in {spec.op_name} ({method_name})"
                    )
                time.sleep(spec.hang_s)  # "hang": stall, then behave normally
            return original(payload, *args, **kwargs)

        # the engines route bound methods to the worker pool via __self__ /
        # __name__ introspection (WorkerPool.accepts); the wrapper must look
        # like the method it replaces or wrapped ops would silently fall back
        # to in-parent serial execution — and a `kill` fault would take down
        # the parent instead of a worker
        chaotic.__name__ = method_name
        chaotic.__self__ = op
        setattr(op, method_name, chaotic)


def _armed(payload: Any, match: str | None, text_key: str, batched: bool) -> bool:
    """Does this call's payload arm the fault?

    Batched payloads are columnar (dict of row-aligned lists); per-row
    payloads are plain sample dicts.  A ``None`` match arms every call.
    """
    if match is None:
        return True
    if batched:
        texts = payload.get(text_key) or []
        return any(isinstance(text, str) and match in text for text in texts)
    text = payload.get(text_key)
    return isinstance(text, str) and match in text


__all__ = ["ChaosFault", "FaultPlan", "FaultSpec", "KILL_EXIT_CODE"]
