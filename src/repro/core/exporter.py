"""Exporter: write processed datasets back to disk (jsonl / json / txt).

Writing is *streaming* throughout: rows are serialised one at a time, never
materialised as an intermediate list, and ``.gz`` targets are compressed on
the fly with deterministic gzip headers.  With a shard budget
(``shard_rows`` / ``shard_chars``) the exporter rolls size-capped output
shards — ``out.jsonl.gz`` becomes ``out-00001.jsonl.gz``, ``out-00002...`` —
which is how the streaming run mode keeps the output side of the pipeline
out-of-core as well.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterable, Iterator

from repro.core.dataset import NestedDataset
from repro.core.errors import ReproError
from repro.core.sample import Fields, strip_internal_fields
from repro.core.serialization import JsonSanitizer


class Exporter:
    """Export a processed dataset (or row stream) to one or more target files.

    ``export_format`` is inferred from the target suffix when not given (a
    trailing ``.gz`` means gzip compression of the inner format);
    ``keep_stats`` controls whether the per-sample stats column survives in
    the exported records.  ``shard_rows`` / ``shard_chars`` cap each output
    shard — when either is set, numbered shard files are written instead of
    one monolithic target (jsonl and txt formats only).
    """

    SUPPORTED = ("jsonl", "json", "txt")
    GZIP_SUFFIX = ".gz"

    def __init__(
        self,
        export_path: str | Path,
        export_format: str | None = None,
        keep_stats: bool = False,
        shard_rows: int | None = None,
        shard_chars: int | None = None,
    ):
        self.export_path = Path(export_path)
        suffixes = self.export_path.suffixes
        self.compress = bool(suffixes) and suffixes[-1] == self.GZIP_SUFFIX
        if export_format is None:
            inner = suffixes[-2] if self.compress and len(suffixes) > 1 else self.export_path.suffix
            inner = inner.lstrip(".")
            export_format = inner if inner in self.SUPPORTED else "jsonl"
        if export_format not in self.SUPPORTED:
            raise ReproError(
                f"unsupported export format {export_format!r}; choose from {self.SUPPORTED}"
            )
        self.export_format = export_format
        self.keep_stats = keep_stats
        self.shard_rows = shard_rows
        self.shard_chars = shard_chars
        if self.sharded and export_format == "json":
            raise ReproError(
                "sharded export requires a line-oriented format (jsonl/txt); "
                "a JSON array cannot be split across shards"
            )

    # ------------------------------------------------------------------
    @property
    def sharded(self) -> bool:
        """True when output is split into numbered size-capped shards."""
        return self.shard_rows is not None or self.shard_chars is not None

    def shard_path(self, shard_index: int) -> Path:
        """Path of the ``shard_index``-th output shard (1-based numbering)."""
        name = self.export_path.name
        suffix_chain = "".join(self.export_path.suffixes)
        stem = name[: len(name) - len(suffix_chain)] if suffix_chain else name
        return self.export_path.with_name(f"{stem}-{shard_index:05d}{suffix_chain}")

    def _open(self, path: Path) -> IO[str]:
        from repro.formats.sharded import open_shard

        return open_shard(path, "w")

    # ------------------------------------------------------------------
    def export(self, dataset: NestedDataset) -> Path:
        """Write the dataset and return the first path actually written.

        For a monolithic export that is ``export_path`` itself; for a sharded
        exporter it is the first numbered shard (``export_path`` is then a
        naming template, never a file on disk).
        """
        return self.export_stream(iter(dataset))[0]

    def export_stream(self, rows: Iterable[dict]) -> list[Path]:
        """Stream rows to disk, returning every path written.

        Rows are stripped of internal bookkeeping fields and explicitly
        sanitised (one :class:`~repro.core.serialization.SerializationWarning`
        per export names any keys whose values were not JSON-safe).
        """
        self.export_path.parent.mkdir(parents=True, exist_ok=True)
        sanitizer = JsonSanitizer()
        stripped = (
            strip_internal_fields(row, keep_stats=self.keep_stats) for row in rows
        )
        if self.export_format == "json":
            paths = [self._write_json_array(stripped, sanitizer)]
        elif self.sharded:
            paths = self._write_shards(stripped, sanitizer)
        else:
            with self._open(self.export_path) as handle:
                for row in stripped:
                    handle.write(self._encode(row, sanitizer) + "\n")
            paths = [self.export_path]
        sanitizer.warn(f"export {self.export_path}")
        return paths

    def _encode(self, row: dict, sanitizer: JsonSanitizer) -> str:
        if self.export_format == "txt":
            return str(row.get(Fields.text, ""))
        return sanitizer.dumps(row, ensure_ascii=False)

    def _write_shards(self, rows: Iterator[dict], sanitizer: JsonSanitizer) -> list[Path]:
        paths: list[Path] = []
        handle: IO[str] | None = None
        rows_in_shard = 0
        chars_in_shard = 0
        try:
            for row in rows:
                if handle is None:
                    paths.append(self.shard_path(len(paths) + 1))
                    handle = self._open(paths[-1])
                    rows_in_shard = chars_in_shard = 0
                line = self._encode(row, sanitizer)
                handle.write(line + "\n")
                rows_in_shard += 1
                chars_in_shard += len(line) + 1
                if (self.shard_rows is not None and rows_in_shard >= self.shard_rows) or (
                    self.shard_chars is not None and chars_in_shard >= self.shard_chars
                ):
                    handle.close()
                    handle = None
            if handle is None and not paths:
                # an empty stream still produces one (empty) shard so the
                # export location is never silently missing
                paths.append(self.shard_path(1))
                handle = self._open(paths[-1])
        finally:
            if handle is not None:
                handle.close()
        # drop stale higher-numbered shards from a previous (larger) export:
        # consumers load the whole directory/glob, so leftovers would silently
        # concatenate old rows with the fresh output
        stale_index = len(paths) + 1
        while True:
            stale = self.shard_path(stale_index)
            if not stale.exists():
                break
            stale.unlink()
            stale_index += 1
        return paths

    def _write_json_array(self, rows: Iterator[dict], sanitizer: JsonSanitizer) -> Path:
        """Stream a pretty-printed JSON array without materialising the rows.

        Byte-identical to ``json.dumps(list(rows), ensure_ascii=False,
        indent=2)``: each element is encoded independently and re-indented
        under the array.
        """
        with self._open(self.export_path) as handle:
            first = True
            for row in rows:
                handle.write("[\n" if first else ",\n")
                first = False
                encoded = sanitizer.dumps(row, ensure_ascii=False, indent=2)
                handle.write("\n".join("  " + line for line in encoded.splitlines()))
            handle.write("[]" if first else "\n]")
        return self.export_path
