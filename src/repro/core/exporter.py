"""Exporter: write processed datasets back to disk (jsonl / json / txt)."""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.dataset import NestedDataset
from repro.core.errors import ReproError
from repro.core.sample import Fields, strip_internal_fields


class Exporter:
    """Export a processed dataset to a target file.

    ``export_format`` is inferred from the target suffix when not given;
    ``keep_stats`` controls whether the per-sample stats column survives in
    the exported records.
    """

    SUPPORTED = ("jsonl", "json", "txt")

    def __init__(
        self,
        export_path: str | Path,
        export_format: str | None = None,
        keep_stats: bool = False,
    ):
        self.export_path = Path(export_path)
        if export_format is None:
            suffix = self.export_path.suffix.lstrip(".")
            export_format = suffix if suffix in self.SUPPORTED else "jsonl"
        if export_format not in self.SUPPORTED:
            raise ReproError(
                f"unsupported export format {export_format!r}; choose from {self.SUPPORTED}"
            )
        self.export_format = export_format
        self.keep_stats = keep_stats

    def export(self, dataset: NestedDataset) -> Path:
        """Write the dataset and return the output path."""
        self.export_path.parent.mkdir(parents=True, exist_ok=True)
        rows = [strip_internal_fields(row, keep_stats=self.keep_stats) for row in dataset]
        if self.export_format == "jsonl":
            with self.export_path.open("w", encoding="utf-8") as handle:
                for row in rows:
                    handle.write(json.dumps(row, ensure_ascii=False, default=repr) + "\n")
        elif self.export_format == "json":
            self.export_path.write_text(
                json.dumps(rows, ensure_ascii=False, indent=2, default=repr), encoding="utf-8"
            )
        else:  # txt
            with self.export_path.open("w", encoding="utf-8") as handle:
                for row in rows:
                    handle.write(str(row.get(Fields.text, "")) + "\n")
        return self.export_path
