"""Fault tolerance: error policies, retry/backoff, quarantine and accounting.

A production corpus run must survive three failure classes that a clean-room
benchmark never sees: *poison rows* (one malformed record crashing an
operator), *transient faults* (an op or I/O path that succeeds on retry) and
*infrastructure faults* (a worker process dying or hanging mid-dispatch).
This module provides the shared vocabulary every engine path uses to contain
them:

* :class:`ErrorPolicy` — the user-facing knob set (``on_error`` =
  ``raise`` | ``skip`` | ``quarantine``, plus ``max_retries`` / ``backoff_s``
  / ``task_timeout_s`` / ``max_pool_rebuilds``), threaded from
  :class:`repro.core.config.RecipeConfig` through the fluent API, the CLI and
  both executors.
* :func:`run_op_with_policy` — the engine-side wrapper around ``op.run``:
  retry with capped exponential backoff, then (under a lenient policy)
  per-row isolation for Mappers/Filters so one poison row never takes its
  batch down, or a recorded degradation-skip for dataset-level ops.
* :class:`QuarantineWriter` — the ``quarantine-00001.jsonl.gz`` export of
  dropped rows (payload + op name + exception repr + shard id + row index).
* :class:`FaultTracker` — the counters behind the report's ``faults``
  section; every retry, rebuild, quarantine and degradation is accounted.

Operators are lint-certified pure functions of their config (see
``docs/linting.md``), which is what makes retrying and per-row replay safe:
re-running an op over the same rows cannot produce different results or
observable side effects.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable

from repro.core.base_op import Filter, Mapper
from repro.core.dataset import NestedDataset, _stable_hash
from repro.core.errors import ConfigError, OpExecutionError
from repro.core.serialization import JsonSanitizer

logger = logging.getLogger(__name__)

#: the legal values of ``on_error`` (recipe key / ``--on-error`` flag)
ERROR_POLICIES = ("raise", "skip", "quarantine")

#: upper bound on any single backoff sleep, so exponential growth stays sane
BACKOFF_CAP_S = 2.0

#: bounded length of the tracker's detailed event log
MAX_FAULT_EVENTS = 50

#: how many rows the failing-row probe inspects before giving up
ROW_PROBE_LIMIT = 2048


class DegradedExecutionWarning(UserWarning):
    """Issued when the worker pool gives up on parallelism and runs serial.

    Emitted after ``max_pool_rebuilds`` pool reconstructions failed to
    produce a healthy pool: the run continues in-process instead of
    aborting, at serial speed.
    """


@dataclass(frozen=True)
class ErrorPolicy:
    """How the engines react to operator and worker failures.

    The default (``raise`` with zero retries and no dispatch timeout) is the
    exact historical behaviour: the first error aborts the run, and pool
    dispatches block indefinitely.  Every field maps 1:1 onto a
    :class:`repro.core.config.RecipeConfig` key of the same name.
    """

    #: ``raise`` aborts on persistent failure; ``skip`` drops the failing
    #: rows/shards; ``quarantine`` drops them *and* writes them to the
    #: quarantine export for inspection and replay
    on_error: str = "raise"
    #: retries per failing unit (op call, row, shard) before the policy verdict
    max_retries: int = 0
    #: base of the capped exponential backoff between retries (seconds)
    backoff_s: float = 0.05
    #: per-dispatch worker-pool timeout; ``None`` blocks forever (no
    #: supervision, zero overhead) — a dead or hung worker is detected only
    #: when this is set
    task_timeout_s: float | None = None
    #: pool reconstructions before degrading to serial in-parent execution
    max_pool_rebuilds: int = 2

    def __post_init__(self) -> None:
        if self.on_error not in ERROR_POLICIES:
            raise ConfigError(
                f"on_error must be one of {ERROR_POLICIES}, got {self.on_error!r}"
            )

    @property
    def lenient(self) -> bool:
        """True when persistent failures drop data instead of aborting."""
        return self.on_error != "raise"

    def backoff(self, attempt: int) -> float:
        """Backoff delay before retry number ``attempt`` (0-based), capped."""
        if self.backoff_s <= 0:
            return 0.0
        return min(self.backoff_s * (2 ** attempt), BACKOFF_CAP_S)

    def sleep(self, attempt: int) -> None:
        """Sleep the capped exponential backoff for retry ``attempt``."""
        delay = self.backoff(attempt)
        if delay > 0:
            time.sleep(delay)

    @classmethod
    def from_config(cls, config: Any) -> "ErrorPolicy":
        """Build the policy from any object carrying the recipe's fault keys."""
        return cls(
            on_error=getattr(config, "on_error", "raise"),
            max_retries=int(getattr(config, "max_retries", 0)),
            backoff_s=float(getattr(config, "backoff_s", 0.05)),
            task_timeout_s=getattr(config, "task_timeout_s", None),
            max_pool_rebuilds=int(getattr(config, "max_pool_rebuilds", 2)),
        )

    def as_dict(self) -> dict:
        """Plain-dict view (embedded in the report's ``faults`` section)."""
        return {
            "on_error": self.on_error,
            "max_retries": self.max_retries,
            "backoff_s": self.backoff_s,
            "task_timeout_s": self.task_timeout_s,
            "max_pool_rebuilds": self.max_pool_rebuilds,
        }


class FaultTracker:
    """Mutable per-run accounting of every fault-tolerance action.

    One tracker lives for the duration of one executor run; its
    :meth:`as_dict` becomes the ``faults`` section of the
    :class:`repro.core.report.RunReport`.  The worker pool shares the same
    instance (via ``WorkerPool.fault_tracker``) so pool rebuilds and
    degradations land in the same ledger as row quarantines.
    """

    def __init__(self) -> None:
        #: retry attempts across every granularity (op call, row, shard)
        self.retries = 0
        #: worker-pool reconstructions after a dead/hung-worker detection
        self.pool_rebuilds = 0
        #: times an engine gave up on an op or on parallelism and continued
        self.degradations = 0
        #: rows dropped to the quarantine export
        self.quarantined_rows = 0
        #: rows silently dropped under ``on_error=skip``
        self.skipped_rows = 0
        #: whole shards dropped (to quarantine or skipped) in streaming mode
        self.quarantined_shards = 0
        #: op name -> number of exceptions observed from that op
        self.op_errors: dict[str, int] = {}
        #: bounded detail log of individual fault events
        self.events: list[dict] = []

    # ------------------------------------------------------------------
    @property
    def total_faults(self) -> int:
        """Monotonic sum of every counter — cheap change detection.

        The executors snapshot this before an op and skip the cache save
        when it moved: results shaped by fault handling must never poison
        the clean-run cache.
        """
        return (
            self.retries
            + self.pool_rebuilds
            + self.degradations
            + self.quarantined_rows
            + self.skipped_rows
            + self.quarantined_shards
            + sum(self.op_errors.values())
        )

    def _event(self, kind: str, detail: str, **extra: Any) -> None:
        if len(self.events) < MAX_FAULT_EVENTS:
            self.events.append({"kind": kind, "detail": detail, **extra})

    # ------------------------------------------------------------------
    def record_op_error(
        self, op_name: str, error: BaseException, shard_id: str | None = None
    ) -> None:
        """Account one exception raised by (or while running) ``op_name``."""
        self.op_errors[op_name] = self.op_errors.get(op_name, 0) + 1
        self._event("op_error", repr(error), op=op_name, shard=shard_id)

    def record_retry(self, op_name: str, shard_id: str | None = None) -> None:
        """Account one retry attempt for ``op_name``."""
        self.retries += 1
        self._event("retry", f"retrying {op_name}", op=op_name, shard=shard_id)

    def record_rebuild(self, detail: str) -> None:
        """Account one worker-pool reconstruction."""
        self.pool_rebuilds += 1
        self._event("pool_rebuild", detail)

    def record_degradation(self, detail: str) -> None:
        """Account one degradation (op skipped, or pool fell back to serial)."""
        self.degradations += 1
        self._event("degradation", detail)
        logger.warning("degraded execution: %s", detail)

    def record_dropped_rows(
        self, op_name: str, count: int, quarantined: bool, shard_id: str | None = None
    ) -> None:
        """Account rows dropped by the policy (quarantined or skipped)."""
        if quarantined:
            self.quarantined_rows += count
        else:
            self.skipped_rows += count
        self._event(
            "quarantine_rows" if quarantined else "skip_rows",
            f"{count} row(s) dropped at {op_name}",
            op=op_name,
            shard=shard_id,
        )

    def record_dropped_shard(self, shard_id: str | None, rows: int) -> None:
        """Account one whole shard dropped after persistent failure."""
        self.quarantined_shards += 1
        self._event("quarantine_shard", f"shard dropped ({rows} rows)", shard=shard_id)

    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """JSON-safe view — the ``faults`` section of the run report."""
        return {
            "retries": self.retries,
            "pool_rebuilds": self.pool_rebuilds,
            "degradations": self.degradations,
            "quarantined_rows": self.quarantined_rows,
            "skipped_rows": self.skipped_rows,
            "quarantined_shards": self.quarantined_shards,
            "op_errors": dict(self.op_errors),
            "events": list(self.events),
        }


class QuarantineWriter:
    """Rolling ``quarantine-00001.jsonl.gz`` export of policy-dropped rows.

    Each line is one JSON entry: the row payload plus the op name, the
    exception repr, the shard id and the row index within its shard/dataset,
    which is everything needed to replay the failure with
    ``--on-error raise``.  Files roll at ``rows_per_file`` entries with the
    same numbered naming scheme as output shards, and are written through the
    deterministic gzip writer so identical failures produce identical bytes.
    """

    FILE_TEMPLATE = "quarantine-{index:05d}.jsonl.gz"

    def __init__(self, directory: str | Path, rows_per_file: int = 10000):
        self.directory = Path(directory)
        self.rows_per_file = rows_per_file
        #: quarantine files written so far, in order
        self.paths: list[Path] = []
        #: total entries written
        self.count = 0
        self._handle: Any = None
        self._rows_in_file = 0
        self._sanitizer = JsonSanitizer()

    def _roll(self) -> None:
        from repro.formats.sharded import open_shard

        if self._handle is not None:
            self._handle.close()
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.directory / self.FILE_TEMPLATE.format(index=len(self.paths) + 1)
        self._handle = open_shard(path, "w")
        self._rows_in_file = 0
        self.paths.append(path)

    def write(
        self,
        row: dict,
        op_name: str,
        error: BaseException | str,
        shard_id: str | None = None,
        row_index: int | None = None,
    ) -> None:
        """Append one dropped row with its full failure context."""
        if self._handle is None or self._rows_in_file >= self.rows_per_file:
            self._roll()
        entry = {
            "op": op_name,
            "error": error if isinstance(error, str) else repr(error),
            "shard": shard_id,
            "row_index": row_index,
            "row": row,
        }
        self._handle.write(self._sanitizer.dumps(entry, ensure_ascii=False) + "\n")
        self._rows_in_file += 1
        self.count += 1

    def write_rows(
        self,
        rows: Iterable[dict],
        op_name: str,
        error: BaseException | str,
        shard_id: str | None = None,
    ) -> int:
        """Append every row of a dropped shard; returns the count written."""
        written = 0
        for index, row in enumerate(rows):
            self.write(row, op_name, error, shard_id=shard_id, row_index=index)
            written += 1
        return written

    def close(self) -> None:
        """Flush and close the current quarantine file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._sanitizer.warn("quarantine export")


# ----------------------------------------------------------------------
# Policy-aware op execution
# ----------------------------------------------------------------------
def describe_failure(
    op_name: str,
    error: BaseException,
    shard_id: str | None = None,
    row_index: int | None = None,
) -> str:
    """One-line failure message carrying op name, shard id and row index."""
    where = f"operator {op_name!r}"
    if shard_id is not None:
        where += f" on shard {shard_id}"
    message = f"{where} failed: {error!r}"
    if row_index is not None:
        message += f" (first failing row index: {row_index})"
    return message + (
        "; reproduce with --on-error raise"
        + (" on this shard's input" if shard_id is not None else "")
    )


def _probe_failing_row(op: Any, dataset: NestedDataset) -> int | None:
    """Index of the first row whose per-row execution fails, or ``None``.

    Only used on the fatal (``raise``) path to enrich the error message;
    bounded by :data:`ROW_PROBE_LIMIT` so a batched-only failure over a huge
    dataset cannot stall the abort.
    """
    limit = min(len(dataset), ROW_PROBE_LIMIT)
    for index in range(limit):
        try:
            _run_single_row(op, dict(dataset[index]))
        except Exception:
            return index
    return None


def _run_single_row(op: Any, row: dict) -> tuple[bool, dict | None]:
    """Run one row through a Mapper or Filter; returns ``(keep, row_out)``."""
    if isinstance(op, Mapper):
        return True, op.process(row)
    if isinstance(op, Filter):
        row = op.compute_stats(row)
        return bool(op.process(row)), row
    # dataset-level ops have no per-row stage; re-raise by running nothing
    raise TypeError(f"{type(op).__name__} has no per-row execution path")


def _isolate_rows(
    op: Any,
    dataset: NestedDataset,
    policy: ErrorPolicy,
    tracker: FaultTracker,
    quarantine: QuarantineWriter | None,
    tracer: Any = None,
    shard_id: str | None = None,
) -> NestedDataset:
    """Re-run a failed Mapper/Filter row by row, dropping only poison rows.

    Every batched op has an equivalence-tested per-row fallback, so replaying
    the batch one row at a time is semantically identical — surviving rows
    keep their order, and only the rows that themselves raise (after
    ``max_retries`` per-row retries) are dropped or quarantined.  The output
    fingerprint is salted with the dropped indices so downstream cache keys
    can never collide with a clean run's.
    """
    quarantined = policy.on_error == "quarantine"
    survivors: list[dict] = []
    stat_rows: list[dict] = []
    source_rows: list[dict] = []
    dropped: list[int] = []
    for index in range(len(dataset)):
        row_in = dict(dataset[index])
        attempt = 0
        while True:
            try:
                keep, row_out = _run_single_row(op, dict(row_in))
                break
            except Exception as error:
                tracker.record_op_error(op.name, error, shard_id)
                if attempt < policy.max_retries:
                    tracker.record_retry(op.name, shard_id)
                    policy.sleep(attempt)
                    attempt += 1
                    continue
                keep, row_out = False, None
                dropped.append(index)
                tracker.record_dropped_rows(op.name, 1, quarantined, shard_id)
                if quarantine is not None and quarantined:
                    quarantine.write(
                        row_in, op.name, error, shard_id=shard_id, row_index=index
                    )
                break
        if row_out is not None:
            stat_rows.append(row_out)
            source_rows.append(row_in)
            if keep:
                survivors.append(row_out)
    fingerprint = dataset.derive_fingerprint(op.name, op.config())
    if dropped:
        fingerprint = _stable_hash({"parent": fingerprint, "fault_dropped": dropped})
    result = NestedDataset.from_list(survivors, fingerprint=fingerprint)
    if tracer is not None:
        if isinstance(op, Filter):
            tracer.trace_filter(op.name, NestedDataset.from_list(stat_rows), result)
        else:
            tracer.trace_mapper(
                op.name, NestedDataset.from_list(source_rows), result, op.text_key
            )
    return result


def run_op_with_policy(
    op: Any,
    dataset: NestedDataset,
    policy: ErrorPolicy,
    tracker: FaultTracker,
    quarantine: QuarantineWriter | None = None,
    tracer: Any = None,
    pool: Any = None,
    shard_id: str | None = None,
) -> NestedDataset:
    """Run one operator under the error policy; the engines' single entry.

    The happy path is a plain ``op.run`` call — one ``try`` frame of
    overhead.  On failure the call is retried ``max_retries`` times with
    capped exponential backoff; a persistent failure then either aborts with
    a fully-contextualised :class:`repro.core.errors.OpExecutionError`
    (``raise``), or under a lenient policy falls back to per-row isolation
    (Mappers/Filters) or a recorded degradation-skip (dataset-level ops,
    whose global stage cannot be row-isolated).
    """
    kwargs: dict = {"tracer": tracer}
    if pool is not None:
        kwargs["pool"] = pool
    attempt = 0
    while True:
        try:
            return op.run(dataset, **kwargs)
        except Exception as error:
            tracker.record_op_error(op.name, error, shard_id)
            if attempt < policy.max_retries:
                tracker.record_retry(op.name, shard_id)
                policy.sleep(attempt)
                attempt += 1
                continue
            if not policy.lenient:
                row_index = (
                    _probe_failing_row(op, dataset)
                    if isinstance(op, (Mapper, Filter))
                    else None
                )
                raise OpExecutionError(
                    describe_failure(op.name, error, shard_id, row_index),
                    op_name=op.name,
                    shard_id=shard_id,
                    row_index=row_index,
                ) from error
            if isinstance(op, (Mapper, Filter)):
                logger.warning(
                    "operator %r failed persistently (%r); isolating rows",
                    op.name,
                    error,
                )
                return _isolate_rows(
                    op, dataset, policy, tracker, quarantine, tracer, shard_id
                )
            # Deduplicators/Selectors decide globally; skipping the op keeps
            # every row, which is the conservative lenient outcome
            tracker.record_degradation(
                f"dataset-level op {op.name!r} skipped after persistent failure: {error!r}"
            )
            return NestedDataset.from_list(
                dataset.to_list(),
                fingerprint=_stable_hash(
                    {"parent": dataset.fingerprint, "fault_skipped_op": op.name}
                ),
            )


def retry_call(
    function: Any,
    policy: ErrorPolicy,
    tracker: FaultTracker,
    op_name: str,
    shard_id: str | None = None,
) -> Any:
    """Call ``function()`` with the policy's retry/backoff loop.

    Used for non-op engine stages (e.g. the streaming global resolve).  The
    final failure is re-raised unwrapped, so the caller applies its own
    policy verdict.
    """
    attempt = 0
    while True:
        try:
            return function()
        except Exception as error:
            tracker.record_op_error(op_name, error, shard_id)
            if attempt >= policy.max_retries:
                raise
            tracker.record_retry(op_name, shard_id)
            policy.sleep(attempt)
            attempt += 1


__all__ = [
    "BACKOFF_CAP_S",
    "DegradedExecutionWarning",
    "ERROR_POLICIES",
    "ErrorPolicy",
    "FaultTracker",
    "MAX_FAULT_EVENTS",
    "QuarantineWriter",
    "describe_failure",
    "retry_call",
    "run_op_with_policy",
]
