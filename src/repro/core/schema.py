"""Typed operator parameter schemas: the contract behind construction-time validation.

Every operator class exposes an :class:`OpSchema` (via ``OP.schema()`` or
:func:`schema_for`) describing its constructor parameters: name, accepted
types, default, numeric bounds, choices and a one-line doc.  Most of the
schema is derived automatically from the constructor signature and its type
annotations; operators refine it declaratively through a ``PARAM_SPECS``
class attribute holding per-parameter overrides (bounds, choices, docs)::

    class SpecialCharactersFilter(Filter):
        PARAM_SPECS = {
            "max_ratio": {"min_value": 0.0, "max_value": 1.0,
                          "doc": "maximum special-character ratio"},
        }

The schemas power four surfaces at once:

* **construction-time validation** — the fluent :class:`repro.api.Pipeline`
  builders and ``repro validate-recipe`` reject bad parameters *before*
  execution, reporting every offending value with its allowed range;
* **better errors** — unknown parameter names get "did you mean" suggestions;
* **the generated ops catalog** — ``docs/ops_catalog.md`` renders each
  operator's typed parameter table from its schema;
* **keyword-argument builders** — the Pipeline's ``apply`` / ``filter`` /
  ``dedup`` / ``select`` verify both the operator category and its kwargs.
"""

from __future__ import annotations

import inspect
import sys
from dataclasses import dataclass
from typing import Any

from repro.core.errors import SchemaError
from repro.core.registry import OPERATORS, suggestion_hint, unknown_name_message

#: sentinel for "no default declared" (the parameter is required)
_REQUIRED = object()

#: constructor parameters every OP accepts (execution/addressing knobs, kept
#: out of the per-op tables but accepted by validation)
COMMON_PARAMS: dict[str, str] = {"text_key": "str", "batch_size": "int"}

#: annotation base types the checker understands; anything else is ``any``
_KNOWN_TYPES = ("bool", "int", "float", "str", "list", "tuple", "dict")


def _parse_annotation(annotation: Any) -> tuple[tuple[str, ...], bool]:
    """Return ``(accepted_type_names, nullable)`` for a constructor annotation.

    Annotations are strings under ``from __future__ import annotations``
    (e.g. ``"str | list[str]"``, ``"int | None"``); non-string annotations
    fall back to their type name.  Unknown names widen to ``any``.
    """
    if annotation is inspect.Parameter.empty:
        return (), False
    if not isinstance(annotation, str):
        annotation = getattr(annotation, "__name__", str(annotation))
    names: list[str] = []
    nullable = False
    for token in str(annotation).split("|"):
        token = token.strip()
        base = token.split("[", 1)[0].strip()
        if base in ("None", "NoneType"):
            nullable = True
        elif base in _KNOWN_TYPES:
            names.append(base)
        elif base:
            return ("any",), nullable
    return tuple(names) or ("any",), nullable


def _type_ok(value: Any, names: tuple[str, ...]) -> bool:
    """True when ``value`` is acceptable for any of the declared type names."""
    for name in names:
        if name == "any":
            return True
        if name == "bool" and isinstance(value, bool):
            return True
        if isinstance(value, bool):
            # bool is an int subclass, but "3 workers: true" is always a bug
            continue
        if name == "int" and isinstance(value, int):
            return True
        if name == "float" and isinstance(value, (int, float)):
            return True
        if name == "str" and isinstance(value, str):
            return True
        if name in ("list", "tuple") and isinstance(value, (list, tuple)):
            return True
        if name == "dict" and isinstance(value, dict):
            return True
    return False


@dataclass(frozen=True)
class ParamSpec:
    """Typed description of one operator constructor parameter."""

    name: str
    types: tuple[str, ...] = ("any",)
    default: Any = _REQUIRED
    nullable: bool = False
    min_value: float | None = None
    max_value: float | None = None
    choices: tuple[Any, ...] | None = None
    doc: str = ""

    @property
    def required(self) -> bool:
        """True when the constructor declares no default for this parameter."""
        return self.default is _REQUIRED

    @property
    def type_label(self) -> str:
        """Human-readable type, e.g. ``"str | list"`` or ``"int | None"``."""
        label = " | ".join(self.types)
        if self.nullable:
            label += " | None"
        return label

    def describe(self) -> str:
        """The allowed values in one phrase (used by validation errors and docs)."""
        parts = [self.type_label]
        if self.choices is not None:
            parts.append("one of {" + ", ".join(repr(choice) for choice in self.choices) + "}")
        elif self.min_value is not None and self.max_value is not None:
            parts.append(f"in [{self.min_value}, {self.max_value}]")
        elif self.min_value is not None:
            parts.append(f">= {self.min_value}")
        elif self.max_value is not None:
            parts.append(f"<= {self.max_value}")
        return ", ".join(parts)

    def check(self, value: Any) -> str | None:
        """Return an error message for ``value``, or ``None`` when it is valid."""
        if value is None:
            if self.nullable or self.default is None:
                return None
            return f"must not be null (allowed: {self.describe()})"
        if not _type_ok(value, self.types):
            return (
                f"{value!r} has the wrong type {type(value).__name__} "
                f"(allowed: {self.describe()})"
            )
        if self.choices is not None:
            values = value if isinstance(value, (list, tuple)) else (value,)
            for member in values:
                if member not in self.choices:
                    return (
                        f"{member!r} is not an allowed value "
                        f"(allowed: {self.describe()})"
                    )
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            if self.min_value is not None and value < self.min_value:
                return f"{value!r} is below the minimum (allowed: {self.describe()})"
            if self.max_value is not None and value > self.max_value:
                return f"{value!r} is above the maximum (allowed: {self.describe()})"
        return None

    def default_label(self) -> str:
        """Rendered default for docs: ``required`` / ``unbounded`` / ``repr``.

        Any numeric sentinel at (or beyond) ``sys.maxsize`` magnitude —
        ``sys.maxsize``, ``float(sys.maxsize)``, ``±sys.float_info.max`` —
        renders as ``unbounded`` instead of an unreadable huge literal.
        """
        if self.required:
            return "required"
        if (
            isinstance(self.default, (int, float))
            and not isinstance(self.default, bool)
            and abs(self.default) >= sys.maxsize
        ):
            return "unbounded"
        return repr(self.default)


@dataclass(frozen=True)
class SchemaIssue:
    """One schema violation: which op, which parameter, what is wrong."""

    op: str
    param: str
    message: str

    def __str__(self) -> str:
        return f"{self.op}.{self.param}: {self.message}"


@dataclass(frozen=True)
class OpSchema:
    """The full typed parameter schema of one operator class."""

    name: str
    category: str
    summary: str
    params: tuple[ParamSpec, ...]
    common: tuple[ParamSpec, ...] = ()

    def param_names(self) -> list[str]:
        """Every accepted keyword argument, op-specific then common."""
        return [spec.name for spec in self.params + self.common]

    def param(self, name: str) -> ParamSpec | None:
        """Look up one parameter spec by name (op-specific or common)."""
        for spec in self.params + self.common:
            if spec.name == name:
                return spec
        return None

    def effects(self):
        """The op's statically-inferred :class:`EffectSignature`, or ``None``.

        Resolved lazily from the :mod:`repro.tools.dataflow` catalog so the
        schema layer carries the dataflow contract without importing the
        extractor at module load.
        """
        from repro.tools.dataflow import effect_signature

        return effect_signature(self.name)

    def validate(self, params: dict[str, Any]) -> list[SchemaIssue]:
        """Check keyword arguments against this schema; return every violation.

        Unknown parameter names are violations too (op constructors swallow
        them into ``extra_params``, so a typo would otherwise silently revert
        the parameter to its default) and carry close-match suggestions.
        """
        issues: list[SchemaIssue] = []
        known = self.param_names()
        for key, value in params.items():
            spec = self.param(key)
            if spec is None:
                hint = suggestion_hint(key, known, known_label="accepted parameters")
                issues.append(
                    SchemaIssue(self.name, key, f"unknown parameter; {hint}")
                )
                continue
            message = spec.check(value)
            if message is not None:
                issues.append(SchemaIssue(self.name, key, message))
        for spec in self.params:
            if spec.required and spec.name not in params:
                issues.append(
                    SchemaIssue(
                        self.name,
                        spec.name,
                        f"missing required parameter (allowed: {spec.describe()})",
                    )
                )
        return issues


def _doc_summary(cls: type) -> str:
    """First non-empty docstring line of an operator class."""
    for line in (inspect.getdoc(cls) or "").splitlines():
        line = line.strip()
        if line:
            return line
    return ""


def _collected_overrides(cls: type) -> dict[str, dict]:
    """Merge ``PARAM_SPECS`` declarations down the class hierarchy."""
    overrides: dict[str, dict] = {}
    for klass in reversed(cls.__mro__):
        for name, spec in vars(klass).get("PARAM_SPECS", {}).items():
            merged = dict(overrides.get(name, {}))
            merged.update(spec)
            overrides[name] = merged
    return overrides


def schema_for(cls: type, name: str | None = None) -> OpSchema:
    """Build (and cache) the :class:`OpSchema` of an operator class.

    The constructor signature contributes names, defaults and annotated
    types; the class's ``PARAM_SPECS`` overrides contribute bounds, choices
    and per-parameter docs.
    """
    cached = vars(cls).get("_op_schema")
    if cached is not None:
        return cached
    from repro.core.base_op import op_category

    overrides = _collected_overrides(cls)
    params: list[ParamSpec] = []
    common: list[ParamSpec] = []
    try:
        signature = inspect.signature(cls.__init__)
    except (TypeError, ValueError):  # pragma: no cover - builtins only
        signature = None
    if signature is not None:
        for param_name, parameter in signature.parameters.items():
            if param_name == "self" or parameter.kind in (
                inspect.Parameter.VAR_POSITIONAL,
                inspect.Parameter.VAR_KEYWORD,
            ):
                continue
            default = (
                _REQUIRED
                if parameter.default is inspect.Parameter.empty
                else parameter.default
            )
            types, nullable = _parse_annotation(parameter.annotation)
            if not types:
                types = ("any",)
                if default is not _REQUIRED and default is not None:
                    for candidate in _KNOWN_TYPES:
                        if type(default).__name__ == candidate:
                            types = (candidate,)
                            break
                nullable = default is None
            override = overrides.get(param_name, {})
            spec = ParamSpec(
                name=param_name,
                types=tuple(override.get("types", types)),
                default=default,
                nullable=bool(override.get("nullable", nullable or default is None)),
                min_value=override.get("min_value"),
                max_value=override.get("max_value"),
                choices=(
                    tuple(override["choices"]) if "choices" in override else None
                ),
                doc=str(override.get("doc", "")),
            )
            if param_name in COMMON_PARAMS:
                common.append(spec)
            else:
                params.append(spec)
    for param_name, type_name in COMMON_PARAMS.items():
        if not any(spec.name == param_name for spec in common):
            common.append(
                ParamSpec(
                    name=param_name,
                    types=(type_name,),
                    default=None,
                    nullable=True,
                )
            )
    declared = {spec.name for spec in params} | {spec.name for spec in common}
    stray = set(overrides) - declared
    if stray:
        # a typo'd PARAM_SPECS key would otherwise silently drop its bounds
        raise SchemaError(
            f"{cls.__name__}.PARAM_SPECS declares unknown parameter(s) "
            f"{sorted(stray)}; constructor accepts {sorted(declared)}"
        )
    schema = OpSchema(
        name=name or getattr(cls, "_name", cls.__name__),
        category=op_category(cls),
        summary=_doc_summary(cls),
        params=tuple(params),
        common=tuple(common),
    )
    try:
        cls._op_schema = schema
    except (AttributeError, TypeError):  # pragma: no cover - frozen classes
        pass
    return schema


def validate_op_params(name: str, params: dict[str, Any]) -> list[SchemaIssue]:
    """Validate one operator's keyword arguments against its schema.

    An unknown operator name is itself reported as a single issue (with
    "did you mean" suggestions) instead of raising, so recipe validation can
    keep going and report everything wrong in one pass.
    """
    if name not in OPERATORS:
        return [
            SchemaIssue(
                name,
                "(op)",
                unknown_name_message("operators name", name, OPERATORS.modules),
            )
        ]
    return schema_for(OPERATORS.get(name), name=name).validate(params)


def validate_process(process: list) -> list[SchemaIssue]:
    """Validate every entry of a recipe ``process`` list; return all issues."""
    from repro.ops import split_process_entry

    issues: list[SchemaIssue] = []
    for entry in process:
        try:
            name, params = split_process_entry(entry)
        except ValueError as error:
            issues.append(SchemaIssue("(process)", "(entry)", str(error)))
            continue
        issues.extend(validate_op_params(name, params))
    return issues


__all__ = [
    "COMMON_PARAMS",
    "OpSchema",
    "ParamSpec",
    "SchemaIssue",
    "schema_for",
    "validate_op_params",
    "validate_process",
]
