"""End-to-end configurable data recipes (Sec. 5.1 of the paper).

A *data recipe* is the full configuration of a processing run: where the data
comes from, which operators run with which hyper-parameters, where results and
traces go, and which optimizations (cache, checkpoints, OP fusion) are active.
Recipes can be defined as plain dictionaries, YAML files or JSON files, and are
validated against the operator registry before execution.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.core.errors import ConfigError
from repro.core.registry import OPERATORS

try:  # PyYAML is optional; JSON/dict recipes always work.
    import yaml
except ImportError:  # pragma: no cover - exercised only without PyYAML
    yaml = None


@dataclass
class RecipeConfig:
    """Validated configuration of one data-processing run."""

    project_name: str = "repro-project"
    dataset_path: str | None = None
    export_path: str | None = None
    text_keys: list[str] = field(default_factory=lambda: ["text"])
    #: number of worker processes; ``np > 1`` routes Mapper/Filter stages
    #: through the persistent :class:`repro.parallel.WorkerPool`
    np: int = 1
    #: rows per batch of the batched columnar op path; ``None`` keeps each
    #: op's own setting (execution tuning only — results are identical)
    batch_size: int | None = None
    #: run the pipeline shard-by-shard with bounded memory (``Executor.
    #: run_streaming`` / CLI ``--stream``); results match the in-memory path
    stream: bool = False
    #: shard budget of the streaming run mode: a shard closes when it reaches
    #: ``max_shard_rows`` rows or ``max_shard_chars`` text characters,
    #: whichever comes first (``None`` = unset; when both are unset the
    #: streaming engine applies its default row budget)
    max_shard_rows: int | None = None
    max_shard_chars: int | None = None
    #: memory budget in bytes for the ``mode="auto"`` execution planner
    #: (:mod:`repro.core.planner`); ``None`` detects from the host's free
    #: memory at plan time
    memory_budget: int | None = None
    process: list = field(default_factory=list)

    # optimizations & tooling
    use_cache: bool = False
    cache_dir: str | None = None
    cache_compression: str = "none"
    use_checkpoint: bool = False
    checkpoint_dir: str | None = None
    op_fusion: bool = False
    open_tracer: bool = False
    trace_num: int = 10
    work_dir: str = "./outputs"
    keep_stats_in_export: bool = False
    seed: int = 42

    # static dataflow verification (see repro.tools.dataflow and docs/dataflow.md)
    #: fail ``Executor.execute`` on any dataflow finding instead of warning
    strict_dataflow: bool = False
    #: user fields the input data is declared to carry (``meta.lang`` style
    #: dotted paths); declaring any opts user-field reads into closed-world
    #: checking — undefined reads then become errors with suggestions
    input_fields: list[str] | None = None
    #: dataflow findings to suppress: ``rule`` or ``rule@step`` entries
    #: (1-based step index), e.g. ``["dead-write", "order-hazard@3"]``
    dataflow_ignore: list[str] = field(default_factory=list)

    # fault tolerance (see repro.core.faults and docs/robustness.md)
    #: what to do when an operator fails persistently: ``raise`` aborts,
    #: ``skip`` drops the failing rows/shards, ``quarantine`` drops them and
    #: writes them to ``<work_dir>/quarantine/quarantine-*.jsonl.gz``
    on_error: str = "raise"
    #: retries per failing unit (op call, row, shard) before the verdict
    max_retries: int = 0
    #: base of the capped exponential backoff between retries (seconds)
    backoff_s: float = 0.05
    #: per-dispatch worker-pool timeout in seconds; ``None`` disables
    #: supervision (dead/hung workers are then never detected)
    task_timeout_s: float | None = None
    #: worker-pool reconstructions before degrading to serial execution
    max_pool_rebuilds: int = 2

    def op_names(self) -> list[str]:
        """Names of the operators in the process list, in order."""
        names = []
        for entry in self.process:
            if isinstance(entry, str):
                names.append(entry)
            elif isinstance(entry, dict) and len(entry) == 1:
                names.append(next(iter(entry)))
            else:
                raise ConfigError(f"invalid process entry: {entry!r}")
        return names

    def as_dict(self) -> dict:
        """Plain-dict view of the recipe (for saving refined recipes)."""
        return {
            "project_name": self.project_name,
            "dataset_path": self.dataset_path,
            "export_path": self.export_path,
            "text_keys": list(self.text_keys),
            "np": self.np,
            "batch_size": self.batch_size,
            "stream": self.stream,
            "max_shard_rows": self.max_shard_rows,
            "max_shard_chars": self.max_shard_chars,
            "memory_budget": self.memory_budget,
            "process": list(self.process),
            "use_cache": self.use_cache,
            "cache_dir": self.cache_dir,
            "cache_compression": self.cache_compression,
            "use_checkpoint": self.use_checkpoint,
            "checkpoint_dir": self.checkpoint_dir,
            "op_fusion": self.op_fusion,
            "open_tracer": self.open_tracer,
            "trace_num": self.trace_num,
            "work_dir": self.work_dir,
            "keep_stats_in_export": self.keep_stats_in_export,
            "seed": self.seed,
            "strict_dataflow": self.strict_dataflow,
            "input_fields": list(self.input_fields) if self.input_fields is not None else None,
            "dataflow_ignore": list(self.dataflow_ignore),
            "on_error": self.on_error,
            "max_retries": self.max_retries,
            "backoff_s": self.backoff_s,
            "task_timeout_s": self.task_timeout_s,
            "max_pool_rebuilds": self.max_pool_rebuilds,
        }


#: every key a recipe mapping may carry (the public contract of
#: :func:`load_config` and of :meth:`repro.api.Pipeline.options`)
KNOWN_RECIPE_KEYS = frozenset(RecipeConfig().as_dict().keys())
_KNOWN_KEYS = KNOWN_RECIPE_KEYS


def validate_config(config: RecipeConfig) -> RecipeConfig:
    """Check that all operators exist and their parameters look sane."""
    for entry in config.process:
        if isinstance(entry, str):
            name, params = entry, {}
        elif isinstance(entry, dict) and len(entry) == 1:
            name, params = next(iter(entry.items()))
            params = params or {}
        else:
            raise ConfigError(f"invalid process entry: {entry!r}")
        if name not in OPERATORS:
            raise ConfigError(f"unknown operator {name!r} in recipe {config.project_name!r}")
        if not isinstance(params, dict):
            raise ConfigError(f"parameters of operator {name!r} must be a mapping")
    if not isinstance(config.np, int) or isinstance(config.np, bool) or config.np < 1:
        raise ConfigError("np (number of worker processes) must be an integer >= 1")
    if config.batch_size is not None and (
        not isinstance(config.batch_size, int)
        or isinstance(config.batch_size, bool)
        or config.batch_size < 1
    ):
        raise ConfigError("batch_size must be an integer >= 1 (or null)")
    for knob in ("max_shard_rows", "max_shard_chars", "memory_budget"):
        value = getattr(config, knob)
        if value is not None and (
            not isinstance(value, int) or isinstance(value, bool) or value < 1
        ):
            raise ConfigError(f"{knob} must be an integer >= 1 (or null)")
    if not isinstance(config.stream, bool):
        raise ConfigError("stream must be a boolean")
    from repro.core.faults import ERROR_POLICIES

    if config.on_error not in ERROR_POLICIES:
        raise ConfigError(
            f"on_error must be one of {sorted(ERROR_POLICIES)}, got {config.on_error!r}"
        )
    for knob in ("max_retries", "max_pool_rebuilds"):
        value = getattr(config, knob)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise ConfigError(f"{knob} must be an integer >= 0")
    if (
        not isinstance(config.backoff_s, (int, float))
        or isinstance(config.backoff_s, bool)
        or config.backoff_s < 0
    ):
        raise ConfigError("backoff_s must be a number >= 0")
    if config.task_timeout_s is not None and (
        not isinstance(config.task_timeout_s, (int, float))
        or isinstance(config.task_timeout_s, bool)
        or config.task_timeout_s <= 0
    ):
        raise ConfigError("task_timeout_s must be a number > 0 (or null)")
    if not isinstance(config.strict_dataflow, bool):
        raise ConfigError("strict_dataflow must be a boolean")
    if config.input_fields is not None and (
        not isinstance(config.input_fields, list)
        or any(not isinstance(name, str) or not name for name in config.input_fields)
    ):
        raise ConfigError("input_fields must be a list of dotted field paths (or null)")
    if not isinstance(config.dataflow_ignore, list) or any(
        not isinstance(entry, str) for entry in config.dataflow_ignore
    ):
        raise ConfigError("dataflow_ignore must be a list of 'rule' or 'rule@step' strings")
    if config.dataflow_ignore:
        from repro.core.registry import unknown_name_message
        from repro.tools.dataflow.checker import DATAFLOW_RULES

        for entry in config.dataflow_ignore:
            rule, _, step = entry.partition("@")
            if rule not in DATAFLOW_RULES:
                raise ConfigError(
                    "dataflow_ignore: "
                    + unknown_name_message("dataflow rule", rule, DATAFLOW_RULES)
                )
            if step and not step.isdigit():
                raise ConfigError(
                    f"dataflow_ignore entry {entry!r}: the '@' suffix must be a "
                    f"1-based step index"
                )
    return config


def load_recipe_payload(source: str | Path | dict | RecipeConfig) -> dict:
    """Read a recipe into a plain mapping without validating anything yet.

    The single parser behind :func:`load_config` and schema-only validation
    (``repro validate-recipe``): dicts and :class:`RecipeConfig` pass through,
    paths dispatch on suffix (YAML needs PyYAML, JSON always works).
    """
    if isinstance(source, RecipeConfig):
        return source.as_dict()
    if isinstance(source, dict):
        payload: Any = dict(source)
    else:
        path = Path(source)
        if not path.exists():
            raise ConfigError(f"recipe file not found: {path}")
        text = path.read_text(encoding="utf-8")
        if path.suffix in (".yaml", ".yml"):
            if yaml is None:
                raise ConfigError("PyYAML is required to load YAML recipes")
            payload = yaml.safe_load(text) or {}
        elif path.suffix == ".json":
            payload = json.loads(text)
        else:
            raise ConfigError(f"unsupported recipe format {path.suffix!r}")
    if not isinstance(payload, dict):
        raise ConfigError("a recipe must be a mapping of configuration keys")
    return payload


def load_config(source: str | Path | dict | RecipeConfig) -> RecipeConfig:
    """Build and validate a :class:`RecipeConfig` from a dict, YAML or JSON file."""
    if isinstance(source, RecipeConfig):
        return validate_config(source)
    payload = load_recipe_payload(source)
    unknown = set(payload) - _KNOWN_KEYS
    if unknown:
        from repro.core.registry import unknown_keys_message

        raise ConfigError(unknown_keys_message("recipe keys", unknown, _KNOWN_KEYS))
    config = RecipeConfig(**payload)
    return validate_config(config)


def save_config(config: RecipeConfig, path: str | Path) -> Path:
    """Write a recipe to YAML (or JSON when PyYAML is unavailable / .json suffix)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload: dict[str, Any] = config.as_dict()
    if path.suffix == ".json" or yaml is None:
        path.write_text(json.dumps(payload, indent=2, ensure_ascii=False), encoding="utf-8")
    else:
        path.write_text(yaml.safe_dump(payload, sort_keys=False, allow_unicode=True), encoding="utf-8")
    return path
