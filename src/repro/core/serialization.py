"""Explicit JSON sanitization for rows written to disk.

Exports, checkpoints and streaming spill shards all persist sample rows as
JSON.  Serialising unexpected payloads with ``json.dumps(..., default=repr)``
would silently replace them with their ``repr`` string, so a checkpoint
round-trip (or an export) could corrupt data without anyone noticing.  The
:class:`JsonSanitizer` here makes that conversion *explicit*: clean rows take
a zero-copy fast path, dirty rows are deep-sanitised, and every writer emits
exactly one warning naming the offending key paths.
"""

from __future__ import annotations

import json
import warnings
from typing import Any


class SerializationWarning(UserWarning):
    """Warns that non-JSON values were converted to strings on write."""


#: key paths reported per warning before truncating with an ellipsis
_MAX_REPORTED_KEYS = 8


class JsonSanitizer:
    """Serialise rows to JSON, tracking keys whose values are not JSON-safe.

    ``dumps`` is the hot path: it first tries a plain ``json.dumps`` (no
    ``default`` hook), which succeeds for the overwhelming majority of rows
    without any extra allocation.  Only rows that fail are walked and
    sanitised — non-JSON leaves become their ``repr`` string and the dotted
    key path is recorded in :attr:`offending`.  Call :meth:`warn` once per
    write operation to surface everything that was converted.
    """

    def __init__(self) -> None:
        #: dotted key path -> type name of the first offending value seen there
        self.offending: dict[str, str] = {}

    # ------------------------------------------------------------------
    def dumps(self, row: dict, **kwargs: Any) -> str:
        """Return the JSON encoding of ``row``, sanitising only when needed."""
        try:
            return json.dumps(row, **kwargs)
        except (TypeError, ValueError):
            return json.dumps(self.sanitize_row(row), **kwargs)

    def sanitize_row(self, row: dict) -> dict:
        """Return a deep-sanitised copy of ``row`` (JSON-safe leaves only)."""
        return self._sanitize(row, "")

    def _sanitize(self, value: Any, path: str) -> Any:
        if value is None or isinstance(value, (bool, int, float, str)):
            return value
        if isinstance(value, dict):
            sanitized = {}
            for key, item in value.items():
                if not isinstance(key, str):
                    self._record(f"{path}.{key!r}" if path else repr(key), type(key))
                    key = str(key)
                child = f"{path}.{key}" if path else key
                sanitized[key] = self._sanitize(item, child)
            return sanitized
        if isinstance(value, (list, tuple)):
            return [self._sanitize(item, f"{path}[]") for item in value]
        self._record(path or "<root>", type(value))
        return repr(value)

    def _record(self, path: str, value_type: type) -> None:
        self.offending.setdefault(path, value_type.__name__)

    # ------------------------------------------------------------------
    @property
    def dirty(self) -> bool:
        """True when at least one value had to be converted."""
        return bool(self.offending)

    def warn(self, where: str) -> None:
        """Emit one :class:`SerializationWarning` naming the offending keys."""
        if not self.offending:
            return
        keys = sorted(self.offending)
        shown = ", ".join(
            f"{key} ({self.offending[key]})" for key in keys[:_MAX_REPORTED_KEYS]
        )
        if len(keys) > _MAX_REPORTED_KEYS:
            shown += f", … ({len(keys) - _MAX_REPORTED_KEYS} more)"
        warnings.warn(
            f"{where}: non-JSON values at keys [{shown}] were written as their "
            "repr() string; reading the file back will not restore the original objects",
            SerializationWarning,
            stacklevel=3,
        )
        self.offending.clear()


__all__ = ["JsonSanitizer", "SerializationWarning"]
