"""Lightweight registries mapping operator/formatter names to classes.

Data-Juicer registers every OP and tool under a snake_case name so that data
recipes (configuration files) can refer to them by name.  This module provides
the same mechanism: a :class:`Registry` plus the three global registries used
by the rest of the package.
"""

from __future__ import annotations

import difflib
from typing import Callable, Iterable, Iterator

from repro.core.errors import RegistryError


def suggest_names(name: str, candidates: Iterable[str], limit: int = 3) -> list[str]:
    """Close-match suggestions for a misspelled registry/recipe/parameter name.

    Thin wrapper over :func:`difflib.get_close_matches` with a cutoff tuned
    for snake_case identifiers, shared by every "did you mean" error message.
    """
    return difflib.get_close_matches(name, list(candidates), n=limit, cutoff=0.5)


def suggestion_hint(
    name: str, candidates: Iterable[str], known_label: str = "known entries"
) -> str:
    """``did you mean: ...?`` for a close match, else the full candidate list.

    The shared hint phrase behind every unknown-name error (registry lookups,
    recipe keys, pipeline options, schema parameters) — falling back to the
    full list keeps small namespaces discoverable from the error alone.
    """
    candidates = list(candidates)
    suggestions = suggest_names(name, candidates)
    if suggestions:
        return f"did you mean: {', '.join(suggestions)}?"
    return f"{known_label}: {', '.join(sorted(candidates)) or '(none)'}"


def unknown_name_message(kind: str, name: str, candidates: Iterable[str]) -> str:
    """Error message for an unknown name, with close-match suggestions."""
    return f"{name!r} is not a registered {kind}; {suggestion_hint(name, candidates)}"


def unknown_keys_message(kind: str, keys: Iterable[str], candidates: Iterable[str]) -> str:
    """Error message for unknown mapping keys, one suggestion hint per key.

    Unlike :func:`unknown_name_message` this never dumps the full candidate
    list — with several bad keys that would repeat it per key.
    """
    candidates = list(candidates)
    hints = []
    for key in sorted(keys):
        close = suggest_names(key, candidates)
        hints.append(f"{key!r} (did you mean: {', '.join(close)}?)" if close else repr(key))
    return f"unknown {kind}: {', '.join(hints)}"


class Registry:
    """A name -> class registry with decorator-based registration."""

    def __init__(self, name: str):
        self._name = name
        self._modules: dict[str, type] = {}

    @property
    def name(self) -> str:
        """Name of this registry (used in error messages)."""
        return self._name

    @property
    def modules(self) -> dict[str, type]:
        """Mapping of registered names to classes (read-only view by convention)."""
        return self._modules

    def __len__(self) -> int:
        return len(self._modules)

    def __contains__(self, key: str) -> bool:
        return key in self._modules

    def __iter__(self) -> Iterator[str]:
        return iter(self._modules)

    def list(self) -> list[str]:
        """Return all registered names, sorted."""
        return sorted(self._modules)

    def get(self, key: str) -> type:
        """Return the class registered under ``key``.

        Raises :class:`RegistryError` when the name is unknown; the message
        carries "did you mean" close-match suggestions (or the full entry
        list when nothing is close).
        """
        if key not in self._modules:
            raise RegistryError(
                unknown_name_message(f"{self._name} name", key, self._modules)
            )
        return self._modules[key]

    def register_module(
        self, name: str | None = None, force: bool = False
    ) -> Callable[[type], type]:
        """Return a class decorator registering the class under ``name``.

        When ``name`` is omitted the class attribute ``_name`` or the
        snake_case class name is used.
        """

        def _register(cls: type) -> type:
            key = name or getattr(cls, "_name", None) or _snake_case(cls.__name__)
            if key in self._modules and not force:
                raise RegistryError(
                    f"{key!r} already registered in registry {self._name!r}"
                )
            self._modules[key] = cls
            cls._name = key
            return cls

        return _register


def _snake_case(name: str) -> str:
    """Convert CamelCase to snake_case."""
    chars: list[str] = []
    for index, char in enumerate(name):
        if char.isupper() and index > 0 and not name[index - 1].isupper():
            chars.append("_")
        chars.append(char.lower())
    return "".join(chars)


OPERATORS = Registry("operators")
FORMATTERS = Registry("formatters")
TOOLS = Registry("tools")
