"""Lightweight registries mapping operator/formatter names to classes.

Data-Juicer registers every OP and tool under a snake_case name so that data
recipes (configuration files) can refer to them by name.  This module provides
the same mechanism: a :class:`Registry` plus the three global registries used
by the rest of the package.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.core.errors import RegistryError


class Registry:
    """A name -> class registry with decorator-based registration."""

    def __init__(self, name: str):
        self._name = name
        self._modules: dict[str, type] = {}

    @property
    def name(self) -> str:
        """Name of this registry (used in error messages)."""
        return self._name

    @property
    def modules(self) -> dict[str, type]:
        """Mapping of registered names to classes (read-only view by convention)."""
        return self._modules

    def __len__(self) -> int:
        return len(self._modules)

    def __contains__(self, key: str) -> bool:
        return key in self._modules

    def __iter__(self) -> Iterator[str]:
        return iter(self._modules)

    def list(self) -> list[str]:
        """Return all registered names, sorted."""
        return sorted(self._modules)

    def get(self, key: str) -> type:
        """Return the class registered under ``key``.

        Raises :class:`RegistryError` when the name is unknown.
        """
        if key not in self._modules:
            raise RegistryError(
                f"{key!r} is not registered in registry {self._name!r}; "
                f"known entries: {', '.join(self.list()) or '(none)'}"
            )
        return self._modules[key]

    def register_module(
        self, name: str | None = None, force: bool = False
    ) -> Callable[[type], type]:
        """Return a class decorator registering the class under ``name``.

        When ``name`` is omitted the class attribute ``_name`` or the
        snake_case class name is used.
        """

        def _register(cls: type) -> type:
            key = name or getattr(cls, "_name", None) or _snake_case(cls.__name__)
            if key in self._modules and not force:
                raise RegistryError(
                    f"{key!r} already registered in registry {self._name!r}"
                )
            self._modules[key] = cls
            cls._name = key
            return cls

        return _register


def _snake_case(name: str) -> str:
    """Convert CamelCase to snake_case."""
    chars: list[str] = []
    for index, char in enumerate(name):
        if char.isupper() and index > 0 and not name[index - 1].isupper():
            chars.append("_")
        chars.append(char.lower())
    return "".join(chars)


OPERATORS = Registry("operators")
FORMATTERS = Registry("formatters")
TOOLS = Registry("tools")
