"""A column-oriented in-memory dataset with map/filter/select semantics.

This is the substrate that stands in for the HuggingFace-datasets library used
by the original Data-Juicer system (Sec. 3.1 of the paper).  It provides:

* column-oriented storage (``dict[str, list]``) with nested field access,
* functional ``map`` / ``filter`` / ``select`` transforms that return new
  datasets (never mutating the input in place),
* deterministic fingerprints so transformed datasets can be cached on disk and
  reused between runs (see :mod:`repro.core.cache`),
* utility transforms (shuffle, split, concatenate, column add/remove) that the
  operator pool and tools rely on.

Only the behaviours needed by the operator pool are implemented, but those are
implemented faithfully: Filters write stats columns, Mappers rewrite the text
column, Deduplicators add hash columns and select the surviving rows.
"""

from __future__ import annotations

import hashlib
import json
import random
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.core.errors import DatasetError
from repro.core.sample import Fields, get_field


def _stable_hash(payload: Any) -> str:
    """Return a stable hex digest for any JSON-serialisable payload."""
    encoded = json.dumps(payload, sort_keys=True, default=repr).encode("utf-8")
    return hashlib.sha1(encoded).hexdigest()


class NestedDataset:
    """Column-oriented dataset with functional transforms.

    Rows are dictionaries; columns are stored as parallel lists keyed by the
    top-level field name.  Nested values (e.g. ``meta.language``) live inside
    ``dict`` cells of the corresponding top-level column.
    """

    def __init__(self, columns: dict[str, list] | None = None, fingerprint: str | None = None):
        self._columns: dict[str, list] = {}
        if columns:
            lengths = {len(values) for values in columns.values()}
            if len(lengths) > 1:
                raise DatasetError(
                    f"column length mismatch: {sorted(lengths)} for keys {sorted(columns)}"
                )
            self._columns = {key: list(values) for key, values in columns.items()}
        self._fingerprint = fingerprint or self._compute_fingerprint()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_list(cls, samples: Sequence[dict], fingerprint: str | None = None) -> "NestedDataset":
        """Build a dataset from a list of sample dicts.

        Missing keys in individual samples are filled with ``None`` so every
        column has the same length.  Passing ``fingerprint`` skips the
        content-probe fingerprint computation — transforms that already know
        their derived fingerprint use this to avoid re-serialising rows.
        """
        keys: list[str] = []
        seen: set[str] = set()
        for sample in samples:
            for key in sample:
                if key not in seen:
                    seen.add(key)
                    keys.append(key)
        columns = {key: [sample.get(key) for sample in samples] for key in keys}
        return cls(columns, fingerprint=fingerprint)

    @classmethod
    def from_batches(
        cls, batches: Sequence[dict], fingerprint: str | None = None
    ) -> "NestedDataset":
        """Build a dataset by concatenating column batches (``dict[str, list]``).

        The union of columns is used with ``None`` fill, mirroring
        :meth:`from_list`; zero total rows yield a column-less dataset, again
        matching ``from_list([])``.
        """
        from repro.core.batch import batch_concat

        columns = batch_concat([batch for batch in batches if batch])
        if columns and not any(len(values) for values in columns.values()):
            columns = {}
        return cls(columns, fingerprint=fingerprint)

    @classmethod
    def from_dict(cls, columns: dict[str, list]) -> "NestedDataset":
        """Build a dataset directly from columnar data."""
        return cls(columns)

    @classmethod
    def empty(cls) -> "NestedDataset":
        """Return an empty dataset with no columns and no rows."""
        return cls({})

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        if not self._columns:
            return 0
        return len(next(iter(self._columns.values())))

    def __iter__(self) -> Iterator[dict]:
        for index in range(len(self)):
            yield self[index]

    def __getitem__(self, item: int | slice | str) -> Any:
        if isinstance(item, str):
            return self.column(item)
        if isinstance(item, slice):
            indices = range(*item.indices(len(self)))
            return [self[index] for index in indices]
        if item < 0:
            item += len(self)
        if item < 0 or item >= len(self):
            raise DatasetError(f"row index {item} out of range for {len(self)} rows")
        return {key: values[item] for key, values in self._columns.items()}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NestedDataset):
            return NotImplemented
        return self._columns == other._columns

    def __repr__(self) -> str:
        return (
            f"NestedDataset(num_rows={len(self)}, "
            f"columns={self.column_names}, fingerprint={self._fingerprint[:8]})"
        )

    @property
    def column_names(self) -> list[str]:
        """Names of the top-level columns."""
        return list(self._columns)

    @property
    def fingerprint(self) -> str:
        """Deterministic digest of the dataset content and transform history."""
        return self._fingerprint

    def column(self, name: str) -> list:
        """Return the values of a (possibly dotted) column as a list."""
        if name in self._columns:
            return list(self._columns[name])
        if "." in name:
            top = name.split(".", 1)[0]
            if top in self._columns:
                return [get_field(row, name) for row in self]
        raise DatasetError(f"unknown column {name!r}; have {self.column_names}")

    def to_list(self) -> list[dict]:
        """Materialise the dataset as a list of row dicts."""
        return [self[index] for index in range(len(self))]

    def to_dict(self) -> dict[str, list]:
        """Return a copy of the underlying columnar storage."""
        return {key: list(values) for key, values in self._columns.items()}

    def num_bytes(self) -> int:
        """Approximate in-memory size of the textual content (bytes of UTF-8)."""
        total = 0
        for values in self._columns.values():
            for value in values:
                if isinstance(value, str):
                    total += len(value.encode("utf-8", errors="ignore"))
                elif value is not None:
                    total += len(repr(value))
        return total

    # ------------------------------------------------------------------
    # Fingerprinting
    # ------------------------------------------------------------------
    def _compute_fingerprint(self) -> str:
        sample_rows: list[dict] = []
        length = len(self)
        if length:
            probe = {0, length - 1, length // 2}
            sample_rows = [self[index] for index in sorted(probe)]
        return _stable_hash(
            {
                "columns": self.column_names,
                "num_rows": length,
                "probe": sample_rows,
            }
        )

    def _derive_fingerprint(self, transform: str, params: Any = None) -> str:
        return _stable_hash({"parent": self._fingerprint, "transform": transform, "params": params})

    def derive_fingerprint(self, op_name: str, op_config: Any = None) -> str:
        """Incremental fingerprint of applying an operator to this dataset.

        ``hash(parent_fingerprint, op_name, op_config)`` — the operator runs
        (serial, batched or pooled) all stamp their output with this value, so
        cache/checkpoint keys agree across execution strategies without ever
        re-serialising the payload.
        """
        return _stable_hash({"parent": self._fingerprint, "op": op_name, "params": op_config})

    # ------------------------------------------------------------------
    # Transforms
    # ------------------------------------------------------------------
    def map(
        self,
        function: Callable[[dict], dict],
        batched: bool = False,
        batch_size: int = 1000,
        num_proc: int = 1,
        new_fingerprint: str | None = None,
        desc: str | None = None,
        pool: Any = None,
    ) -> "NestedDataset":
        """Apply ``function`` to every sample and return a new dataset.

        With ``batched=True`` the function receives and returns a *list* of
        samples, enabling multi-sample row functions.  This is the row-dict
        API for arbitrary callables; operator ``process_batched`` methods use
        the *columnar* contract (``dict[str, list]``) and must go through
        :meth:`map_batches` instead.  ``num_proc`` is accepted for interface
        compatibility with the original system; real parallelism comes from
        ``pool`` — a :class:`repro.parallel.WorkerPool` handle.  When the
        pool can execute ``function`` (a per-row method of a pool-resident
        operator) the rows are dispatched to it in chunks; the derived
        fingerprint is identical to the serial path, so cache and checkpoint
        semantics are preserved.
        """
        del num_proc, desc  # kept for API parity with the original system
        rows = self.to_list()
        new_rows: list[dict] = []
        if pool is not None and pool.accepts(function, kind="map", batched=batched) and len(rows) > 1:
            new_rows = pool.map_rows(function, rows)
            if not isinstance(new_rows, list) or not all(
                isinstance(row, dict) for row in new_rows
            ):
                raise DatasetError("map function must return a sample dict")
        elif batched:
            for start in range(0, len(rows), batch_size):
                batch = rows[start:start + batch_size]
                result = function(batch)
                if not isinstance(result, list):
                    raise DatasetError("batched map function must return a list of samples")
                new_rows.extend(result)
        else:
            for row in rows:
                result = function(row)
                if not isinstance(result, dict):
                    raise DatasetError("map function must return a sample dict")
                new_rows.append(result)
        fingerprint = new_fingerprint or self._derive_fingerprint(
            "map", getattr(function, "__qualname__", repr(function))
        )
        return NestedDataset.from_list(new_rows, fingerprint=fingerprint)

    def iter_batches(self, batch_size: int = 1000) -> Iterator[dict]:
        """Yield consecutive column batches (``dict[str, list]``) of the dataset.

        Each batch is a fresh dict of fresh column slices; cell objects are
        shared with this dataset, exactly like the rows of :meth:`to_list`.
        """
        if batch_size < 1:
            raise DatasetError("batch_size must be >= 1")
        length = len(self)
        for start in range(0, length, batch_size):
            stop = start + batch_size
            yield {key: values[start:stop] for key, values in self._columns.items()}

    def map_batches(
        self,
        function: Callable[[dict], dict],
        batch_size: int = 1000,
        new_fingerprint: str | None = None,
        pool: Any = None,
        desc: str | None = None,
    ) -> "NestedDataset":
        """Apply a columnar function to every batch and return a new dataset.

        ``function`` receives a column batch (``dict[str, list]``) and returns
        one (of any length, so multi-sample ops compose).  This is the hot
        path of the batched op engine: no per-row dict is ever constructed by
        the dataset itself.  A :class:`repro.parallel.WorkerPool` handle that
        accepts ``function`` dispatches the batches to the worker processes;
        the fingerprint is identical either way.
        """
        del desc
        if pool is not None and pool.accepts(function, kind="map_batches") and len(self) > 1:
            out_batches = pool.map_column_batches(function, list(self.iter_batches(batch_size)))
        else:
            out_batches = [function(batch) for batch in self.iter_batches(batch_size)]
        for batch in out_batches:
            if not isinstance(batch, dict):
                raise DatasetError("batched map function must return a column batch dict")
        fingerprint = new_fingerprint or self._derive_fingerprint(
            "map_batches", getattr(function, "__qualname__", repr(function))
        )
        return NestedDataset.from_batches(out_batches, fingerprint=fingerprint)

    def filter_batches(
        self,
        function: Callable[[dict], Sequence[bool]],
        batch_size: int = 1000,
        new_fingerprint: str | None = None,
        pool: Any = None,
    ) -> "NestedDataset":
        """Keep rows whose batch-level predicate flag is True.

        ``function`` receives a column batch and returns one boolean per row.
        Surviving rows are collected columnar — no row dicts, no re-probing
        of content for the fingerprint.
        """
        from repro.core.batch import batch_select

        if pool is not None and pool.accepts(function, kind="filter_batches") and len(self) > 1:
            flag_batches = pool.flag_column_batches(function, list(self.iter_batches(batch_size)))
            kept = [
                batch_select(batch, [i for i, keep in enumerate(flags) if keep])
                for batch, flags in zip(self.iter_batches(batch_size), flag_batches)
            ]
        else:
            kept = []
            for batch in self.iter_batches(batch_size):
                flags = function(batch)
                kept.append(batch_select(batch, [i for i, keep in enumerate(flags) if keep]))
        fingerprint = new_fingerprint or self._derive_fingerprint(
            "filter_batches", getattr(function, "__qualname__", repr(function))
        )
        return NestedDataset.from_batches(kept, fingerprint=fingerprint)

    def filter(
        self,
        function: Callable[[dict], bool],
        num_proc: int = 1,
        new_fingerprint: str | None = None,
        desc: str | None = None,
        pool: Any = None,
    ) -> "NestedDataset":
        """Keep only the samples for which ``function`` returns True.

        Like :meth:`map`, a ``pool`` handle routes the boolean decision
        through the parallel engine when ``function`` belongs to a
        pool-resident Filter.
        """
        del num_proc, desc
        if pool is not None and pool.accepts(function, kind="filter") and len(self) > 1:
            flags = pool.flag_rows(function, self.to_list())
            keep_indices = [index for index, keep in enumerate(flags) if keep]
        else:
            keep_indices = [index for index, row in enumerate(self) if function(row)]
        dataset = self.select(keep_indices)
        dataset._fingerprint = new_fingerprint or self._derive_fingerprint(
            "filter", getattr(function, "__qualname__", repr(function))
        )
        return dataset

    def select(self, indices: Iterable[int]) -> "NestedDataset":
        """Return a new dataset containing only the rows at ``indices`` (in order)."""
        index_list = list(indices)
        length = len(self)
        for index in index_list:
            if index < 0 or index >= length:
                raise DatasetError(f"select index {index} out of range for {length} rows")
        columns = {
            key: [values[index] for index in index_list]
            for key, values in self._columns.items()
        }
        return NestedDataset(columns, fingerprint=self._derive_fingerprint("select", index_list[:64]))

    def add_column(self, name: str, values: Sequence[Any]) -> "NestedDataset":
        """Return a new dataset with an extra column."""
        if len(values) != len(self) and len(self) > 0:
            raise DatasetError(
                f"new column {name!r} has {len(values)} values, dataset has {len(self)} rows"
            )
        columns = self.to_dict()
        columns[name] = list(values)
        return NestedDataset(columns, fingerprint=self._derive_fingerprint("add_column", name))

    def remove_columns(self, names: str | Sequence[str]) -> "NestedDataset":
        """Return a new dataset without the given column(s); missing names are ignored."""
        if isinstance(names, str):
            names = [names]
        drop = set(names)
        columns = {key: values for key, values in self.to_dict().items() if key not in drop}
        return NestedDataset(
            columns, fingerprint=self._derive_fingerprint("remove_columns", sorted(drop))
        )

    def rename_column(self, old: str, new: str) -> "NestedDataset":
        """Return a new dataset with column ``old`` renamed to ``new``."""
        if old not in self._columns:
            raise DatasetError(f"cannot rename unknown column {old!r}")
        columns = {}
        for key, values in self.to_dict().items():
            columns[new if key == old else key] = values
        return NestedDataset(
            columns, fingerprint=self._derive_fingerprint("rename_column", [old, new])
        )

    def shuffle(self, seed: int = 0) -> "NestedDataset":
        """Return a deterministically shuffled copy of the dataset."""
        indices = list(range(len(self)))
        random.Random(seed).shuffle(indices)
        dataset = self.select(indices)
        dataset._fingerprint = self._derive_fingerprint("shuffle", seed)
        return dataset

    def train_test_split(self, test_size: float = 0.2, seed: int = 0) -> dict[str, "NestedDataset"]:
        """Split into train/test partitions, returning ``{"train": ..., "test": ...}``."""
        if not 0.0 < test_size < 1.0:
            raise DatasetError("test_size must be in (0, 1)")
        shuffled = list(range(len(self)))
        random.Random(seed).shuffle(shuffled)
        cut = int(round(len(shuffled) * test_size))
        test_indices = sorted(shuffled[:cut])
        train_indices = sorted(shuffled[cut:])
        return {"train": self.select(train_indices), "test": self.select(test_indices)}

    def take(self, count: int) -> "NestedDataset":
        """Return the first ``count`` rows (fewer when the dataset is smaller)."""
        return self.select(range(min(count, len(self))))

    @staticmethod
    def concatenate(datasets: Sequence["NestedDataset"]) -> "NestedDataset":
        """Concatenate datasets row-wise; the union of columns is used."""
        rows: list[dict] = []
        for dataset in datasets:
            rows.extend(dataset.to_list())
        return NestedDataset.from_list(rows)


def concatenate_datasets(datasets: Sequence[NestedDataset]) -> NestedDataset:
    """Module-level alias matching the HuggingFace-datasets API name."""
    return NestedDataset.concatenate(datasets)


def dataset_token_count(dataset: NestedDataset, text_key: str = Fields.text) -> int:
    """Count whitespace tokens of the text column; used by recipes and HPO targets."""
    total = 0
    for row in dataset:
        value = get_field(row, text_key)
        if isinstance(value, str):
            total += len(value.split())
    return total
