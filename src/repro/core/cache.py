"""On-disk cache of intermediate datasets, keyed by fingerprint, with compression.

Reproduces the cache management described in Sec. 4.1.1 / 6 of the paper: every
operator's output can be cached to disk keyed by (input fingerprint, operator
configuration), so re-running a recipe after tweaking a late operator skips the
unchanged prefix.  Cache files can be transparently compressed; zlib / lzma /
gzip stand in for the zstd / LZ4 codecs used by the original system.

Two granularities share one manager and one directory:

* **dataset-level** (``save`` / ``load``): whole intermediate datasets, keyed
  by ``(input fingerprint, op name, op params)`` — the in-memory
  ``Executor.run`` path.
* **shard-level** (``save_shard_rows`` / ``load_shard_rows``): one processed
  shard of a streaming stage, keyed by ``(op fingerprint chain, shard
  signature)`` via :meth:`CacheManager.make_shard_key`.  Shard entries are
  pickled (lossless for any Python payload, exactly like the streaming spill
  store) and answer ``Executor.run_streaming`` re-runs over unchanged inputs
  without recomputing the shard.  Hits and misses are counted separately
  (``shard_hits`` / ``shard_misses``) so run reports can distinguish the two
  modes.
"""

from __future__ import annotations

import bz2
import gzip
import hashlib
import json
import lzma
import pickle
import zlib
from pathlib import Path
from typing import Callable

from repro.core.dataset import NestedDataset
from repro.core.errors import ReproError

_COMPRESSORS: dict[str, tuple[Callable[[bytes], bytes], Callable[[bytes], bytes], str]] = {
    "none": (lambda data: data, lambda data: data, ".json"),
    "zlib": (zlib.compress, zlib.decompress, ".json.zlib"),
    "gzip": (gzip.compress, gzip.decompress, ".json.gz"),
    "lzma": (lzma.compress, lzma.decompress, ".json.xz"),
    "bz2": (bz2.compress, bz2.decompress, ".json.bz2"),
}


def available_codecs() -> list[str]:
    """Names of the supported cache compression codecs."""
    return sorted(_COMPRESSORS)


class CacheManager:
    """Fingerprint-keyed dataset cache with optional compression.

    Parameters
    ----------
    cache_dir:
        Directory where cache files are written (created on demand).
    compression:
        One of :func:`available_codecs`; ``"none"`` disables compression.
    enabled:
        When False, all operations are no-ops (useful for benchmarking the
        uncached path).
    """

    def __init__(self, cache_dir: str | Path, compression: str = "none", enabled: bool = True):
        if compression not in _COMPRESSORS:
            raise ReproError(
                f"unknown compression codec {compression!r}; choose from {available_codecs()}"
            )
        self.cache_dir = Path(cache_dir)
        self.compression = compression
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self.shard_hits = 0
        self.shard_misses = 0

    # ------------------------------------------------------------------
    def _path_for(self, key: str) -> Path:
        digest = hashlib.sha1(key.encode("utf-8")).hexdigest()
        suffix = _COMPRESSORS[self.compression][2]
        return self.cache_dir / f"cache-{digest}{suffix}"

    def _shard_path_for(self, key: str) -> Path:
        digest = hashlib.sha1(key.encode("utf-8")).hexdigest()
        return self.cache_dir / f"shard-{digest}.pkl"

    @staticmethod
    def make_key(dataset_fingerprint: str, op_name: str, op_params: dict) -> str:
        """Build the cache key of an operator applied to a dataset."""
        return json.dumps(
            {"fingerprint": dataset_fingerprint, "op": op_name, "params": op_params},
            sort_keys=True,
            default=repr,
        )

    @staticmethod
    def make_shard_key(op_chain: str, shard_signature: str) -> str:
        """Build the cache key of a streaming stage applied to one shard.

        ``op_chain`` digests the ordered operator configurations of the stage
        (every shard-local op, plus a Deduplicator's hashing stage when the
        segment closes with one); ``shard_signature`` digests the shard's
        input rows.  Together they guarantee a hit replays exactly what
        recomputation would produce.
        """
        return json.dumps(
            {"op_chain": op_chain, "shard": shard_signature}, sort_keys=True
        )

    # ------------------------------------------------------------------
    def save(self, key: str, dataset: NestedDataset) -> Path | None:
        """Serialise a dataset into the cache; returns the written path (or None)."""
        if not self.enabled:
            return None
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        compress, _, _ = _COMPRESSORS[self.compression]
        payload = json.dumps(
            {"fingerprint": dataset.fingerprint, "columns": dataset.to_dict()},
            ensure_ascii=False,
            default=repr,
        ).encode("utf-8")
        path = self._path_for(key)
        path.write_bytes(compress(payload))
        return path

    def load(self, key: str) -> NestedDataset | None:
        """Load a dataset from the cache; returns None on a miss."""
        if not self.enabled:
            return None
        path = self._path_for(key)
        if not path.exists():
            self.misses += 1
            return None
        _, decompress, _ = _COMPRESSORS[self.compression]
        try:
            payload = json.loads(decompress(path.read_bytes()).decode("utf-8"))
        except (OSError, ValueError, zlib.error, lzma.LZMAError):
            self.misses += 1
            return None
        self.hits += 1
        dataset = NestedDataset.from_dict(payload["columns"])
        dataset._fingerprint = payload.get("fingerprint", dataset.fingerprint)
        return dataset

    def contains(self, key: str) -> bool:
        """Return True when a cache entry exists for ``key``."""
        return self.enabled and self._path_for(key).exists()

    # ------------------------------------------------------------------
    # Shard-level entries (streaming mode)
    # ------------------------------------------------------------------
    def save_shard_rows(self, key: str, rows: list[dict]) -> Path | None:
        """Cache one processed shard of a streaming stage.

        Rows are pickled (like the streaming spill store): lossless for every
        Python payload, so a cache replay can never differ from recomputation.
        The configured compression codec applies to the pickled bytes.
        Writes are atomic (temp file + rename), so concurrent runs sharing a
        cache directory never observe a torn entry.
        """
        if not self.enabled:
            return None
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        compress, _, _ = _COMPRESSORS[self.compression]
        path = self._shard_path_for(key)
        temp = path.with_suffix(".tmp")
        temp.write_bytes(compress(pickle.dumps(rows, protocol=pickle.HIGHEST_PROTOCOL)))
        temp.replace(path)
        return path

    def load_shard_rows(self, key: str) -> list[dict] | None:
        """Replay a cached shard; returns None (and counts a miss) when absent."""
        if not self.enabled:
            return None
        path = self._shard_path_for(key)
        if not path.exists():
            self.shard_misses += 1
            return None
        _, decompress, _ = _COMPRESSORS[self.compression]
        try:
            rows = pickle.loads(decompress(path.read_bytes()))
        except (OSError, ValueError, pickle.UnpicklingError, EOFError,
                zlib.error, lzma.LZMAError):
            self.shard_misses += 1
            return None
        self.shard_hits += 1
        return rows

    # ------------------------------------------------------------------
    def clear(self) -> int:
        """Delete every cache file (both granularities); returns the count."""
        if not self.cache_dir.exists():
            return 0
        removed = 0
        for pattern in ("cache-*", "shard-*"):
            for path in self.cache_dir.glob(pattern):
                path.unlink()
                removed += 1
        return removed

    def total_bytes(self) -> int:
        """Total on-disk size of all cache files (bytes, both granularities)."""
        if not self.cache_dir.exists():
            return 0
        return sum(
            path.stat().st_size
            for pattern in ("cache-*", "shard-*")
            for path in self.cache_dir.glob(pattern)
        )


def estimate_cache_space(
    dataset_size: int, num_mappers: int, num_filters: int, num_dedups: int
) -> int:
    """Peak cache space of *cache mode*, per the paper's Appendix A.2 analysis.

    ``Space = (1 + M + F + I(F > 0) + D) * S`` where S is the dataset size.
    """
    extra_stats_copy = 1 if num_filters > 0 else 0
    return (1 + num_mappers + num_filters + extra_stats_copy + num_dedups) * dataset_size


def estimate_checkpoint_space(dataset_size: int) -> int:
    """Peak cache space of *checkpoint mode*: at most 3 copies of the dataset."""
    return 3 * dataset_size
