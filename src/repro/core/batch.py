"""Columnar batch representation shared by the batched execution engine.

A *column batch* is a plain ``dict[str, list]`` mapping top-level field names
to equal-length value lists — a horizontal slice of a
:class:`~repro.core.dataset.NestedDataset`.  The batched operator paths
(:meth:`Mapper.process_batched`, :meth:`Filter.compute_stats_batched`, …) hand
these slices around instead of materialising one dict per row, which removes
the dominant per-row overhead of the original hot path (dict construction,
``dict(row)`` copies and per-op ``to_list``/``from_list`` round trips).

Cell objects are shared between a batch and the dataset it was sliced from —
exactly like the row dicts produced by ``to_list()`` share their cell objects.
Helpers that modify a batch therefore always replace whole column lists and
never mutate the sliced lists in place.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.sample import Fields

#: default number of rows per batch of the batched op path; per-op overrides
#: come from the ``batch_size`` op parameter / recipe knob
DEFAULT_BATCH_SIZE = 1000


def batch_length(samples: dict[str, list]) -> int:
    """Number of rows in a column batch (0 for an empty/column-less batch)."""
    for values in samples.values():
        return len(values)
    return 0


def batch_to_rows(samples: dict[str, list]) -> list[dict]:
    """Materialise a column batch as a list of fresh row dicts.

    The row dicts are new objects (safe to mutate key-wise) but share their
    cell objects with the batch, mirroring ``NestedDataset.to_list``.
    """
    keys = list(samples)
    return [
        {key: samples[key][index] for key in keys}
        for index in range(batch_length(samples))
    ]


def rows_to_batch(rows: Sequence[dict], column_order: Iterable[str] | None = None) -> dict[str, list]:
    """Collect row dicts into a column batch.

    Missing keys are filled with ``None``, matching
    ``NestedDataset.from_list`` semantics; ``column_order`` seeds the key
    order (extra keys append in first-seen order).
    """
    keys: list[str] = list(column_order or ())
    seen = set(keys)
    for row in rows:
        for key in row:
            if key not in seen:
                seen.add(key)
                keys.append(key)
    return {key: [row.get(key) for row in rows] for key in keys}


def batch_select(samples: dict[str, list], indices: Sequence[int]) -> dict[str, list]:
    """Return a new batch containing only the rows at ``indices`` (in order)."""
    index_list = list(indices)
    return {key: [values[index] for index in index_list] for key, values in samples.items()}


def batch_concat(batches: Sequence[dict[str, list]]) -> dict[str, list]:
    """Concatenate batches row-wise; the union of columns is used (None-filled)."""
    keys: list[str] = []
    seen: set[str] = set()
    for batch in batches:
        for key in batch:
            if key not in seen:
                seen.add(key)
                keys.append(key)
    columns: dict[str, list] = {key: [] for key in keys}
    for batch in batches:
        length = batch_length(batch)
        for key in keys:
            values = batch.get(key)
            columns[key].extend(values if values is not None else [None] * length)
    return columns


def get_text_column(samples: dict[str, list], text_key: str) -> list[str] | None:
    """Return the text column of a batch as a list of strings, or ``None``.

    ``None`` signals that the fast path does not apply (nested/dotted text
    key) and the caller should fall back to the generic per-row path.
    Missing columns and non-string cells become ``""``, matching
    :meth:`repro.core.base_op.OP.get_text`.
    """
    if "." in text_key:
        return None
    values = samples.get(text_key)
    if values is None:
        return [""] * batch_length(samples)
    return [value if isinstance(value, str) else "" for value in values]


def set_text_column(samples: dict[str, list], text_key: str, texts: list[str]) -> dict[str, list]:
    """Replace the text column of a batch, returning the same batch dict.

    Only valid for top-level text keys (callers use :func:`get_text_column`
    first, which rejects dotted keys).
    """
    samples[text_key] = list(texts)
    return samples


def ensure_stats_column(samples: dict[str, list]) -> list[dict]:
    """Return the per-row stats dicts of a batch, normalising the column.

    Rows whose stats cell is missing or not a dict get a fresh ``{}``; the
    column list is replaced (never mutated in place) so the parent dataset's
    column storage is untouched, while existing stats dicts stay shared with
    the parent — the same aliasing the per-row path produces via shallow
    ``dict(row)`` copies.
    """
    length = batch_length(samples)
    existing = samples.get(Fields.stats)
    if existing is None:
        stats_column: list[dict] = [{} for _ in range(length)]
    else:
        stats_column = [cell if isinstance(cell, dict) else {} for cell in existing]
    samples[Fields.stats] = stats_column
    return stats_column


def stats_column_view(samples: dict[str, list]) -> list[dict]:
    """Read-only view of the per-row stats dicts (missing cells read as ``{}``).

    Unlike :func:`ensure_stats_column` this never modifies the batch; it is
    the batched analogue of ``sample.get(Fields.stats, {})`` in the per-row
    ``process`` implementations.
    """
    existing = samples.get(Fields.stats)
    if existing is None:
        return [{}] * batch_length(samples)
    return [cell if isinstance(cell, dict) else {} for cell in existing]


def resolve_batch_size(batch_size: int | None) -> int:
    """Normalise an op/recipe batch-size setting to a positive int."""
    if batch_size is None:
        return DEFAULT_BATCH_SIZE
    return max(1, int(batch_size))


__all__ = [
    "DEFAULT_BATCH_SIZE",
    "batch_concat",
    "batch_length",
    "batch_select",
    "batch_to_rows",
    "ensure_stats_column",
    "get_text_column",
    "resolve_batch_size",
    "rows_to_batch",
    "set_text_column",
    "stats_column_view",
]
