"""Sample conventions: well-known field names, stats keys and nested access.

A *sample* is a plain ``dict`` with (at least) a text field, and optionally a
``meta`` dict, a stats dict produced by Filter OPs, and a transient context
dict shared between fused operators.  This module centralizes the names of
those fields so that every operator and tool agrees on them, mirroring the
"text" / "meta" / "stats" unified representation described in the paper
(Sec. 3.1).
"""

from __future__ import annotations

from typing import Any, Iterable


class Fields:
    """Well-known top-level field names of a unified sample."""

    text = "text"
    meta = "meta"
    stats = "__stats__"
    context = "__context__"
    suffix = "__suffix__"
    source = "__source__"


class StatsKeys:
    """Names of per-sample statistics produced by Filter operators."""

    alnum_ratio = "alnum_ratio"
    alpha_token_ratio = "alpha_token_ratio"
    avg_line_length = "avg_line_length"
    char_rep_ratio = "char_rep_ratio"
    digit_ratio = "digit_ratio"
    email_count = "email_count"
    flagged_words_ratio = "flagged_words_ratio"
    lang = "lang"
    lang_score = "lang_score"
    max_line_length = "max_line_length"
    num_paragraphs = "num_paragraphs"
    num_sentences = "num_sentences"
    num_token = "num_token"
    num_words = "num_words"
    perplexity = "perplexity"
    quality_score = "quality_score"
    special_char_ratio = "special_char_ratio"
    stopwords_ratio = "stopwords_ratio"
    text_len = "text_len"
    url_ratio = "url_ratio"
    whitespace_ratio = "whitespace_ratio"
    word_rep_ratio = "word_rep_ratio"


class HashKeys:
    """Names of per-sample hash fields produced by Deduplicator operators."""

    hash = "__hash__"
    minhash = "__minhash__"
    simhash = "__simhash__"


#: sentinel default for :func:`get_field` that distinguishes "field absent"
#: from "field present with value None" — dotted paths whose leaf (or any
#: intermediate) is missing resolve to MISSING instead of a real value
MISSING = object()


def get_field(sample: dict, field_path: str, default: Any = None) -> Any:
    """Return the value at a (possibly dotted) field path of a sample.

    ``get_field(sample, "meta.language")`` resolves nested dictionaries.
    Missing intermediate keys yield ``default``.
    """
    current: Any = sample
    for part in field_path.split("."):
        if isinstance(current, dict) and part in current:
            current = current[part]
        else:
            return default
    return current


def set_field(sample: dict, field_path: str, value: Any) -> dict:
    """Set the value at a (possibly dotted) field path, creating dicts as needed.

    Returns the same sample for chaining.
    """
    parts = field_path.split(".")
    current = sample
    for part in parts[:-1]:
        nxt = current.get(part)
        if not isinstance(nxt, dict):
            nxt = {}
            current[part] = nxt
        current = nxt
    current[parts[-1]] = value
    return sample


def has_field(sample: dict, field_path: str) -> bool:
    """Return True when the dotted field path exists in the sample."""
    sentinel = object()
    return get_field(sample, field_path, sentinel) is not sentinel


def ensure_stats(sample: dict) -> dict:
    """Ensure the sample has a stats dict and return that dict."""
    stats = sample.get(Fields.stats)
    if not isinstance(stats, dict):
        stats = {}
        sample[Fields.stats] = stats
    return stats


def ensure_context(sample: dict) -> dict:
    """Ensure the sample has a context dict and return that dict."""
    context = sample.get(Fields.context)
    if not isinstance(context, dict):
        context = {}
        sample[Fields.context] = context
    return context


def clear_context(sample: dict) -> dict:
    """Drop the transient context dict from a sample, if present."""
    sample.pop(Fields.context, None)
    return sample


def strip_internal_fields(sample: dict, keep_stats: bool = False) -> dict:
    """Return a copy of the sample without internal bookkeeping fields.

    Hash columns, context and (optionally) stats are removed so that exported
    data only contains user-facing content.
    """
    internal = {Fields.context, HashKeys.hash, HashKeys.minhash, HashKeys.simhash}
    if not keep_stats:
        internal.add(Fields.stats)
    return {key: value for key, value in sample.items() if key not in internal}


def merge_samples(samples: Iterable[dict]) -> dict:
    """Merge a list of single-sample dicts into one batched (columnar) dict."""
    batched: dict[str, list] = {}
    for sample in samples:
        for key, value in sample.items():
            batched.setdefault(key, []).append(value)
    return batched


def split_batched(batched: dict) -> list[dict]:
    """Split a batched (columnar) dict back into a list of sample dicts."""
    if not batched:
        return []
    keys = list(batched.keys())
    length = len(batched[keys[0]])
    return [{key: batched[key][index] for key in keys} for index in range(length)]
