"""Unified run reports: one observability surface for every execution mode.

Both :meth:`repro.core.executor.Executor.run` (in-memory, serial or
worker-pool parallel) and :meth:`~repro.core.executor.Executor.run_streaming`
(out-of-core) emit a :class:`RunReport`: the executed plan, per-operator
sections (rows in/out, wall time, throughput, peak RSS, cache activity), the
dataset/shard cache counters, the tracer summary and the run-level resource
profile.  The report is the programmatic form of the paper's feedback loop —
the ``repro report`` CLI subcommand renders it as text or JSON, and
:meth:`repro.analysis.analyzer.Analyzer.analyze_run` consumes it to analyze a
run's exported output without re-loading the corpus into memory.

``RunReport`` is a :class:`collections.abc.Mapping`, so existing code that
indexes ``executor.last_report`` like a plain dict keeps working unchanged.
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Iterator

#: file name of the persisted report inside a run's ``work_dir``
REPORT_FILE = "report.json"


@dataclass
class OpReport:
    """Per-operator section of a :class:`RunReport`.

    ``rows_in`` / ``rows_out`` aggregate every *executed* call (shards in
    streaming mode, the whole dataset in memory mode); calls answered from
    the cache are counted in ``cached_calls`` but contribute no rows, because
    the operator never saw them.
    """

    name: str
    op_type: str
    rows_in: int = 0
    rows_out: int = 0
    calls: int = 0
    cached_calls: int = 0
    wall_time_s: float = 0.0
    max_rss_mb: float = 0.0

    @property
    def removed(self) -> int:
        """Number of rows dropped by this operator across executed calls."""
        return max(0, self.rows_in - self.rows_out)

    @property
    def rows_per_sec(self) -> float:
        """Input-row throughput of the executed calls (0.0 when untimed)."""
        if self.wall_time_s <= 0:
            return 0.0
        return self.rows_in / self.wall_time_s

    def as_dict(self) -> dict:
        """Plain-dict view, including the derived throughput fields."""
        payload = asdict(self)
        payload["removed"] = self.removed
        payload["rows_per_sec"] = self.rows_per_sec
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "OpReport":
        """Rebuild an :class:`OpReport` from :meth:`as_dict` output."""
        known = {key: payload[key] for key in (
            "name", "op_type", "rows_in", "rows_out", "calls",
            "cached_calls", "wall_time_s", "max_rss_mb",
        ) if key in payload}
        return cls(**known)


@dataclass
class RunReport(Mapping):
    """The full observability record of one executor run (any mode)."""

    mode: str = "memory"
    plan: list = field(default_factory=list)
    num_output_samples: int = 0
    ops: list[OpReport] = field(default_factory=list)
    cache: dict = field(default_factory=dict)
    resources: dict = field(default_factory=dict)
    trace: list = field(default_factory=list)
    parallel: dict = field(default_factory=dict)
    shards: dict | None = None
    shard_budget: dict | None = None
    segments: int | None = None
    export_paths: list[str] = field(default_factory=list)
    #: the mode decision of :func:`repro.core.planner.plan_execution` when the
    #: run went through ``Executor.execute`` (None for direct run/run_streaming)
    planner: dict | None = None
    #: fault-tolerance accounting of the run — the active error policy plus
    #: every retry, pool rebuild, quarantined row/shard, per-op error count
    #: and degradation (see :class:`repro.core.faults.FaultTracker`)
    faults: dict | None = None

    # ------------------------------------------------------------------
    # Mapping interface (backwards compatibility with the old dict report)
    # ------------------------------------------------------------------
    #: dict-view keys that read straight from the matching attribute
    _PLAIN_KEYS = (
        "mode", "plan", "num_output_samples", "cache", "resources",
        "trace", "parallel", "export_paths",
    )
    #: keys present in the dict view only when set (streaming / planned runs)
    _OPTIONAL_KEYS = ("shards", "shard_budget", "segments", "planner", "faults")

    def __getitem__(self, key: str) -> Any:
        if key == "ops":
            return [op.as_dict() for op in self.ops]
        if key in self._PLAIN_KEYS:
            return getattr(self, key)
        if key in self._OPTIONAL_KEYS:
            value = getattr(self, key)
            if value is None:
                raise KeyError(key)
            return value
        raise KeyError(key)

    def __iter__(self) -> Iterator[str]:
        yield from self._PLAIN_KEYS
        yield "ops"
        for key in self._OPTIONAL_KEYS:
            if getattr(self, key) is not None:
                yield key

    def __len__(self) -> int:
        return sum(1 for _key in self)

    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """JSON-safe plain-dict view of the whole report."""
        payload = {
            "mode": self.mode,
            "plan": list(self.plan),
            "num_output_samples": self.num_output_samples,
            "ops": [op.as_dict() for op in self.ops],
            "cache": dict(self.cache),
            "resources": dict(self.resources),
            "trace": list(self.trace),
            "parallel": dict(self.parallel),
            "export_paths": list(self.export_paths),
        }
        if self.shards is not None:
            payload["shards"] = dict(self.shards)
        if self.shard_budget is not None:
            payload["shard_budget"] = dict(self.shard_budget)
        if self.segments is not None:
            payload["segments"] = self.segments
        if self.planner is not None:
            payload["planner"] = dict(self.planner)
        if self.faults is not None:
            payload["faults"] = dict(self.faults)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "RunReport":
        """Rebuild a :class:`RunReport` from :meth:`as_dict` output."""
        return cls(
            mode=payload.get("mode", "memory"),
            plan=list(payload.get("plan", [])),
            num_output_samples=int(payload.get("num_output_samples", 0)),
            ops=[OpReport.from_dict(entry) for entry in payload.get("ops", [])],
            cache=dict(payload.get("cache", {})),
            resources=dict(payload.get("resources", {})),
            trace=list(payload.get("trace", [])),
            parallel=dict(payload.get("parallel", {})),
            shards=dict(payload["shards"]) if "shards" in payload else None,
            shard_budget=(
                dict(payload["shard_budget"]) if "shard_budget" in payload else None
            ),
            segments=payload.get("segments"),
            export_paths=[str(path) for path in payload.get("export_paths", [])],
            planner=dict(payload["planner"]) if "planner" in payload else None,
            faults=dict(payload["faults"]) if "faults" in payload else None,
        )

    # ------------------------------------------------------------------
    def op_summary(self) -> list[tuple[str, str, int, int]]:
        """Compact ``(name, type, rows_in, rows_out)`` tuples, in plan order.

        This is the structural identity the streaming engine guarantees:
        ``run()`` and ``run_streaming()`` over the same recipe and input
        produce equal summaries.
        """
        return [(op.name, op.op_type, op.rows_in, op.rows_out) for op in self.ops]

    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> Path:
        """Write the report as JSON atomically and return the path.

        Atomic (tmp + replace) so a crash mid-write never leaves a truncated
        ``report.json`` behind a completed run.
        """
        from repro.core.checkpoint import atomic_write_text

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(
            path, json.dumps(self.as_dict(), indent=2, ensure_ascii=False, default=repr)
        )
        return path

    @classmethod
    def load(cls, path: str | Path) -> "RunReport":
        """Load a report previously written by :meth:`save`.

        ``path`` may be the report file itself or a run's ``work_dir``
        containing a :data:`REPORT_FILE`.
        """
        path = Path(path)
        if path.is_dir():
            path = path / REPORT_FILE
        return cls.from_dict(json.loads(path.read_text(encoding="utf-8")))

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Human-readable multi-line rendering (the ``repro report`` output)."""
        lines = [
            f"Run report — mode={self.mode}, "
            f"{self.num_output_samples} output samples"
        ]
        resources = self.resources or {}
        if resources.get("wall_time_s") is not None:
            lines.append(
                f"  wall time {resources['wall_time_s']:.3f}s, "
                f"peak RSS {resources.get('max_rss_mb', 0.0):.1f} MB"
            )
        if self.mode == "streaming" and self.shards is not None:
            budget = self.shard_budget or {}
            lines.append(
                "  shards: "
                + ", ".join(f"{key}={value}" for key, value in self.shards.items())
                + f" (budget rows={budget.get('max_shard_rows')}, "
                f"chars={budget.get('max_shard_chars')})"
            )
        planner = self.planner or {}
        if planner:
            lines.append(
                f"  planner: requested={planner.get('requested')}, "
                f"chose {planner.get('mode')} "
                f"({'; '.join(planner.get('reasons', []))})"
            )
        cache = self.cache or {}
        if cache:
            lines.append(
                "  cache: "
                + ", ".join(f"{key}={value}" for key, value in sorted(cache.items()))
            )
        parallel = self.parallel or {}
        if parallel:
            lines.append(
                f"  parallel: np={parallel.get('np')}, "
                f"batch_size={parallel.get('batch_size')}, "
                f"start_method={parallel.get('start_method')}"
            )
        faults = self.faults or {}
        counter_keys = (
            "retries", "pool_rebuilds", "degradations",
            "quarantined_rows", "skipped_rows", "quarantined_shards",
        )
        if faults and (
            any(faults.get(key) for key in counter_keys) or faults.get("op_errors")
        ):
            policy = faults.get("policy") or {}
            lines.append(
                "  faults (on_error="
                + str(policy.get("on_error", "raise"))
                + "): "
                + ", ".join(f"{key}={faults.get(key, 0)}" for key in counter_keys)
            )
            op_errors = faults.get("op_errors") or {}
            if op_errors:
                lines.append(
                    "    op errors: "
                    + ", ".join(
                        f"{name}={count}" for name, count in sorted(op_errors.items())
                    )
                )
            for path in faults.get("quarantine_paths") or []:
                lines.append(f"    quarantine: {path}")
        if self.ops:
            header = (
                f"  {'op':<44} {'type':<13} {'rows_in':>9} {'rows_out':>9} "
                f"{'removed':>8} {'time_s':>8} {'rows/s':>10} {'cached':>6}"
            )
            lines.append(header)
            lines.append("  " + "-" * (len(header) - 2))
            for op in self.ops:
                lines.append(
                    f"  {op.name:<44} {op.op_type:<13} {op.rows_in:>9} "
                    f"{op.rows_out:>9} {op.removed:>8} {op.wall_time_s:>8.3f} "
                    f"{op.rows_per_sec:>10.0f} {op.cached_calls:>6}"
                )
        if self.export_paths:
            lines.append("  exports: " + ", ".join(self.export_paths))
        return "\n".join(lines)


__all__ = ["OpReport", "REPORT_FILE", "RunReport"]
