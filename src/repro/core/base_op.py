"""Base classes of the standardized operator (OP) pool.

The paper organises OPs into four primary categories (Table 1): Formatters,
Mappers, Filters and Deduplicators; we additionally provide Selectors, which
the original system uses for frequency / top-k subsetting tools.  The key
design decision reproduced here is the decoupling of stats computation from
the boolean keep/drop decision in Filters (``compute_stats`` vs ``process``),
which lets the Analyzer consume statistics for the *whole* dataset and lets
fused operators share per-sample contexts.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.core.dataset import NestedDataset
from repro.core.sample import Fields, ensure_stats, get_field, set_field


class OP:
    """Common behaviour of every operator: a name, a text key and parameters."""

    _name = "op"

    def __init__(self, text_key: str = Fields.text, **kwargs: Any):
        self.text_key = text_key
        self.extra_params = dict(kwargs)

    @property
    def name(self) -> str:
        """Registered snake_case name of this operator."""
        return self._name

    def config(self) -> dict:
        """Return the constructor parameters of this OP (for recipes / tracing)."""
        params = {"text_key": self.text_key}
        for key, value in vars(self).items():
            if key.startswith("_") or key in ("text_key", "extra_params"):
                continue
            if isinstance(value, (bool, int, float, str, list, tuple, dict, type(None))):
                params[key] = value
        return params

    def get_text(self, sample: dict) -> str:
        """Return the text of a sample at this OP's text key (empty string if missing)."""
        value = get_field(sample, self.text_key, "")
        return value if isinstance(value, str) else ""

    def set_text(self, sample: dict, text: str) -> dict:
        """Write the text back to the sample at this OP's text key."""
        return set_field(sample, self.text_key, text)

    def run(self, dataset: NestedDataset, **kwargs: Any) -> NestedDataset:  # pragma: no cover
        """Apply the OP to a dataset; implemented by category base classes."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class Mapper(OP):
    """In-place text editing on single samples (or batched multi-sample editing)."""

    _batched = False

    def process(self, sample: dict) -> dict:
        """Transform one sample and return it."""
        raise NotImplementedError

    def process_batched(self, samples: list[dict]) -> list[dict]:
        """Transform a batch of samples; default maps :meth:`process` over the batch."""
        return [self.process(sample) for sample in samples]

    def run(
        self, dataset: NestedDataset, tracer: Any = None, pool: Any = None, **kwargs: Any
    ) -> NestedDataset:
        """Apply the mapper to every sample of the dataset.

        ``pool`` is an optional :class:`repro.parallel.WorkerPool` handle; when
        this mapper is resident in the pool the rows are processed by the
        worker processes in chunks instead of in-process.
        """
        if self._batched:
            mapped = dataset.map(self.process_batched, batched=True, pool=pool)
        else:
            mapped = dataset.map(self.process, pool=pool)
        if tracer is not None:
            tracer.trace_mapper(self.name, dataset, mapped, self.text_key)
        return mapped


class Filter(OP):
    """Conditional sample removal, with stats computation decoupled from the decision."""

    def __init__(self, text_key: str = Fields.text, **kwargs: Any):
        super().__init__(text_key=text_key, **kwargs)

    #: names of context entries this filter can share with other fused filters
    context_keys: tuple[str, ...] = ()

    def compute_stats(self, sample: dict, context: bool = False) -> dict:
        """Compute and store this filter's statistics on the sample."""
        raise NotImplementedError

    def process(self, sample: dict) -> bool:
        """Return True to keep the sample, False to drop it."""
        raise NotImplementedError

    def run(
        self, dataset: NestedDataset, tracer: Any = None, pool: Any = None, **kwargs: Any
    ) -> NestedDataset:
        """Compute stats for every sample, then keep only the passing samples.

        Stats computation and the keep/drop decision happen in one pass over
        the rows (the decoupled ``compute_stats`` / ``process`` methods are
        still exposed separately for the Analyzer and for fused execution).
        With a :class:`repro.parallel.WorkerPool` handle holding this filter,
        that pass runs chunk-parallel in the worker processes; the resulting
        rows (and therefore fingerprints and cache keys) are identical.
        """
        if pool is not None and pool.holds(self) and len(dataset) > 1:
            stat_rows, keep_flags = pool.filter_rows(self, dataset.to_list())
        else:
            stat_rows = []
            keep_flags = []
            for row in dataset:
                row = self.compute_stats(dict(row))
                stat_rows.append(row)
                keep_flags.append(bool(self.process(row)))
        kept_rows = [row for row, keep in zip(stat_rows, keep_flags) if keep]
        filtered = NestedDataset.from_list(kept_rows)
        if tracer is not None:
            with_stats = NestedDataset.from_list(stat_rows)
            tracer.trace_filter(self.name, with_stats, filtered)
        return filtered


class Deduplicator(OP):
    """Duplicate removal operating at the dataset level via per-sample hashes."""

    def compute_hash(self, sample: dict) -> dict:
        """Compute and store this deduplicator's hash/signature on the sample."""
        raise NotImplementedError

    def process(self, dataset: NestedDataset, show_num: int = 0) -> tuple[NestedDataset, list]:
        """Return the deduplicated dataset and up to ``show_num`` duplicate pairs."""
        raise NotImplementedError

    def run(self, dataset: NestedDataset, tracer: Any = None, **kwargs: Any) -> NestedDataset:
        """Hash every sample and drop duplicates, tracing pairs when requested."""
        hashed = dataset.map(lambda sample: self.compute_hash(dict(sample)))
        show_num = 10 if tracer is not None else 0
        deduped, duplicate_pairs = self.process(hashed, show_num=show_num)
        if tracer is not None:
            tracer.trace_deduplicator(self.name, len(hashed), len(deduped), duplicate_pairs)
        return deduped


class Selector(OP):
    """Dataset-level sample selection (top-k, frequency buckets, random subsets)."""

    def process(self, dataset: NestedDataset) -> NestedDataset:
        """Return the selected subset of the dataset."""
        raise NotImplementedError

    def run(self, dataset: NestedDataset, tracer: Any = None, **kwargs: Any) -> NestedDataset:
        """Apply the selector and trace the size change."""
        selected = self.process(dataset)
        if tracer is not None:
            tracer.trace_filter(self.name, dataset, selected)
        return selected


class Formatter:
    """Load raw files (or in-memory payloads) and unify them into a dataset."""

    _name = "formatter"
    SUFFIXES: tuple[str, ...] = ()

    def __init__(self, dataset_path: str | None = None, text_keys: Sequence[str] = (Fields.text,), **kwargs: Any):
        self.dataset_path = dataset_path
        self.text_keys = list(text_keys)
        self.extra_params = dict(kwargs)

    @property
    def name(self) -> str:
        """Registered snake_case name of this formatter."""
        return self._name

    def load_dataset(self) -> NestedDataset:
        """Load and unify the source into a :class:`NestedDataset`."""
        raise NotImplementedError

    @staticmethod
    def unify_samples(samples: Iterable[dict], text_keys: Sequence[str]) -> list[dict]:
        """Unify raw records: ensure a ``text`` field exists and stats start empty.

        When the configured text keys are missing, any string field is
        promoted to ``text``; non-text payloads are serialised.
        """
        unified: list[dict] = []
        for record in samples:
            sample = dict(record)
            if Fields.text not in sample:
                text_value = None
                for key in text_keys:
                    value = get_field(sample, key)
                    if isinstance(value, str):
                        text_value = value
                        break
                if text_value is None:
                    for key, value in sample.items():
                        if isinstance(value, str):
                            text_value = value
                            break
                sample[Fields.text] = text_value if text_value is not None else ""
            ensure_stats(sample)
            unified.append(sample)
        return unified
