"""Base classes of the standardized operator (OP) pool.

The paper organises OPs into four primary categories (Table 1): Formatters,
Mappers, Filters and Deduplicators; we additionally provide Selectors, which
the original system uses for frequency / top-k subsetting tools.  The key
design decision reproduced here is the decoupling of stats computation from
the boolean keep/drop decision in Filters (``compute_stats`` vs ``process``),
which lets the Analyzer consume statistics for the *whole* dataset and lets
fused operators share per-sample contexts.

Execution is **batched columnar by default**: ``run`` hands operators column
batches (``dict[str, list]`` slices, see :mod:`repro.core.batch`) instead of
materialising one dict per row.  Every batched entry point
(``process_batched`` / ``compute_stats_batched``/ ``compute_hash_batched``)
has a per-row fallback, so subclasses only implement the per-sample method
unless they have a genuinely vectorised implementation.  ``run(...,
batched=False)`` forces the legacy per-row path; the equivalence test suite
asserts both paths produce identical rows, stats and fingerprints.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.core.batch import (
    batch_select,
    batch_to_rows,
    resolve_batch_size,
    rows_to_batch,
)
from repro.core.dataset import NestedDataset
from repro.core.sample import Fields, ensure_stats, get_field, set_field


class OP:
    """Common behaviour of every operator: a name, a text key and parameters."""

    _name = "op"

    #: whether ``run`` uses the batched columnar path by default
    _batched = True

    #: per-parameter schema overrides (bounds, choices, docs) merged into the
    #: signature-derived :class:`repro.core.schema.OpSchema`; subclasses add
    #: entries like ``{"max_ratio": {"min_value": 0.0, "max_value": 1.0}}``
    PARAM_SPECS: dict[str, dict] = {}

    @classmethod
    def schema(cls) -> Any:
        """Typed parameter schema of this operator (see :mod:`repro.core.schema`)."""
        from repro.core.schema import schema_for

        return schema_for(cls)

    def __init__(self, text_key: str = Fields.text, **kwargs: Any):
        self.text_key = text_key
        # execution tuning, not op semantics: kept out of config() (and
        # therefore out of cache keys) via the underscore prefix; None means
        # "unset" so a recipe-level batch_size can still apply
        self._batch_size: int | None = kwargs.pop("batch_size", None)
        self.extra_params = dict(kwargs)

    @property
    def name(self) -> str:
        """Registered snake_case name of this operator."""
        return self._name

    def config(self) -> dict:
        """Return the constructor parameters of this OP (for recipes / tracing)."""
        params = {"text_key": self.text_key}
        for key, value in vars(self).items():
            if key.startswith("_") or key in ("text_key", "extra_params"):
                continue
            if isinstance(value, (bool, int, float, str, list, tuple, dict, type(None))):
                params[key] = value
        return params

    #: soft bound on text characters per batch; long-document datasets get
    #: proportionally smaller batches so batch-wide working sets (token
    #: columns, codepoint buffers) stay a few hundred KB regardless of
    #: document size.  Results are batch-boundary independent, so this is
    #: purely a memory/locality knob.
    TARGET_BATCH_CHARS = 1 << 16

    @property
    def batch_size(self) -> int:
        """Rows per batch of the batched execution path."""
        return resolve_batch_size(self._batch_size)

    def effective_batch_size(self, dataset: NestedDataset) -> int:
        """Batch size adapted to the dataset's average text length.

        An explicit per-op/recipe ``batch_size`` is honoured as-is; the
        default shrinks so a batch holds roughly :data:`TARGET_BATCH_CHARS`
        characters of text.
        """
        size = self.batch_size
        if self._batch_size is not None or len(dataset) == 0:
            return size
        column = dataset._columns.get(self.text_key) if "." not in self.text_key else None
        if not column:
            return size
        probe = column[:32]
        average = sum(len(text) for text in probe if isinstance(text, str)) / len(probe)
        if average <= 0:
            return size
        return max(16, min(size, int(self.TARGET_BATCH_CHARS / average)))

    def set_batch_size(self, batch_size: int | None, override: bool = False) -> None:
        """Apply a recipe-level batch size; per-op settings win unless ``override``."""
        if batch_size is not None and (override or self._batch_size is None):
            self._batch_size = int(batch_size)

    def get_text(self, sample: dict) -> str:
        """Return the text of a sample at this OP's text key (empty string if missing)."""
        value = get_field(sample, self.text_key, "")
        return value if isinstance(value, str) else ""

    def set_text(self, sample: dict, text: str) -> dict:
        """Write the text back to the sample at this OP's text key."""
        return set_field(sample, self.text_key, text)

    def run(self, dataset: NestedDataset, **kwargs: Any) -> NestedDataset:  # pragma: no cover
        """Apply the OP to a dataset; implemented by category base classes."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def op_category(op_or_cls: Any) -> str:
    """Category label of an operator instance or class.

    One of ``mapper`` / ``filter`` / ``deduplicator`` / ``selector`` /
    ``formatter`` / ``op`` — the vocabulary shared by execution plans, run
    reports and the generated operator catalog.  Fused filters are Filters.
    """
    cls = op_or_cls if isinstance(op_or_cls, type) else type(op_or_cls)
    for base, label in (
        (Mapper, "mapper"),
        (Filter, "filter"),
        (Deduplicator, "deduplicator"),
        (Selector, "selector"),
        (Formatter, "formatter"),
    ):
        if issubclass(cls, base):
            return label
    return "op"


class Mapper(OP):
    """In-place text editing on single samples (or batched multi-sample editing)."""

    def process(self, sample: dict) -> dict:
        """Transform one sample and return it."""
        raise NotImplementedError

    def process_batched(self, samples: dict) -> dict:
        """Transform a column batch (``dict[str, list]``) and return one.

        The default materialises rows and maps :meth:`process` over them;
        vectorised mappers override this to operate on whole columns.  The
        returned batch may have a different length (multi-sample mappers).
        """
        rows = [self.process(row) for row in batch_to_rows(samples)]
        return rows_to_batch(rows, column_order=samples)

    def run(
        self,
        dataset: NestedDataset,
        tracer: Any = None,
        pool: Any = None,
        batched: bool | None = None,
        **kwargs: Any,
    ) -> NestedDataset:
        """Apply the mapper to every sample of the dataset.

        Batched columnar execution is the default; ``batched=False`` forces
        the legacy per-row path (the fingerprint is identical either way).
        ``pool`` is an optional :class:`repro.parallel.WorkerPool` handle; when
        this mapper is resident in the pool the batches (or rows) are
        processed by the worker processes instead of in-process.
        """
        fingerprint = dataset.derive_fingerprint(self.name, self.config())
        if self._batched if batched is None else batched:
            mapped = dataset.map_batches(
                self.process_batched,
                batch_size=self.effective_batch_size(dataset),
                new_fingerprint=fingerprint,
                pool=pool,
            )
        else:
            mapped = dataset.map(self.process, pool=pool, new_fingerprint=fingerprint)
        if tracer is not None:
            tracer.trace_mapper(self.name, dataset, mapped, self.text_key)
        return mapped


class Filter(OP):
    """Conditional sample removal, with stats computation decoupled from the decision."""

    def __init__(self, text_key: str = Fields.text, **kwargs: Any):
        super().__init__(text_key=text_key, **kwargs)

    #: names of context entries this filter can share with other fused filters
    context_keys: tuple[str, ...] = ()

    def compute_stats(self, sample: dict, context: bool = False) -> dict:
        """Compute and store this filter's statistics on the sample."""
        raise NotImplementedError

    def process(self, sample: dict) -> bool:
        """Return True to keep the sample, False to drop it."""
        raise NotImplementedError

    def compute_stats_batched(self, samples: dict, context: dict | None = None) -> dict:
        """Compute stats for a column batch, returning the annotated batch.

        ``context`` is an optional batch-level shared store (row-aligned
        column lists keyed by :class:`repro.core.context.ContextKeys`) that
        fused execution threads through its members so e.g. tokenisation
        happens once per batch.  The default materialises rows and maps
        :meth:`compute_stats`; vectorised filters override it.
        """
        del context  # the per-row fallback cannot share batch-level values
        rows = [self.compute_stats(row) for row in batch_to_rows(samples)]
        return rows_to_batch(rows, column_order=samples)

    def process_batched(self, samples: dict) -> list[bool]:
        """Keep/drop decision for every row of a stat-annotated column batch."""
        return [bool(self.process(row)) for row in batch_to_rows(samples)]

    def filter_batched(self, samples: dict) -> tuple[dict, list[bool]]:
        """Stats + decision for one batch: ``(surviving_batch, keep_flags)``.

        Subclasses with short-circuit opportunities (``FusedFilter``) override
        this; rejected rows may then carry partial stats, which is invisible
        in the output because they are dropped.
        """
        samples = self.compute_stats_batched(samples)
        flags = self.process_batched(samples)
        if all(flags):
            return samples, flags
        kept = batch_select(samples, [i for i, keep in enumerate(flags) if keep])
        return kept, flags

    def run(
        self,
        dataset: NestedDataset,
        tracer: Any = None,
        pool: Any = None,
        batched: bool | None = None,
        **kwargs: Any,
    ) -> NestedDataset:
        """Compute stats for every sample, then keep only the passing samples.

        Stats computation and the keep/drop decision happen in one pass (the
        decoupled ``compute_stats`` / ``process`` methods are still exposed
        separately for the Analyzer and for fused execution).  The default
        path is batched columnar; ``batched=False`` forces the legacy per-row
        loop.  With a :class:`repro.parallel.WorkerPool` handle holding this
        filter the pass runs chunk-parallel in the worker processes; rows,
        fingerprints and cache keys are identical for every strategy.
        """
        fingerprint = dataset.derive_fingerprint(self.name, self.config())
        use_batched = self._batched if batched is None else batched
        if use_batched:
            return self._run_batched(dataset, fingerprint, tracer=tracer, pool=pool)
        if pool is not None and pool.holds(self) and len(dataset) > 1:
            stat_rows, keep_flags = pool.filter_rows(self, dataset.to_list())
        else:
            stat_rows = []
            keep_flags = []
            for row in dataset:
                row = self.compute_stats(dict(row))
                stat_rows.append(row)
                keep_flags.append(bool(self.process(row)))
        kept_rows = [row for row, keep in zip(stat_rows, keep_flags) if keep]
        filtered = NestedDataset.from_list(kept_rows, fingerprint=fingerprint)
        if tracer is not None:
            with_stats = NestedDataset.from_list(stat_rows)
            tracer.trace_filter(self.name, with_stats, filtered)
        return filtered

    def _run_batched(
        self,
        dataset: NestedDataset,
        fingerprint: str,
        tracer: Any = None,
        pool: Any = None,
    ) -> NestedDataset:
        """Batched columnar filter pass (optionally dispatched to a pool).

        Without a tracer, batches take the short-circuit
        :meth:`filter_batched` path that only returns surviving rows; with a
        tracer, full stats are computed for every row so the trace reflects
        the rejected rows' statistics, exactly like the per-row path.
        """
        full_stats = tracer is not None
        batch_size = self.effective_batch_size(dataset)
        if pool is not None and pool.holds(self) and len(dataset) > 1:
            results = pool.filter_column_batches(
                self, list(dataset.iter_batches(batch_size)), full_stats=full_stats
            )
        else:
            results = []
            for batch in dataset.iter_batches(batch_size):
                if full_stats:
                    batch = self.compute_stats_batched(batch)
                    flags = self.process_batched(batch)
                    results.append((batch, flags))
                else:
                    results.append(self.filter_batched(batch))
        if full_stats:
            kept_batches = [
                batch_select(batch, [i for i, keep in enumerate(flags) if keep])
                for batch, flags in results
            ]
            stat_batches = [batch for batch, _flags in results]
        else:
            kept_batches = [batch for batch, _flags in results]
            stat_batches = []
        filtered = NestedDataset.from_batches(kept_batches, fingerprint=fingerprint)
        if tracer is not None:
            with_stats = NestedDataset.from_batches(stat_batches)
            tracer.trace_filter(self.name, with_stats, filtered)
        return filtered


class Deduplicator(OP):
    """Duplicate removal operating at the dataset level via per-sample hashes."""

    def compute_hash(self, sample: dict) -> dict:
        """Compute and store this deduplicator's hash/signature on the sample."""
        raise NotImplementedError

    def compute_hash_batched(self, samples: dict) -> dict:
        """Hash a column batch; default maps :meth:`compute_hash` over rows."""
        rows = [self.compute_hash(row) for row in batch_to_rows(samples)]
        return rows_to_batch(rows, column_order=samples)

    def process(self, dataset: NestedDataset, show_num: int = 0) -> tuple[NestedDataset, list]:
        """Return the deduplicated dataset and up to ``show_num`` duplicate pairs."""
        raise NotImplementedError

    def run(
        self,
        dataset: NestedDataset,
        tracer: Any = None,
        pool: Any = None,
        batched: bool | None = None,
        **kwargs: Any,
    ) -> NestedDataset:
        """Hash every sample and drop duplicates, tracing pairs when requested.

        The hashing stage is sample-level, so a :class:`repro.parallel.
        WorkerPool` handle parallelises it; the duplicate clustering itself
        stays global.
        """
        hash_fingerprint = dataset.derive_fingerprint(f"{self.name}:hash", self.config())
        if self._batched if batched is None else batched:
            hashed = dataset.map_batches(
                self.compute_hash_batched,
                batch_size=self.effective_batch_size(dataset),
                new_fingerprint=hash_fingerprint,
                pool=pool,
            )
        else:
            hashed = dataset.map(
                lambda sample: self.compute_hash(dict(sample)),
                new_fingerprint=hash_fingerprint,
            )
        show_num = 10 if tracer is not None else 0
        deduped, duplicate_pairs = self.process(hashed, show_num=show_num)
        if tracer is not None:
            tracer.trace_deduplicator(self.name, len(hashed), len(deduped), duplicate_pairs)
        return deduped


class Selector(OP):
    """Dataset-level sample selection (top-k, frequency buckets, random subsets)."""

    def process(self, dataset: NestedDataset) -> NestedDataset:
        """Return the selected subset of the dataset."""
        raise NotImplementedError

    def run(self, dataset: NestedDataset, tracer: Any = None, **kwargs: Any) -> NestedDataset:
        """Apply the selector and trace the size change."""
        selected = self.process(dataset)
        if tracer is not None:
            tracer.trace_filter(self.name, dataset, selected)
        return selected


class Formatter:
    """Load raw files (or in-memory payloads) and unify them into a dataset."""

    _name = "formatter"
    SUFFIXES: tuple[str, ...] = ()

    def __init__(self, dataset_path: str | None = None, text_keys: Sequence[str] = (Fields.text,), **kwargs: Any):
        self.dataset_path = dataset_path
        self.text_keys = list(text_keys)
        self.extra_params = dict(kwargs)

    @property
    def name(self) -> str:
        """Registered snake_case name of this formatter."""
        return self._name

    def load_dataset(self) -> NestedDataset:
        """Load and unify the source into a :class:`NestedDataset`."""
        raise NotImplementedError

    def iter_records(self) -> "Iterable[dict]":
        """Lazily yield unified samples, one at a time.

        The streaming executor consumes this instead of :meth:`load_dataset`
        so the full corpus is never materialised.  File-backed formatters
        (see :class:`repro.formats.sharded.ShardedFileFormatter`) stream
        shard by shard; this default falls back to the materialised dataset
        for formatters that only implement :meth:`load_dataset`.
        """
        yield from self.load_dataset()

    @staticmethod
    def unify_sample(record: dict, text_keys: Sequence[str]) -> dict:
        """Unify one raw record: ensure a ``text`` field exists and stats start empty.

        When the configured text keys are missing, any string field is
        promoted to ``text``; records without any string field get ``""``.
        """
        sample = dict(record)
        if Fields.text not in sample:
            text_value = None
            for key in text_keys:
                value = get_field(sample, key)
                if isinstance(value, str):
                    text_value = value
                    break
            if text_value is None:
                for key, value in sample.items():
                    if isinstance(value, str):
                        text_value = value
                        break
            sample[Fields.text] = text_value if text_value is not None else ""
        ensure_stats(sample)
        return sample

    @classmethod
    def unify_samples(cls, samples: Iterable[dict], text_keys: Sequence[str]) -> list[dict]:
        """Unify raw records in bulk (list view of :meth:`unify_sample`)."""
        return [cls.unify_sample(record, text_keys) for record in samples]
