"""The end-to-end pipeline executor tying together every core component.

``Executor`` takes a validated :class:`~repro.core.config.RecipeConfig` and
runs the full pipeline: load/unify the dataset via a Formatter, instantiate the
operator list, optionally fuse and reorder operators, execute them with cache,
checkpoint and tracing support, and export the processed dataset.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.core.cache import CacheManager
from repro.core.checkpoint import CheckpointManager
from repro.core.config import RecipeConfig, load_config
from repro.core.dataset import NestedDataset
from repro.core.exporter import Exporter
from repro.core.fusion import describe_plan, fuse_operators
from repro.core.monitor import ResourceMonitor
from repro.core.tracer import Tracer


class Executor:
    """Run a data recipe end to end.

    Parameters
    ----------
    config:
        Anything :func:`repro.core.config.load_config` accepts (dict, path or
        RecipeConfig instance).
    """

    def __init__(self, config: dict | str | Path | RecipeConfig):
        # imported lazily to avoid a circular import at package-init time
        from repro.ops import load_ops

        self.cfg = load_config(config)
        work_dir = Path(self.cfg.work_dir)
        self.tracer = (
            Tracer(show_num=self.cfg.trace_num, trace_dir=work_dir / "trace")
            if self.cfg.open_tracer
            else None
        )
        self.cache = CacheManager(
            cache_dir=self.cfg.cache_dir or (work_dir / "cache"),
            compression=self.cfg.cache_compression,
            enabled=self.cfg.use_cache,
        )
        self.checkpoint = CheckpointManager(
            checkpoint_dir=self.cfg.checkpoint_dir or (work_dir / "checkpoint"),
            enabled=self.cfg.use_checkpoint,
        )
        self.ops = load_ops(self.cfg.process)
        if self.cfg.op_fusion:
            self.ops = fuse_operators(self.ops)
        self.plan = describe_plan(self.ops)
        self.last_report: dict[str, Any] = {}

    # ------------------------------------------------------------------
    def _load_input(self, dataset: NestedDataset | None) -> NestedDataset:
        from repro.formats.load import load_dataset

        if dataset is not None:
            return dataset
        if not self.cfg.dataset_path:
            raise ValueError("no dataset given and no dataset_path configured")
        return load_dataset(self.cfg.dataset_path, text_keys=tuple(self.cfg.text_keys))

    def run(self, dataset: NestedDataset | None = None) -> NestedDataset:
        """Execute the configured pipeline and return the processed dataset."""
        monitor = ResourceMonitor()
        with monitor:
            current = self._load_input(dataset)
            start_index = 0
            op_names = [op.name for op in self.ops]

            if self.checkpoint.enabled and self.checkpoint.exists():
                restored, op_index, saved_names = self.checkpoint.load()
                # Resume only when the recipe prefix matches the saved state.
                if saved_names[:op_index] == op_names[:op_index]:
                    current, start_index = restored, op_index

            for index in range(start_index, len(self.ops)):
                op = self.ops[index]
                cache_key = CacheManager.make_key(current.fingerprint, op.name, op.config())
                cached = self.cache.load(cache_key)
                if cached is not None:
                    current = cached
                    continue
                current = op.run(current, tracer=self.tracer)
                self.cache.save(cache_key, current)
                self.checkpoint.save(current, index + 1, op_names)

            if self.cfg.export_path:
                Exporter(
                    self.cfg.export_path, keep_stats=self.cfg.keep_stats_in_export
                ).export(current)
        self.last_report = {
            "plan": self.plan,
            "num_output_samples": len(current),
            "resources": monitor.report.as_dict() if monitor.report else {},
            "cache": {"hits": self.cache.hits, "misses": self.cache.misses},
            "trace": self.tracer.summary() if self.tracer else [],
        }
        return current
