"""The end-to-end pipeline executor tying together every core component.

``Executor`` takes a validated :class:`~repro.core.config.RecipeConfig` and
runs the full pipeline: load/unify the dataset via a Formatter, instantiate the
operator list, optionally fuse and reorder operators, execute them with cache,
checkpoint and tracing support, and export the processed dataset.

When the recipe sets ``np > 1`` the executor lazily creates a persistent
:class:`repro.parallel.WorkerPool` (workers hold the instantiated op list) and
routes every Mapper/Filter stage through it as row chunks; dataset-level
operators (Deduplicators, Selectors) still run globally on the merged data.
The pool survives across ``run`` calls — close the executor (or use it as a
context manager) to shut the workers down.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.core.base_op import Deduplicator, Filter, Mapper
from repro.core.cache import CacheManager
from repro.core.checkpoint import CheckpointManager
from repro.core.config import RecipeConfig, load_config
from repro.core.dataset import NestedDataset
from repro.core.exporter import Exporter
from repro.core.fusion import describe_plan
from repro.core.monitor import ResourceMonitor
from repro.core.tracer import Tracer
from repro.parallel import WorkerPool


class Executor:
    """Run a data recipe end to end.

    Parameters
    ----------
    config:
        Anything :func:`repro.core.config.load_config` accepts (dict, path or
        RecipeConfig instance).
    """

    def __init__(self, config: dict | str | Path | RecipeConfig):
        # imported lazily to avoid a circular import at package-init time
        from repro.ops import build_ops

        self.cfg = load_config(config)
        work_dir = Path(self.cfg.work_dir)
        self.tracer = (
            Tracer(show_num=self.cfg.trace_num, trace_dir=work_dir / "trace")
            if self.cfg.open_tracer
            else None
        )
        self.cache = CacheManager(
            cache_dir=self.cfg.cache_dir or (work_dir / "cache"),
            compression=self.cfg.cache_compression,
            enabled=self.cfg.use_cache,
        )
        self.checkpoint = CheckpointManager(
            checkpoint_dir=self.cfg.checkpoint_dir or (work_dir / "checkpoint"),
            enabled=self.cfg.use_checkpoint,
        )
        self.ops = build_ops(
            self.cfg.process, op_fusion=self.cfg.op_fusion, batch_size=self.cfg.batch_size
        )
        self.plan = describe_plan(self.ops)
        self.last_report: dict[str, Any] = {}
        self._pool: WorkerPool | None = None

    # ------------------------------------------------------------------
    def _ensure_pool(self) -> WorkerPool | None:
        """Return the persistent worker pool when ``np > 1`` (created lazily)."""
        if self.cfg.np <= 1:
            return None
        if self._pool is None or not self._pool.alive:
            self._pool = WorkerPool(
                self.cfg.np,
                ops=self.ops,
                process_list=self.cfg.process,
                op_fusion=self.cfg.op_fusion,
            )
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (no-op for serial executors)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _load_input(self, dataset: NestedDataset | None) -> NestedDataset:
        from repro.formats.load import load_dataset

        if dataset is not None:
            return dataset
        if not self.cfg.dataset_path:
            raise ValueError("no dataset given and no dataset_path configured")
        return load_dataset(self.cfg.dataset_path, text_keys=tuple(self.cfg.text_keys))

    def run(self, dataset: NestedDataset | None = None) -> NestedDataset:
        """Execute the configured pipeline and return the processed dataset."""
        monitor = ResourceMonitor()
        with monitor:
            current = self._load_input(dataset)
            start_index = 0
            op_names = [op.name for op in self.ops]

            if self.checkpoint.enabled and self.checkpoint.exists():
                restored, op_index, saved_names = self.checkpoint.load()
                # Resume only when the recipe prefix matches the saved state.
                if saved_names[:op_index] == op_names[:op_index]:
                    current, start_index = restored, op_index

            # index one past the last op whose result the checkpoint holds;
            # cache-hit streaks defer their save (a resume from an older
            # checkpoint just replays the same cache hits), so a warm-cache
            # run pays one checkpoint write instead of one per cached op
            saved_index = start_index
            for index in range(start_index, len(self.ops)):
                op = self.ops[index]
                cache_key = CacheManager.make_key(current.fingerprint, op.name, op.config())
                cached = self.cache.load(cache_key)
                if cached is not None:
                    current = cached
                    continue
                if isinstance(op, (Mapper, Filter, Deduplicator)):
                    # pool creation is deferred to the first actually-executed
                    # op with a sample-level stage, so fully cache-hit runs
                    # never fork workers (a Deduplicator's hashing stage is
                    # sample-level; its clustering stays global)
                    current = op.run(current, tracer=self.tracer, pool=self._ensure_pool())
                else:
                    current = op.run(current, tracer=self.tracer)
                self.cache.save(cache_key, current)
                self.checkpoint.save(current, index + 1, op_names)
                saved_index = index + 1
            if saved_index < len(self.ops):
                # the run ended on a cache-hit streak: persist the final state
                # once so a later resume restarts past it, not at a stale index
                self.checkpoint.save(current, len(self.ops), op_names)

            if self.cfg.export_path:
                Exporter(
                    self.cfg.export_path, keep_stats=self.cfg.keep_stats_in_export
                ).export(current)
        self.last_report = {
            "plan": self.plan,
            "num_output_samples": len(current),
            "resources": monitor.report.as_dict() if monitor.report else {},
            "cache": {"hits": self.cache.hits, "misses": self.cache.misses},
            "trace": self.tracer.summary() if self.tracer else [],
            "parallel": {
                "np": self.cfg.np,
                "batch_size": self.cfg.batch_size,
                # None when no pool was needed (np=1, or every stage cache-hit)
                "start_method": self._pool.start_method if self._pool is not None else None,
            },
        }
        return current
