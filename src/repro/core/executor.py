"""The end-to-end pipeline executor tying together every core component.

``Executor`` takes a validated :class:`~repro.core.config.RecipeConfig` and
runs the full pipeline: load/unify the dataset via a Formatter, instantiate the
operator list, optionally fuse and reorder operators, execute them with cache,
checkpoint and tracing support, and export the processed dataset.

When the recipe sets ``np > 1`` the executor lazily creates a persistent
:class:`repro.parallel.WorkerPool` (workers hold the instantiated op list) and
routes every Mapper/Filter stage through it as row chunks; dataset-level
operators (Deduplicators, Selectors) still run globally on the merged data.
The pool survives across ``run`` calls — close the executor (or use it as a
context manager) to shut the workers down.

Every run — in-memory or streaming — emits a unified
:class:`repro.core.report.RunReport` (``last_report``, also persisted to
``<work_dir>/report.json``): per-op rows in/out, wall time, throughput and
peak RSS from the :class:`repro.core.monitor.RunProfiler`, plus cache
counters, the tracer summary and the run-level resource profile.  Streaming
runs reach observability parity with the in-memory path: the tracer
accumulates incrementally across shards (:class:`repro.core.tracer.
StreamingTracer`) and ``use_cache`` replays cached *shard* outputs keyed on
``(op fingerprint chain, shard signature)``.
"""

from __future__ import annotations

import tempfile
import warnings
from pathlib import Path
from typing import Any, Iterator

from repro.core.base_op import Deduplicator, Filter, Mapper, Selector, op_category
from repro.core.cache import CacheManager
from repro.core.checkpoint import CheckpointManager
from repro.core.config import RecipeConfig, load_config
from repro.core.errors import ConfigError, DataflowWarning, OpExecutionError
from repro.core.dataset import NestedDataset, _stable_hash
from repro.core.exporter import Exporter
from repro.core.faults import (
    ErrorPolicy,
    FaultTracker,
    QuarantineWriter,
    describe_failure,
    retry_call,
    run_op_with_policy,
)
from repro.core.fusion import describe_plan
from repro.core.monitor import ResourceMonitor, RunProfiler
from repro.core.planner import ExecutionPlan, ResourceBudget, plan_execution
from repro.core.report import REPORT_FILE, RunReport
from repro.core.sample import Fields, HashKeys
from repro.core.stream import (
    ROW_ID_COLUMN,
    ShardStore,
    StreamSegment,
    apply_keep_mask,
    iter_record_shards,
    op_config_hash,
    plan_segments,
    resolve_global_keep,
    run_sample_ops,
    signature_column_names,
    stage_chain_hash,
)
from repro.core.tracer import StreamingTracer, Tracer
from repro.parallel import WorkerPool


class Executor:
    """Run a data recipe end to end.

    Parameters
    ----------
    config:
        Anything :func:`repro.core.config.load_config` accepts (dict, path or
        RecipeConfig instance).
    shared_pool:
        When True, parallel runs borrow the process-wide pool from
        :func:`repro.parallel.get_shared_pool` instead of forking a private
        one, and :meth:`close` leaves it alive for the next borrower.  This
        is how the ``repro serve`` job runtime keeps workers warm across
        jobs: every job's executor resolves its own op instances against the
        shared pool's residents by config equivalence.
    """

    def __init__(
        self, config: dict | str | Path | RecipeConfig, shared_pool: bool = False
    ):
        # imported lazily to avoid a circular import at package-init time
        from repro.ops import build_ops

        self.cfg = load_config(config)
        work_dir = Path(self.cfg.work_dir)
        self.tracer = (
            Tracer(show_num=self.cfg.trace_num, trace_dir=work_dir / "trace")
            if self.cfg.open_tracer
            else None
        )
        self.cache = CacheManager(
            cache_dir=self.cfg.cache_dir or (work_dir / "cache"),
            compression=self.cfg.cache_compression,
            enabled=self.cfg.use_cache,
        )
        self.checkpoint = CheckpointManager(
            checkpoint_dir=self.cfg.checkpoint_dir or (work_dir / "checkpoint"),
            enabled=self.cfg.use_checkpoint,
        )
        self.ops = build_ops(
            self.cfg.process, op_fusion=self.cfg.op_fusion, batch_size=self.cfg.batch_size
        )
        self.plan = describe_plan(self.ops)
        #: unified report of the most recent run (Mapping-compatible)
        self.last_report: RunReport = RunReport(plan=self.plan)
        #: mode decision of the most recent :meth:`execute` call (None before)
        self.last_plan: ExecutionPlan | None = None
        #: planner decision to embed into the next run's report (set by execute)
        self._planner_payload: dict | None = None
        self._pool: WorkerPool | None = None
        self._shared_pool = bool(shared_pool)
        self._profiler = RunProfiler()
        self._stream_tracer: StreamingTracer | None = None
        #: the fault policy of every run of this executor (from the recipe)
        self.policy = ErrorPolicy.from_config(self.cfg)
        self._faults = FaultTracker()
        self._quarantine: QuarantineWriter | None = None

    # ------------------------------------------------------------------
    def _ensure_pool(self) -> WorkerPool | None:
        """Return the persistent worker pool when ``np > 1`` (created lazily).

        With ``shared_pool=True`` the pool comes from the process-wide
        registry (one set of workers per ``(np, recipe, fusion)`` shared by
        every borrower); otherwise the executor owns a private pool.  Either
        way this run's fault policy and ledger are (re)applied on every call.
        """
        if self.cfg.np <= 1:
            return None
        if self._pool is None or not self._pool.alive:
            if self._shared_pool:
                from repro.parallel import get_shared_pool

                self._pool = get_shared_pool(
                    self.cfg.np,
                    self.cfg.process,
                    op_fusion=self.cfg.op_fusion,
                    task_timeout_s=self.policy.task_timeout_s,
                    max_rebuilds=self.policy.max_pool_rebuilds,
                    rebuild_backoff_s=self.policy.backoff_s,
                )
            else:
                self._pool = WorkerPool(
                    self.cfg.np,
                    ops=self.ops,
                    process_list=self.cfg.process,
                    op_fusion=self.cfg.op_fusion,
                    task_timeout_s=self.policy.task_timeout_s,
                    max_rebuilds=self.policy.max_pool_rebuilds,
                    rebuild_backoff_s=self.policy.backoff_s,
                )
        # the pool outlives individual runs; point it at the current ledger
        self._pool.fault_tracker = self._faults
        return self._pool

    # ------------------------------------------------------------------
    def _begin_faults(self) -> None:
        """Start a fresh fault ledger (and quarantine export) for one run."""
        self._faults = FaultTracker()
        if self._pool is not None:
            self._pool.fault_tracker = self._faults
        self._quarantine = (
            QuarantineWriter(Path(self.cfg.work_dir) / "quarantine")
            if self.policy.on_error == "quarantine"
            else None
        )

    def _end_faults(self) -> None:
        """Flush and detach the quarantine export after a run."""
        if self._quarantine is not None:
            self._quarantine.close()

    def _faults_payload(self) -> dict:
        """The report's ``faults`` section: policy + every counter."""
        payload = self._faults.as_dict()
        payload["policy"] = self.policy.as_dict()
        if self._quarantine is not None and self._quarantine.paths:
            payload["quarantine_paths"] = [str(path) for path in self._quarantine.paths]
        return payload

    def close(self) -> None:
        """Shut down the worker pool (no-op for serial executors).

        A borrowed shared pool is detached, not closed — it stays warm for
        the next executor; :func:`repro.parallel.shutdown_shared_pools`
        owns its lifetime.
        """
        if self._pool is not None:
            if not self._shared_pool:
                self._pool.close()
            self._pool = None

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _load_input(self, dataset: NestedDataset | None) -> NestedDataset:
        from repro.formats.load import load_dataset

        if dataset is not None:
            return dataset
        if not self.cfg.dataset_path:
            raise ValueError("no dataset given and no dataset_path configured")
        return load_dataset(self.cfg.dataset_path, text_keys=tuple(self.cfg.text_keys))

    def _cache_counters(self) -> dict[str, int]:
        """Both cache granularities' hit/miss counters (for run reports)."""
        return {
            "hits": self.cache.hits,
            "misses": self.cache.misses,
            "shard_hits": self.cache.shard_hits,
            "shard_misses": self.cache.shard_misses,
        }

    def _parallel_payload(self) -> dict:
        """The report's ``parallel`` section.

        ``worker_pids`` lists the live worker processes of the pool this run
        used (empty for serial / fully cache-hit runs); together with
        ``shared`` it lets callers — the service tests in particular — prove
        two runs executed on the same warm workers.
        """
        return {
            "np": self.cfg.np,
            "batch_size": self.cfg.batch_size,
            # None when no pool was needed (np=1, or every stage cache-hit)
            "start_method": self._pool.start_method if self._pool is not None else None,
            "worker_pids": self._pool.worker_pids() if self._pool is not None else [],
            "shared": self._shared_pool and self._pool is not None,
        }

    def _persist_report(self, report: RunReport) -> None:
        """Write the run report under the work directory (best effort)."""
        try:
            report.save(Path(self.cfg.work_dir) / REPORT_FILE)
        except OSError:
            # observability must never fail a run that already succeeded
            pass

    def _preflight_dataflow(self, decision: ExecutionPlan) -> None:
        """Statically check the recipe against the *planned* mode.

        Findings are attached to the plan (``decision.dataflow``) and warn as
        :class:`DataflowWarning` by default; ``strict_dataflow: true`` turns
        them into a :class:`ConfigError` before any data is touched.
        """
        from repro.tools.dataflow import check_recipe

        result = check_recipe(self.cfg, stream=decision.mode == "streaming")
        decision.dataflow = [finding.as_dict() for finding in result.findings]
        if not result.findings:
            return
        summary = "\n  ".join(str(finding) for finding in result.findings)
        if self.cfg.strict_dataflow:
            raise ConfigError(
                f"dataflow check failed for recipe {self.cfg.project_name!r} "
                f"(strict_dataflow is on):\n  {summary}"
            )
        warnings.warn(
            f"recipe {self.cfg.project_name!r} has "
            f"{len(result.findings)} dataflow finding(s):\n  {summary}",
            DataflowWarning,
            stacklevel=3,
        )

    def execute(
        self,
        dataset: NestedDataset | None = None,
        mode: str = "auto",
        shard_output: bool = False,
        budget: ResourceBudget | None = None,
    ) -> RunReport:
        """Plan the execution mode, run the pipeline, return the unified report.

        This is the mode-agnostic front door used by the fluent
        :class:`repro.api.Pipeline` and ``repro process --mode``: the
        :func:`repro.core.planner.plan_execution` decision (stored as
        ``last_plan`` and embedded in the report's ``planner`` section)
        dispatches to :meth:`run` or :meth:`run_streaming`, replacing the
        caller-side fork between them.  Results are identical either way —
        the streaming engine's exports are byte-identical to the in-memory
        engine's.
        """
        requested = mode
        if shard_output:
            # sharded output only exists out-of-core; steering the planner here
            # keeps every front door (fluent API, CLI) consistent instead of
            # silently writing one monolithic export in memory mode
            if mode == "memory":
                raise ConfigError(
                    "shard_output requires streaming execution; it conflicts "
                    "with mode='memory'"
                )
            mode = "streaming"
        decision = plan_execution(self.cfg, dataset=dataset, mode=mode, budget=budget)
        if shard_output:
            # report the caller's actual request, not the coerced mode
            decision.requested = requested
            decision.reasons.append("sharded output requested; streaming engine required")
        self._preflight_dataflow(decision)
        self.last_plan = decision
        # the run itself builds (and persists) the report; handing the payload
        # down keeps that a single complete write instead of write-then-amend
        self._planner_payload = decision.as_dict()
        try:
            if decision.mode == "streaming":
                self.run_streaming(dataset, shard_output=shard_output)
            else:
                self.run(dataset)
        finally:
            self._planner_payload = None
        return self.last_report

    def run(self, dataset: NestedDataset | None = None) -> NestedDataset:
        """Execute the configured pipeline and return the processed dataset.

        Besides the dataset, the run emits a :class:`RunReport`
        (``last_report``, persisted to ``<work_dir>/report.json``) with one
        per-op section each covering rows in/out, wall time and throughput.
        """
        monitor = ResourceMonitor()
        profiler = self._profiler = RunProfiler()
        export_paths: list[str] = []
        self._begin_faults()
        try:
            with monitor:
                current = self._load_input(dataset)
                start_index = 0
                op_names = [op.name for op in self.ops]
                op_hashes = [op_config_hash(op) for op in self.ops]

                if self.checkpoint.enabled and self.checkpoint.exists():
                    # Validate the cheap state file before parsing the
                    # (possibly huge) checkpointed dataset: resume only when
                    # both the op-name prefix *and* the per-op config hashes
                    # match — a recipe whose parameters changed must
                    # re-execute instead of silently reusing data produced by
                    # the old configuration.  A corrupt state file reads as
                    # None and the run starts over.
                    state = self.checkpoint.read_state()
                    if state:
                        op_index = int(state.get("op_index", 0))
                        saved_names = list(state.get("op_names", []))
                        saved_hashes = state.get("op_hashes") or []
                        if (
                            saved_names[:op_index] == op_names[:op_index]
                            and saved_hashes[:op_index] == op_hashes[:op_index]
                        ):
                            restored, op_index, _names = self.checkpoint.load()
                            current, start_index = restored, op_index

                # index one past the last op whose result the checkpoint
                # holds; cache-hit streaks defer their save (a resume from an
                # older checkpoint just replays the same cache hits), so a
                # warm-cache run pays one checkpoint write instead of one per
                # cached op
                saved_index = start_index
                for index in range(start_index, len(self.ops)):
                    op = self.ops[index]
                    cache_key = CacheManager.make_key(
                        current.fingerprint, op.name, op.config()
                    )
                    cached = self.cache.load(cache_key)
                    if cached is not None:
                        profiler.record_cached(op, len(cached))
                        current = cached
                        continue
                    faults_before = self._faults.total_faults
                    with profiler.track(op, rows_in=len(current)) as tracking:
                        if isinstance(op, (Mapper, Filter, Deduplicator)):
                            # pool creation is deferred to the first actually-
                            # executed op with a sample-level stage, so fully
                            # cache-hit runs never fork workers (a
                            # Deduplicator's hashing stage is sample-level;
                            # its clustering stays global)
                            current = run_op_with_policy(
                                op, current, self.policy, self._faults,
                                self._quarantine, tracer=self.tracer,
                                pool=self._ensure_pool(),
                            )
                        else:
                            current = run_op_with_policy(
                                op, current, self.policy, self._faults,
                                self._quarantine, tracer=self.tracer,
                            )
                        tracking.rows_out = len(current)
                    if self._faults.total_faults == faults_before:
                        # fault-shaped results must never enter the clean-run
                        # cache (the checkpoint still records actual progress)
                        self.cache.save(cache_key, current)
                    self.checkpoint.save(current, index + 1, op_names, op_hashes)
                    saved_index = index + 1
                if saved_index < len(self.ops):
                    # the run ended on a cache-hit streak: persist the final
                    # state once so a later resume restarts past it, not at a
                    # stale index
                    self.checkpoint.save(current, len(self.ops), op_names, op_hashes)

                if self.cfg.export_path:
                    export_paths = [
                        str(
                            Exporter(
                                self.cfg.export_path,
                                keep_stats=self.cfg.keep_stats_in_export,
                            ).export(current)
                        )
                    ]
        finally:
            self._end_faults()
        self.last_report = RunReport(
            mode="memory",
            plan=self.plan,
            num_output_samples=len(current),
            ops=profiler.reports(),
            resources=monitor.report.as_dict() if monitor.report else {},
            cache=self._cache_counters(),
            trace=self.tracer.summary() if self.tracer else [],
            parallel=self._parallel_payload(),
            export_paths=export_paths,
            planner=self._planner_payload,
            faults=self._faults_payload(),
        )
        self._persist_report(self.last_report)
        return current

    # ------------------------------------------------------------------
    # Streaming (out-of-core) execution
    # ------------------------------------------------------------------
    def _input_formatter(self) -> Any:
        """Build the input formatter once per streaming run (one path walk)."""
        from repro.formats.load import load_formatter

        if not self.cfg.dataset_path:
            raise ValueError("no dataset given and no dataset_path configured")
        return load_formatter(self.cfg.dataset_path, text_keys=tuple(self.cfg.text_keys))

    def _input_signature(self, dataset: NestedDataset | None, formatter: Any) -> dict:
        """Identity of the streaming input, guarding shard-checkpoint reuse.

        For file inputs the signature digests the resolved shard list with
        each file's size and mtime, so editing (or re-sharding) the input
        invalidates the spilled shards instead of silently resuming over
        stale data.
        """
        from repro.core.dataset import _stable_hash

        if dataset is not None:
            return {"fingerprint": dataset.fingerprint}
        files = []
        for path in getattr(formatter, "resolve_paths", lambda: [])():
            stat = path.stat()
            files.append([str(path), stat.st_size, stat.st_mtime_ns])
        return {
            "dataset_path": str(self.cfg.dataset_path),
            "text_keys": list(self.cfg.text_keys),
            "files_digest": _stable_hash(files),
        }

    def _input_shards(
        self,
        dataset: NestedDataset | None,
        formatter: Any,
        shard_rows: int | None,
        shard_chars: int | None,
    ) -> Iterator[list[dict]]:
        """Lazily chunk the input into bounded shards, never materialising it."""
        records: Any = iter(dataset) if dataset is not None else formatter.iter_records()
        return iter_record_shards(
            records, max_rows=shard_rows, max_chars=shard_chars, text_key=Fields.text
        )

    def run_streaming(
        self, dataset: NestedDataset | None = None, shard_output: bool = False
    ) -> dict[str, Any]:
        """Execute the pipeline shard-by-shard with bounded memory.

        The input is streamed into shards capped by the recipe's
        ``max_shard_rows`` / ``max_shard_chars`` budget; Mappers and Filters
        run shard-local on the batched columnar engine (worker-pool dispatch
        included), while Deduplicators and Selectors resolve globally via the
        two-pass signature strategy (see :mod:`repro.core.stream`).  Output
        rows stream straight into the :class:`Exporter` — with
        ``shard_output`` they are written as size-capped output shards.

        Every processed shard is spilled to disk; with ``use_checkpoint``
        the spill persists under the checkpoint directory, so an interrupted
        run resumes mid-corpus, skipping every shard already processed.
        Results are row-identical to :meth:`run` (byte-identical exports).

        Observability matches the in-memory path: with ``use_cache`` every
        shard's stage output is cached keyed on ``(op fingerprint chain,
        shard signature)`` and replayed instead of recomputed on unchanged
        inputs; with ``open_tracer`` a :class:`~repro.core.tracer.
        StreamingTracer` accumulates per-op kept/dropped/changed counts and
        bounded example reservoirs across shards; and the per-op
        :class:`~repro.core.monitor.RunProfiler` sections aggregate wall
        time, rows/sec and peak RSS over every executed shard.

        Returns the unified :class:`RunReport` (also stored as
        ``last_report`` and persisted to ``<work_dir>/report.json``) instead
        of a materialised dataset.
        """
        monitor = ResourceMonitor()
        profiler = self._profiler = RunProfiler()
        work_dir = Path(self.cfg.work_dir)
        tracer = self._stream_tracer = (
            StreamingTracer(show_num=self.cfg.trace_num, trace_dir=work_dir / "trace")
            if self.cfg.open_tracer
            else None
        )
        self._begin_faults()
        with monitor:
            segments = plan_segments(self.ops)
            op_hashes = [op_config_hash(op) for op in self.ops]
            if tracer is not None:
                # pre-register every op so accumulator (= summary) order is
                # pipeline order even for ops an empty input never reaches
                for op in self.ops:
                    tracer.register(op.name, self._trace_type(op))
            shard_rows, shard_chars = self.cfg.max_shard_rows, self.cfg.max_shard_chars
            progress = {
                "input_shards": 0,
                "resumed_shards": 0,
                "executed_shards": 0,
                "cached_shards": 0,
            }
            formatter = self._input_formatter() if dataset is None else None

            persistent = self.checkpoint.enabled
            if persistent:
                store = ShardStore(self.checkpoint.stream_dir)
                expected_state = {
                    "op_hashes": op_hashes,
                    "max_shard_rows": shard_rows,
                    "max_shard_chars": shard_chars,
                    "input": self._input_signature(dataset, formatter),
                }
                if self.checkpoint.load_stream_state() != expected_state:
                    # recipe, shard budget or input changed: the spilled
                    # shards describe a different run and must not be reused
                    self.checkpoint.clear_stream()
                    self.checkpoint.save_stream_state(expected_state)
            else:
                # per-run unique spill directory: concurrent non-checkpointed
                # runs sharing a work_dir must not clear or read each other's
                # shards
                spill_root = Path(self.cfg.work_dir) / "stream-spill"
                spill_root.mkdir(parents=True, exist_ok=True)
                store = ShardStore(tempfile.mkdtemp(prefix="run-", dir=spill_root))

            try:
                source = self._count_shards(
                    self._input_shards(dataset, formatter, shard_rows, shard_chars), progress
                )
                for stage, segment in enumerate(segments):
                    if segment.global_op is None:
                        # only the final segment can lack a global op; its
                        # shards flow straight through (spilled when
                        # checkpointing, so a crash during export still
                        # resumes mid-corpus)
                        if persistent:
                            source = self._spilled_stage(
                                stage, segment, source, store, progress
                            )
                        else:
                            source = self._transformed_stage(
                                stage, segment, source, progress
                            )
                    else:
                        source = self._resolved_stage(stage, segment, source, store, progress)

                total_rows = 0
                export_paths: list[str] = []

                def final_rows() -> Iterator[dict]:
                    nonlocal total_rows
                    for shard in source:
                        total_rows += len(shard)
                        yield from shard

                if self.cfg.export_path:
                    # a shard-output request with no explicit budget still
                    # shards, at the same default the input chunker applies
                    export_rows, export_chars = shard_rows, shard_chars
                    if shard_output and export_rows is None and export_chars is None:
                        from repro.core.stream import DEFAULT_SHARD_ROWS

                        export_rows = DEFAULT_SHARD_ROWS
                    exporter = Exporter(
                        self.cfg.export_path,
                        keep_stats=self.cfg.keep_stats_in_export,
                        shard_rows=export_rows if shard_output else None,
                        shard_chars=export_chars if shard_output else None,
                    )
                    export_paths = [str(path) for path in exporter.export_stream(final_rows())]
                else:
                    for _row in final_rows():
                        pass
            finally:
                self._end_faults()
                if not persistent:
                    # failed runs must not leak a pickled copy of the corpus
                    store.clear()
                    store.root.rmdir()

        if tracer is not None:
            tracer.finalize()
        self.last_report = RunReport(
            mode="streaming",
            plan=self.plan,
            num_output_samples=total_rows,
            ops=profiler.reports(),
            segments=len(segments),
            shards=dict(progress),
            shard_budget={"max_shard_rows": shard_rows, "max_shard_chars": shard_chars},
            export_paths=export_paths,
            resources=monitor.report.as_dict() if monitor.report else {},
            cache=self._cache_counters(),
            trace=tracer.summary() if tracer else [],
            parallel=self._parallel_payload(),
            planner=self._planner_payload,
            faults=self._faults_payload(),
        )
        self._persist_report(self.last_report)
        return self.last_report

    @staticmethod
    def _count_shards(
        shards: Iterator[list[dict]], progress: dict[str, int]
    ) -> Iterator[list[dict]]:
        for shard in shards:
            progress["input_shards"] += 1
            yield shard

    @staticmethod
    def _trace_type(op: Any) -> str:
        """Trace-record type label of an op (matches the in-memory tracer).

        The in-memory path records Selectors through ``trace_filter`` — the
        streaming tracer mirrors that so summaries compare structurally.
        """
        if isinstance(op, Deduplicator):
            return "deduplicator"
        if isinstance(op, Selector):
            return "filter"
        return op_category(op)

    @staticmethod
    def _shard_label(stage: int, index: int) -> str:
        """Human-readable shard id used in fault records and error messages."""
        return f"stage{stage}:shard{index:05d}"

    def _execute_shard(
        self,
        segment: StreamSegment,
        chain: str,
        rows: list[dict],
        progress: dict[str, int],
        shard_id: str | None = None,
    ) -> list[dict]:
        """One shard's shard-local work (sample ops + dedup hashing), cached.

        With ``use_cache`` the shard's stage output is keyed on
        ``(op fingerprint chain, shard signature)``; a hit replays the rows
        without touching any operator (counted per op as a cached call and
        per run as a ``cached_shards`` shard).

        Failures are contained per shard: sample-op errors are handled row-
        wise by the error policy inside :func:`run_sample_ops`; anything that
        still escapes (the dedup hashing stage has no row-isolated fallback)
        retries the whole shard, and under a lenient policy a persistently
        failing shard is dropped/quarantined whole instead of wedging the
        run.  Fault-shaped shard output never enters the shard cache.
        """
        cache_key = None
        if self.cache.enabled:
            cache_key = CacheManager.make_shard_key(chain, _stable_hash(rows))
            cached = self.cache.load_shard_rows(cache_key)
            if cached is not None:
                for op in segment.sample_ops:
                    self._profiler.record_cached(op, len(cached))
                if isinstance(segment.global_op, Deduplicator):
                    self._profiler.record_cached(segment.global_op, len(cached))
                progress["cached_shards"] += 1
                return cached
        faults_before = self._faults.total_faults
        stage_name = getattr(segment.global_op, "name", None) or (
            segment.sample_ops[0].name if segment.sample_ops else "shard"
        )
        attempt = 0
        while True:
            try:
                out_rows = self._run_shard_ops(segment, rows, shard_id)
                break
            except OpExecutionError:
                # already contextualised by the per-op policy layer (raise
                # policy); containment does not apply
                raise
            except Exception as error:
                self._faults.record_op_error(stage_name, error, shard_id)
                if not self.policy.lenient:
                    raise OpExecutionError(
                        describe_failure(stage_name, error, shard_id),
                        op_name=stage_name,
                        shard_id=shard_id,
                    ) from error
                if attempt < self.policy.max_retries:
                    self._faults.record_retry(stage_name, shard_id)
                    self.policy.sleep(attempt)
                    attempt += 1
                    continue
                # persistent shard failure under a lenient policy: drop the
                # shard whole (quarantining its rows when configured) so the
                # rest of the corpus still completes
                self._faults.record_dropped_shard(shard_id, len(rows))
                if self._quarantine is not None:
                    self._quarantine.write_rows(
                        rows, stage_name, error, shard_id=shard_id
                    )
                out_rows = []
                break
        if cache_key is not None and self._faults.total_faults == faults_before:
            self.cache.save_shard_rows(cache_key, out_rows)
        progress["executed_shards"] += 1
        return out_rows

    def _run_shard_ops(
        self, segment: StreamSegment, rows: list[dict], shard_id: str | None
    ) -> list[dict]:
        """Run one shard through its segment's sample ops + dedup hashing."""
        shard = run_sample_ops(
            rows,
            segment.sample_ops,
            pool_factory=self._ensure_pool,
            profiler=self._profiler,
            tracer=self._stream_tracer,
            policy=self.policy,
            faults=self._faults,
            quarantine=self._quarantine,
            shard_id=shard_id,
        )
        global_op = segment.global_op
        if isinstance(global_op, Deduplicator):
            # the per-sample hashing stage runs shard-local (and
            # pool-parallel); only the clustering is global.  Timed under the
            # dedup's report section; its rows are accounted by the resolve.
            with self._profiler.track(global_op, rows_in=len(shard)):
                shard = shard.map_batches(
                    global_op.compute_hash_batched,
                    batch_size=global_op.effective_batch_size(shard),
                    new_fingerprint=shard.derive_fingerprint(
                        f"{global_op.name}:hash", global_op.config()
                    ),
                    pool=self._ensure_pool(),
                )
        return shard.to_list()

    def _transformed_stage(
        self,
        stage: int,
        segment: StreamSegment,
        source: Iterator[list[dict]],
        progress: dict[str, int],
    ) -> Iterator[list[dict]]:
        """Shard-local transform with no spill (checkpointing disabled)."""
        chain = stage_chain_hash(segment)
        for index, rows in enumerate(source):
            yield self._execute_shard(
                segment, chain, rows, progress, self._shard_label(stage, index)
            )

    def _spilled_stage(
        self,
        stage: int,
        segment: StreamSegment,
        source: Iterator[list[dict]],
        store: ShardStore,
        progress: dict[str, int],
    ) -> Iterator[list[dict]]:
        """Shard-local transform that spills (and resumes) every shard."""
        chain = stage_chain_hash(segment)
        for index, rows in enumerate(source):
            if store.has_shard(stage, index):
                progress["resumed_shards"] += 1
                yield store.read_shard_rows(stage, index)
                continue
            out_rows = self._execute_shard(
                segment, chain, rows, progress, self._shard_label(stage, index)
            )
            store.write_shard(stage, index, out_rows)
            yield out_rows

    def _resolved_stage(
        self,
        stage: int,
        segment: Any,
        source: Iterator[list[dict]],
        store: ShardStore,
        progress: dict[str, int],
    ) -> Iterator[list[dict]]:
        """Two-pass execution of a segment closed by a dataset-level op.

        Pass one runs eagerly: each shard is transformed, hashed (for
        Deduplicators), spilled, and its skinny signature rows accumulated.
        The global op then resolves once over the signatures, and the
        returned iterator streams the spilled shards back out with the keep
        mask applied.
        """
        global_op = segment.global_op
        chain = stage_chain_hash(segment)
        signature_rows: list[dict] = []
        shard_row_counts: list[int] = []

        for index, rows in enumerate(source):
            if store.has_shard(stage, index):
                progress["resumed_shards"] += 1
                out_rows = store.read_shard_rows(stage, index)
            else:
                out_rows = self._execute_shard(
                    segment, chain, rows, progress, self._shard_label(stage, index)
                )
                store.write_shard(stage, index, out_rows)
            shard_row_counts.append(len(out_rows))
            if out_rows:
                # every row of a shard carries the same keys (to_list unions
                # columns shard-wide); keys differing *across* shards are
                # None-filled by the signature from_list, exactly like the
                # in-memory dataset's global column union
                columns = signature_column_names(
                    global_op, list(out_rows[0].keys()), getattr(global_op, "text_key", Fields.text)
                )
                base_id = len(signature_rows)
                for offset, row in enumerate(out_rows):
                    skinny = {name: row.get(name) for name in columns}
                    skinny[ROW_ID_COLUMN] = base_id + offset
                    signature_rows.append(skinny)

        signature = NestedDataset.from_list(signature_rows)
        with self._profiler.track(global_op, rows_in=len(signature)) as tracking:
            # the global resolve has no shard to contain failures to: retry
            # per the policy, abort with full context under ``raise``, and
            # under a lenient policy degrade to a keep-everything mask (the
            # conservative outcome — no row is wrongly dropped)
            try:
                keep_mask, dropped_columns = retry_call(
                    lambda: resolve_global_keep(global_op, signature),
                    self.policy,
                    self._faults,
                    global_op.name,
                )
            except Exception as error:
                if not self.policy.lenient:
                    raise OpExecutionError(
                        describe_failure(global_op.name, error),
                        op_name=global_op.name,
                    ) from error
                self._faults.record_degradation(
                    f"global resolve of {global_op.name!r} skipped after "
                    f"persistent failure: {error!r}"
                )
                keep_mask = [True] * len(signature)
                dropped_columns = [
                    name
                    for name in (HashKeys.hash, HashKeys.minhash, HashKeys.simhash)
                    if signature_rows and name in signature_rows[0]
                ]
            tracking.rows_out = sum(keep_mask)
        tracer = self._stream_tracer
        trace_type = self._trace_type(global_op)
        if tracer is not None:
            tracer.observe_global(
                global_op.name, trace_type, len(keep_mask), sum(keep_mask)
            )
        del signature, signature_rows

        def masked_shards() -> Iterator[list[dict]]:
            offset = 0
            for index, count in enumerate(shard_row_counts):
                rows = store.read_shard_rows(stage, index)
                mask = keep_mask[offset:offset + count]
                if tracer is not None and tracer.wants_examples(global_op.name, trace_type):
                    # the resolve only saw skinny signature rows; harvest
                    # dropped-row examples (with payload) as shards stream
                    # back out, until the bounded reservoir fills
                    for row_offset, (row, keep) in enumerate(zip(rows, mask)):
                        if keep:
                            continue
                        example = {
                            "index": offset + row_offset,
                            "discarded": row.get(Fields.text, ""),
                        }
                        if not isinstance(global_op, Deduplicator):
                            example["stats"] = row.get(Fields.stats, {})
                        if not tracer.add_dropped_example(
                            global_op.name, trace_type, example
                        ):
                            break
                yield apply_keep_mask(rows, mask, dropped_columns)
                offset += count

        return masked_shards()
