"""Tracer: record per-operator sample lineage for interactive inspection.

The paper's ``tracer`` tool (Sec. 4.2) records, for every operator, how
individual samples changed: edited text for Mappers, discarded samples for
Filters/Selectors, and (near-)duplicate pairs for Deduplicators.  The records
back the interactive visualization of the original system; here they are
available programmatically and can be dumped to JSONL files.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.dataset import NestedDataset
from repro.core.sample import Fields, get_field


@dataclass
class TraceRecord:
    """One operator's trace: what changed, and a bounded set of examples."""

    op_name: str
    op_type: str
    input_size: int
    output_size: int
    examples: list = field(default_factory=list)

    @property
    def removed(self) -> int:
        """Number of samples removed by this operator."""
        return max(0, self.input_size - self.output_size)


def _discarded_examples(
    before: NestedDataset, after: NestedDataset, budget: int, offset: int = 0
) -> list[dict]:
    """Up to ``budget`` rows of ``before`` whose text did not survive into ``after``.

    Membership is by text value (the surviving rows of a filter keep their
    text verbatim), with ``None`` texts matched against whether *any*
    surviving row has a ``None`` text.  ``offset`` shifts the reported
    indexes, so streaming shards report corpus-global positions.
    """
    if budget <= 0:
        return []
    kept_texts = set()
    none_kept = False
    for row in after:
        text = row.get(Fields.text)
        if text is None:
            none_kept = True
        else:
            kept_texts.add(text)
    examples: list[dict] = []
    for index, row in enumerate(before):
        text = row.get(Fields.text)
        if (none_kept if text is None else text in kept_texts):
            continue
        examples.append(
            {
                "index": offset + index,
                "discarded": text if text is not None else "",
                "stats": row.get(Fields.stats, {}),
            }
        )
        if len(examples) >= budget:
            break
    return examples


class Tracer:
    """Collect :class:`TraceRecord` objects for each executed operator."""

    def __init__(self, show_num: int = 10, trace_dir: str | Path | None = None):
        self.show_num = show_num
        self.trace_dir = Path(trace_dir) if trace_dir else None
        self.records: list[TraceRecord] = []

    # ------------------------------------------------------------------
    def trace_mapper(
        self,
        op_name: str,
        before: NestedDataset,
        after: NestedDataset,
        text_key: str = Fields.text,
    ) -> TraceRecord:
        """Record pre/post-edit text pairs for samples changed by a Mapper."""
        examples = []
        for index in range(min(len(before), len(after))):
            original = get_field(before[index], text_key, "")
            edited = get_field(after[index], text_key, "")
            if original != edited:
                examples.append({"index": index, "before": original, "after": edited})
                if len(examples) >= self.show_num:
                    break
        record = TraceRecord(op_name, "mapper", len(before), len(after), examples)
        self._store(record)
        return record

    def trace_filter(
        self, op_name: str, before: NestedDataset, after: NestedDataset
    ) -> TraceRecord:
        """Record the samples discarded by a Filter or Selector."""
        examples = _discarded_examples(before, after, self.show_num)
        record = TraceRecord(op_name, "filter", len(before), len(after), examples)
        self._store(record)
        return record

    def trace_deduplicator(
        self, op_name: str, input_size: int, output_size: int, duplicate_pairs: list
    ) -> TraceRecord:
        """Record (near-)duplicate pairs found by a Deduplicator."""
        examples = []
        for original, duplicate in duplicate_pairs[: self.show_num]:
            examples.append(
                {
                    "original": original.get(Fields.text, ""),
                    "duplicate": duplicate.get(Fields.text, ""),
                }
            )
        record = TraceRecord(op_name, "deduplicator", input_size, output_size, examples)
        self._store(record)
        return record

    # ------------------------------------------------------------------
    def _store(self, record: TraceRecord) -> None:
        self.records.append(record)
        if self.trace_dir is not None:
            self.trace_dir.mkdir(parents=True, exist_ok=True)
            path = self.trace_dir / f"trace-{len(self.records):03d}-{record.op_name}.jsonl"
            with path.open("w", encoding="utf-8") as handle:
                header = {
                    "op_name": record.op_name,
                    "op_type": record.op_type,
                    "input_size": record.input_size,
                    "output_size": record.output_size,
                }
                handle.write(json.dumps(header, ensure_ascii=False) + "\n")
                for example in record.examples:
                    handle.write(json.dumps(example, ensure_ascii=False, default=repr) + "\n")

    def summary(self) -> list[dict]:
        """Per-operator size changes, in execution order (drives Figure 4.(b))."""
        return [
            {
                "op_name": record.op_name,
                "op_type": record.op_type,
                "input_size": record.input_size,
                "output_size": record.output_size,
                "removed": record.removed,
            }
            for record in self.records
        ]


class StreamingTracer(Tracer):
    """Tracer variant that accumulates incrementally across shards.

    The base :class:`Tracer` assumes each ``trace_*`` call sees the *whole*
    dataset and stores one record per call.  In streaming mode an operator
    runs once per shard, so this subclass merges every call into one
    per-operator accumulator instead: kept/dropped/changed counts add up
    across shards, and examples fill a bounded first-``show_num`` reservoir —
    memory never grows with the corpus, only with ``show_num``.

    Operators resolved globally from a keep mask (Deduplicators, Selectors)
    report through :meth:`observe_global`, and the mask pass contributes
    dropped-row examples via :meth:`add_dropped_example` — the signature rows
    driving the resolve carry no text payload, so examples are harvested
    while the spilled shards stream back out.

    Call :meth:`finalize` once at the end of the run: it emits the
    accumulated :class:`TraceRecord` objects in pipeline order (writing trace
    files exactly like the in-memory tracer).  :meth:`summary` finalizes
    implicitly, so ``run()`` and ``run_streaming()`` trace summaries are
    structurally interchangeable.
    """

    def __init__(self, show_num: int = 10, trace_dir: str | Path | None = None):
        super().__init__(show_num=show_num, trace_dir=trace_dir)
        self._accumulators: dict[str, TraceRecord] = {}
        self._finalized = False

    # ------------------------------------------------------------------
    def register(self, op_name: str, op_type: str) -> TraceRecord:
        """Return (creating on first touch) the accumulator of an operator.

        The executor pre-registers every pipeline op before the first shard
        flows, so accumulator order — and therefore record and summary order
        — is pipeline order even for ops an empty input never reaches.
        """
        if op_name not in self._accumulators:
            self._accumulators[op_name] = TraceRecord(op_name, op_type, 0, 0, [])
        return self._accumulators[op_name]

    def _example_budget(self, record: TraceRecord) -> int:
        return max(0, self.show_num - len(record.examples))

    # ------------------------------------------------------------------
    def trace_mapper(
        self,
        op_name: str,
        before: NestedDataset,
        after: NestedDataset,
        text_key: str = Fields.text,
    ) -> TraceRecord:
        """Accumulate one shard of a Mapper: changed counts + sampled diffs."""
        record = self.register(op_name, "mapper")
        budget = self._example_budget(record)
        offset = record.input_size
        if budget > 0:
            for index in range(min(len(before), len(after))):
                original = get_field(before[index], text_key, "")
                edited = get_field(after[index], text_key, "")
                if original != edited:
                    record.examples.append(
                        {"index": offset + index, "before": original, "after": edited}
                    )
                    if len(record.examples) >= self.show_num:
                        break
        record.input_size += len(before)
        record.output_size += len(after)
        return record

    def trace_filter(
        self, op_name: str, before: NestedDataset, after: NestedDataset
    ) -> TraceRecord:
        """Accumulate one shard of a Filter: drop counts + sampled rejects."""
        record = self.register(op_name, "filter")
        record.examples.extend(
            _discarded_examples(
                before, after, self._example_budget(record), offset=record.input_size
            )
        )
        record.input_size += len(before)
        record.output_size += len(after)
        return record

    def trace_deduplicator(
        self, op_name: str, input_size: int, output_size: int, duplicate_pairs: list
    ) -> TraceRecord:
        """Accumulate one shard-level call of a Deduplicator.

        The streaming executor itself reports Deduplicators through
        :meth:`observe_global` (their clustering is never shard-local); this
        override exists so code driving ``Deduplicator.run`` manually with a
        streaming tracer still accumulates instead of storing per-call
        records.
        """
        record = self.register(op_name, "deduplicator")
        budget = self._example_budget(record)
        for original, duplicate in duplicate_pairs[:budget]:
            record.examples.append(
                {
                    "original": original.get(Fields.text, ""),
                    "duplicate": duplicate.get(Fields.text, ""),
                }
            )
        record.input_size += input_size
        record.output_size += output_size
        return record

    # ------------------------------------------------------------------
    def observe_global(
        self, op_name: str, op_type: str, input_size: int, output_size: int
    ) -> TraceRecord:
        """Record the sizes of a globally-resolved op (mask already applied)."""
        record = self.register(op_name, op_type)
        record.input_size += input_size
        record.output_size += output_size
        return record

    def add_dropped_example(self, op_name: str, op_type: str, example: dict) -> bool:
        """Attach one dropped-row example to an op; False once the reservoir is full."""
        record = self.register(op_name, op_type)
        if self._example_budget(record) <= 0:
            return False
        record.examples.append(example)
        return True

    def wants_examples(self, op_name: str, op_type: str) -> bool:
        """True while the op's example reservoir still has room."""
        return self._example_budget(self.register(op_name, op_type)) > 0

    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Emit the accumulated records (once) in pipeline order."""
        if self._finalized:
            return
        self._finalized = True
        for record in self._accumulators.values():
            self._store(record)

    def summary(self) -> list[dict]:
        """Finalize (idempotent) and return the per-operator summary."""
        self.finalize()
        return super().summary()
