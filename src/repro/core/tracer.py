"""Tracer: record per-operator sample lineage for interactive inspection.

The paper's ``tracer`` tool (Sec. 4.2) records, for every operator, how
individual samples changed: edited text for Mappers, discarded samples for
Filters/Selectors, and (near-)duplicate pairs for Deduplicators.  The records
back the interactive visualization of the original system; here they are
available programmatically and can be dumped to JSONL files.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.dataset import NestedDataset
from repro.core.sample import Fields, get_field


@dataclass
class TraceRecord:
    """One operator's trace: what changed, and a bounded set of examples."""

    op_name: str
    op_type: str
    input_size: int
    output_size: int
    examples: list = field(default_factory=list)

    @property
    def removed(self) -> int:
        """Number of samples removed by this operator."""
        return max(0, self.input_size - self.output_size)


class Tracer:
    """Collect :class:`TraceRecord` objects for each executed operator."""

    def __init__(self, show_num: int = 10, trace_dir: str | Path | None = None):
        self.show_num = show_num
        self.trace_dir = Path(trace_dir) if trace_dir else None
        self.records: list[TraceRecord] = []

    # ------------------------------------------------------------------
    def trace_mapper(
        self,
        op_name: str,
        before: NestedDataset,
        after: NestedDataset,
        text_key: str = Fields.text,
    ) -> TraceRecord:
        """Record pre/post-edit text pairs for samples changed by a Mapper."""
        examples = []
        for index in range(min(len(before), len(after))):
            original = get_field(before[index], text_key, "")
            edited = get_field(after[index], text_key, "")
            if original != edited:
                examples.append({"index": index, "before": original, "after": edited})
                if len(examples) >= self.show_num:
                    break
        record = TraceRecord(op_name, "mapper", len(before), len(after), examples)
        self._store(record)
        return record

    def trace_filter(
        self, op_name: str, before: NestedDataset, after: NestedDataset
    ) -> TraceRecord:
        """Record the samples discarded by a Filter or Selector."""
        kept_texts = set()
        for row in after:
            kept_texts.add(id(row.get(Fields.text)) if row.get(Fields.text) is None else row.get(Fields.text))
        examples = []
        for index, row in enumerate(before):
            text = row.get(Fields.text)
            if text not in kept_texts:
                examples.append({"index": index, "discarded": row.get(Fields.text, ""),
                                 "stats": row.get(Fields.stats, {})})
                if len(examples) >= self.show_num:
                    break
        record = TraceRecord(op_name, "filter", len(before), len(after), examples)
        self._store(record)
        return record

    def trace_deduplicator(
        self, op_name: str, input_size: int, output_size: int, duplicate_pairs: list
    ) -> TraceRecord:
        """Record (near-)duplicate pairs found by a Deduplicator."""
        examples = []
        for original, duplicate in duplicate_pairs[: self.show_num]:
            examples.append(
                {
                    "original": original.get(Fields.text, ""),
                    "duplicate": duplicate.get(Fields.text, ""),
                }
            )
        record = TraceRecord(op_name, "deduplicator", input_size, output_size, examples)
        self._store(record)
        return record

    # ------------------------------------------------------------------
    def _store(self, record: TraceRecord) -> None:
        self.records.append(record)
        if self.trace_dir is not None:
            self.trace_dir.mkdir(parents=True, exist_ok=True)
            path = self.trace_dir / f"trace-{len(self.records):03d}-{record.op_name}.jsonl"
            with path.open("w", encoding="utf-8") as handle:
                header = {
                    "op_name": record.op_name,
                    "op_type": record.op_type,
                    "input_size": record.input_size,
                    "output_size": record.output_size,
                }
                handle.write(json.dumps(header, ensure_ascii=False) + "\n")
                for example in record.examples:
                    handle.write(json.dumps(example, ensure_ascii=False, default=repr) + "\n")

    def summary(self) -> list[dict]:
        """Per-operator size changes, in execution order (drives Figure 4.(b))."""
        return [
            {
                "op_name": record.op_name,
                "op_type": record.op_type,
                "input_size": record.input_size,
                "output_size": record.output_size,
                "removed": record.removed,
            }
            for record in self.records
        ]
