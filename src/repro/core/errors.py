"""Exception types used throughout the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """Raised when a data recipe or configuration file is invalid."""


class RegistryError(ReproError):
    """Raised when an operator, formatter or recipe lookup fails."""


class SchemaError(ConfigError):
    """Raised when operator parameters violate their declared schema.

    Carries the full list of :class:`repro.core.schema.SchemaIssue` objects
    on ``issues`` so callers (the fluent API, ``repro validate-recipe``) can
    report every bad parameter at once instead of failing on the first.
    """

    def __init__(self, message: str, issues: list | None = None):
        super().__init__(message)
        self.issues = list(issues or [])


class DatasetError(ReproError):
    """Raised for invalid dataset construction or access."""


class FormatError(ReproError):
    """Raised when a data file cannot be loaded or unified."""


class CheckpointError(ReproError):
    """Raised when checkpoint saving or loading fails."""


class EvaluationError(ReproError):
    """Raised when a proxy-model evaluation cannot be performed."""


class HPOError(ReproError):
    """Raised for invalid hyper-parameter search configurations."""
