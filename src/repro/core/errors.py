"""Exception types used throughout the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """Raised when a data recipe or configuration file is invalid."""


class RegistryError(ReproError):
    """Raised when an operator or formatter lookup fails."""


class DatasetError(ReproError):
    """Raised for invalid dataset construction or access."""


class FormatError(ReproError):
    """Raised when a data file cannot be loaded or unified."""


class CheckpointError(ReproError):
    """Raised when checkpoint saving or loading fails."""


class EvaluationError(ReproError):
    """Raised when a proxy-model evaluation cannot be performed."""


class HPOError(ReproError):
    """Raised for invalid hyper-parameter search configurations."""
