"""Exception types used throughout the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """Raised when a data recipe or configuration file is invalid."""


class RegistryError(ReproError):
    """Raised when an operator, formatter or recipe lookup fails."""


class SchemaError(ConfigError):
    """Raised when operator parameters violate their declared schema.

    Carries the full list of :class:`repro.core.schema.SchemaIssue` objects
    on ``issues`` so callers (the fluent API, ``repro validate-recipe``) can
    report every bad parameter at once instead of failing on the first.
    """

    def __init__(self, message: str, issues: list | None = None):
        super().__init__(message)
        self.issues = list(issues or [])


class DataflowWarning(UserWarning):
    """Emitted when the pre-flight dataflow check finds recipe hazards.

    ``Executor.execute`` runs :func:`repro.tools.dataflow.check_recipe` before
    touching any data; findings warn by default so existing recipes keep
    running, and ``strict_dataflow: true`` upgrades them to a
    :class:`ConfigError`.
    """


class DatasetError(ReproError):
    """Raised for invalid dataset construction or access."""


class FormatError(ReproError):
    """Raised when a data file cannot be loaded or unified."""


class CheckpointError(ReproError):
    """Raised when checkpoint saving or loading fails."""


class OpExecutionError(ReproError):
    """Raised when an operator fails permanently during engine execution.

    The message always names the failing operator and, when known, the shard
    id and a sample row index, so a failure in a multi-shard run can be
    reproduced with ``--on-error raise`` on a single shard.  The same facts
    are carried structurally on :attr:`op_name`, :attr:`shard_id` and
    :attr:`row_index`.
    """

    def __init__(
        self,
        message: str,
        op_name: str | None = None,
        shard_id: str | None = None,
        row_index: int | None = None,
    ):
        super().__init__(message)
        self.op_name = op_name
        self.shard_id = shard_id
        self.row_index = row_index


class EvaluationError(ReproError):
    """Raised when a proxy-model evaluation cannot be performed."""


class HPOError(ReproError):
    """Raised for invalid hyper-parameter search configurations."""
