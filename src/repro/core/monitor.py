"""Resource monitoring: wall-clock time and memory usage of processing runs.

The end-to-end system comparison of the paper (Sec. 7.2.1, Figure 8) monitors
processing time and average memory usage.  This module provides a lightweight
equivalent based on ``tracemalloc`` (Python heap) plus ``resource`` peak RSS,
good enough to compare the relative footprint of pipelines running in the same
process.
"""

from __future__ import annotations

import resource
import time
import tracemalloc
from dataclasses import dataclass


@dataclass
class ResourceReport:
    """Result of one monitored run."""

    wall_time_s: float
    peak_python_mb: float
    current_python_mb: float
    max_rss_mb: float

    def as_dict(self) -> dict:
        """Return the report as a plain dict (for benchmark tables)."""
        return {
            "wall_time_s": self.wall_time_s,
            "peak_python_mb": self.peak_python_mb,
            "current_python_mb": self.current_python_mb,
            "max_rss_mb": self.max_rss_mb,
        }


class ResourceMonitor:
    """Context manager measuring wall time and (optionally) Python heap usage.

    ``trace_memory=True`` enables ``tracemalloc``, which gives precise Python
    heap peaks but slows execution noticeably; the end-to-end benchmarks turn
    it on for *both* compared systems so the overhead cancels out, while the
    executor's routine bookkeeping keeps it off.

    Example::

        with ResourceMonitor(trace_memory=True) as monitor:
            run_pipeline()
        print(monitor.report.wall_time_s)
    """

    def __init__(self, trace_memory: bool = False):
        self.trace_memory = trace_memory
        self.report: ResourceReport | None = None
        self._start_time = 0.0
        self._started_tracing = False

    def __enter__(self) -> "ResourceMonitor":
        if self.trace_memory:
            self._started_tracing = not tracemalloc.is_tracing()
            if self._started_tracing:
                tracemalloc.start()
            tracemalloc.reset_peak()
        self._start_time = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        wall_time = time.perf_counter() - self._start_time
        if self.trace_memory:
            current, peak = tracemalloc.get_traced_memory()
            if self._started_tracing:
                tracemalloc.stop()
        else:
            current, peak = 0, 0
        max_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        self.report = ResourceReport(
            wall_time_s=wall_time,
            peak_python_mb=peak / (1024 * 1024),
            current_python_mb=current / (1024 * 1024),
            max_rss_mb=max_rss_kb / 1024,
        )


def time_call(function, *args, **kwargs) -> tuple[float, object]:
    """Return (elapsed_seconds, result) of calling ``function``."""
    start = time.perf_counter()
    result = function(*args, **kwargs)
    return time.perf_counter() - start, result
