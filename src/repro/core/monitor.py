"""Resource monitoring: wall-clock time and memory usage of processing runs.

The end-to-end system comparison of the paper (Sec. 7.2.1, Figure 8) monitors
processing time and average memory usage.  This module provides a lightweight
equivalent based on ``tracemalloc`` (Python heap) plus ``resource`` peak RSS,
good enough to compare the relative footprint of pipelines running in the same
process.

Besides the run-level :class:`ResourceMonitor`, the module provides the
per-operator :class:`RunProfiler`: every executor mode (in-memory, pooled,
streaming) tracks each operator's executed calls through it, accumulating
wall time, rows in/out and peak RSS into the :class:`repro.core.report.
OpReport` sections of the unified run report.
"""

from __future__ import annotations

import resource
import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator

from repro.core.report import OpReport


def max_rss_mb() -> float:
    """Current peak RSS of this process, in megabytes."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024


@dataclass
class ResourceReport:
    """Result of one monitored run."""

    wall_time_s: float
    peak_python_mb: float
    current_python_mb: float
    max_rss_mb: float

    def as_dict(self) -> dict:
        """Return the report as a plain dict (for benchmark tables)."""
        return {
            "wall_time_s": self.wall_time_s,
            "peak_python_mb": self.peak_python_mb,
            "current_python_mb": self.current_python_mb,
            "max_rss_mb": self.max_rss_mb,
        }


class ResourceMonitor:
    """Context manager measuring wall time and (optionally) Python heap usage.

    ``trace_memory=True`` enables ``tracemalloc``, which gives precise Python
    heap peaks but slows execution noticeably; the end-to-end benchmarks turn
    it on for *both* compared systems so the overhead cancels out, while the
    executor's routine bookkeeping keeps it off.

    Example::

        with ResourceMonitor(trace_memory=True) as monitor:
            run_pipeline()
        print(monitor.report.wall_time_s)
    """

    def __init__(self, trace_memory: bool = False):
        self.trace_memory = trace_memory
        self.report: ResourceReport | None = None
        self._start_time = 0.0
        self._started_tracing = False

    def __enter__(self) -> "ResourceMonitor":
        if self.trace_memory:
            self._started_tracing = not tracemalloc.is_tracing()
            if self._started_tracing:
                tracemalloc.start()
            tracemalloc.reset_peak()
        self._start_time = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        wall_time = time.perf_counter() - self._start_time
        if self.trace_memory:
            current, peak = tracemalloc.get_traced_memory()
            if self._started_tracing:
                tracemalloc.stop()
        else:
            current, peak = 0, 0
        max_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        self.report = ResourceReport(
            wall_time_s=wall_time,
            peak_python_mb=peak / (1024 * 1024),
            current_python_mb=current / (1024 * 1024),
            max_rss_mb=max_rss_kb / 1024,
        )


class _Tracking:
    """Mutable handle yielded by :meth:`RunProfiler.track`.

    The caller sets :attr:`rows_out` before the ``with`` block ends; rows are
    only accumulated when it did (an aborted call still accounts its time).
    """

    __slots__ = ("rows_out",)

    def __init__(self) -> None:
        self.rows_out: int | None = None


class RunProfiler:
    """Accumulate per-operator execution metrics across calls and shards.

    One profiler lives for one executor run.  Operators are keyed by object
    identity, so an operator touched many times (once per shard in streaming
    mode, or a Deduplicator's hash stage plus its global resolve) aggregates
    into a single :class:`~repro.core.report.OpReport` section, in first-touch
    (= pipeline) order.

    Wall time is host wall-clock: for worker-pool stages it covers the
    dispatch round trip, which *includes* the worker processes' compute time
    because the host blocks on the pool.  ``max_rss_mb`` is the host
    process's peak RSS observed after any call of the op.
    """

    def __init__(self) -> None:
        self._profiles: dict[int, OpReport] = {}

    def profile_for(self, op: Any) -> OpReport:
        """Return (creating on first touch) the profile of an operator."""
        key = id(op)
        if key not in self._profiles:
            from repro.core.base_op import op_category

            self._profiles[key] = OpReport(name=op.name, op_type=op_category(op))
        return self._profiles[key]

    @contextmanager
    def track(self, op: Any, rows_in: int) -> Iterator[_Tracking]:
        """Time one executed call of ``op`` over ``rows_in`` input rows.

        Usage::

            with profiler.track(op, rows_in=len(dataset)) as tracking:
                dataset = op.run(dataset)
                tracking.rows_out = len(dataset)
        """
        profile = self.profile_for(op)
        tracking = _Tracking()
        start = time.perf_counter()
        try:
            yield tracking
        finally:
            profile.wall_time_s += time.perf_counter() - start
            profile.calls += 1
            profile.max_rss_mb = max(profile.max_rss_mb, max_rss_mb())
            if tracking.rows_out is not None:
                profile.rows_in += rows_in
                profile.rows_out += tracking.rows_out

    def record_cached(self, op: Any, rows_out: int) -> None:
        """Account a call answered entirely from the cache (op never ran)."""
        del rows_out  # the operator never saw these rows; only count the call
        self.profile_for(op).cached_calls += 1

    def reports(self) -> list[OpReport]:
        """Per-op sections in first-touch (pipeline) order."""
        return list(self._profiles.values())


def time_call(function, *args, **kwargs) -> tuple[float, object]:
    """Return (elapsed_seconds, result) of calling ``function``."""
    start = time.perf_counter()
    result = function(*args, **kwargs)
    return time.perf_counter() - start, result
