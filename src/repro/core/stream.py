"""Out-of-core streaming execution: shard chunking, spill store, global resolve.

The streaming run mode (``Executor.run_streaming`` / CLI ``--stream``) never
holds the whole corpus in memory.  Records are drawn lazily from a formatter,
chunked into bounded *shards* (:func:`iter_record_shards`), and each shard is
driven through the existing batched columnar engine one at a time.

Sample-level operators (Mappers, Filters) are embarrassingly shard-parallel.
Dataset-level operators (Deduplicators, Selectors) use a **two-pass**
strategy, in the spirit of O(1)-round massively-parallel processing: no pass
ever holds more than one shard of payload.

1. *Signature pass* — every shard is transformed by the pending sample ops,
   the global op's per-sample stage (hashing) runs shard-wise, and the shard
   is spilled to disk (:class:`ShardStore`).  Only the op's small *signature
   columns* (hashes, the selection field, stats — never the text payload) are
   accumulated in memory, each row tagged with a global row id.
2. *Global resolve* — the op's unmodified ``process`` runs once over the
   skinny signature dataset (:func:`resolve_global_keep`), yielding a keep
   mask over global row ids.  Because every built-in Deduplicator/Selector
   preserves input order, the mask reproduces the in-memory result exactly.
3. *Mask pass* — spilled shards are streamed back out with the mask applied
   (and the op's hash columns dropped), feeding the next pipeline segment.

Shard spilling doubles as **shard-granular checkpointing**: with
``use_checkpoint`` the spill directory lives under the checkpoint manager and
survives crashes, so a resumed run skips every shard already processed.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator

from repro.core.base_op import OP, Deduplicator, Filter, Mapper, Selector
from repro.core.dataset import NestedDataset, _stable_hash
from repro.core.errors import DatasetError
from repro.core.sample import Fields, HashKeys

#: default shard budget when neither ``max_shard_rows`` nor
#: ``max_shard_chars`` is configured
DEFAULT_SHARD_ROWS = 4096

#: transient column tagging every signature row with its global position
ROW_ID_COLUMN = "__row_id__"


def op_config_hash(op: OP) -> str:
    """Digest of an operator's identity *and* parameters.

    Used by both checkpoint granularities to detect that a recipe edit
    changed what an operator would produce — a resume is only valid while
    every already-applied op hashes the same.
    """
    return _stable_hash({"name": op.name, "config": op.config()})


# ----------------------------------------------------------------------
# Shard chunking
# ----------------------------------------------------------------------
def iter_record_shards(
    records: Iterable[dict],
    max_rows: int | None = None,
    max_chars: int | None = None,
    text_key: str = Fields.text,
) -> Iterator[list[dict]]:
    """Chunk a lazy record stream into bounded shards.

    A shard closes when it holds ``max_rows`` rows or at least
    ``max_chars`` characters of text, whichever comes first; with neither
    budget set, :data:`DEFAULT_SHARD_ROWS` applies.  Shard boundaries are a
    pure memory knob — the batched operator engine is boundary-independent,
    so results do not depend on them.
    """
    if max_rows is None and max_chars is None:
        max_rows = DEFAULT_SHARD_ROWS
    if (max_rows is not None and max_rows < 1) or (max_chars is not None and max_chars < 1):
        raise DatasetError("shard budgets must be >= 1")
    shard: list[dict] = []
    chars = 0
    for record in records:
        shard.append(record)
        if max_chars is not None:
            value = record.get(text_key)
            chars += len(value) if isinstance(value, str) else 0
        if (max_rows is not None and len(shard) >= max_rows) or (
            max_chars is not None and chars >= max_chars
        ):
            yield shard
            shard, chars = [], 0
    if shard:
        yield shard


# ----------------------------------------------------------------------
# Pipeline segmentation
# ----------------------------------------------------------------------
@dataclass
class StreamSegment:
    """A run of shard-local ops, optionally closed by one dataset-level op."""

    sample_ops: list = field(default_factory=list)
    global_op: Any = None


def plan_segments(ops: Iterable[OP]) -> list[StreamSegment]:
    """Split an op list into streamable segments.

    Mappers and Filters are shard-local; Deduplicators and Selectors close
    their segment and are resolved globally between passes.  Any other
    dataset-level operator fails fast — the global resolve only sees the
    skinny signature columns (never the text payload), so an op category it
    does not understand could silently produce different rows than the
    in-memory path.  The returned list always contains at least one segment,
    and only its last segment may lack a global op.
    """
    segments: list[StreamSegment] = []
    current = StreamSegment()
    for op in ops:
        if isinstance(op, (Mapper, Filter)):
            current.sample_ops.append(op)
        elif isinstance(op, (Deduplicator, Selector)):
            current.global_op = op
            segments.append(current)
            current = StreamSegment()
        else:
            raise DatasetError(
                f"streaming mode cannot execute dataset-level op {op.name!r}: "
                "only Mappers, Filters, Deduplicators and Selectors are supported"
            )
    if current.sample_ops or not segments:
        segments.append(current)
    return segments


# ----------------------------------------------------------------------
# Spill store (doubles as the shard-granular checkpoint)
# ----------------------------------------------------------------------
class ShardStore:
    """A directory of spilled shard files, organised per pipeline stage.

    Shards are internal temporaries (never user-facing), so they are stored
    as pickles: several times faster than JSON on the spill-heavy two-pass
    path and lossless for every Python payload (tuples stay tuples, so a
    spill round-trip can never change what the in-memory path would have
    produced).  Writes are atomic (temp file + rename), so a shard that
    exists is a shard that was written completely — the property crash
    recovery relies on.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)

    def stage_dir(self, stage: int) -> Path:
        """Directory holding one pipeline stage's spilled shards."""
        return self.root / f"stage-{stage:02d}"

    def shard_path(self, stage: int, index: int) -> Path:
        """On-disk path of one spilled shard."""
        return self.stage_dir(stage) / f"shard-{index:05d}.pkl"

    def has_shard(self, stage: int, index: int) -> bool:
        """True when a completely-written spill exists for (stage, index)."""
        return self.shard_path(stage, index).exists()

    def write_shard(self, stage: int, index: int, rows: list[dict]) -> Path:
        """Atomically spill one shard's rows; returns the written path."""
        path = self.shard_path(stage, index)
        path.parent.mkdir(parents=True, exist_ok=True)
        temp = path.with_suffix(".tmp")
        with temp.open("wb") as handle:
            pickle.dump(rows, handle, protocol=pickle.HIGHEST_PROTOCOL)
        temp.replace(path)
        return path

    def read_shard_rows(self, stage: int, index: int) -> list[dict]:
        """Load one spilled shard back into memory."""
        with self.shard_path(stage, index).open("rb") as handle:
            return pickle.load(handle)

    def clear(self) -> None:
        """Remove every spilled shard and manifest."""
        if not self.root.exists():
            return
        for child in sorted(self.root.rglob("*"), reverse=True):
            if child.is_file():
                child.unlink()
            else:
                child.rmdir()


# ----------------------------------------------------------------------
# Global (two-pass) resolution of dataset-level ops
# ----------------------------------------------------------------------
_HASH_COLUMNS = (HashKeys.hash, HashKeys.minhash, HashKeys.simhash)


def signature_column_names(op: Any, column_names: list[str], text_key: str) -> list[str]:
    """Columns the global resolve needs — everything *except* the payload.

    Deduplicators only read their hash columns.  Selectors read whatever
    field they rank on (plus stats/meta, which are small); the text column is
    excluded unless the selector explicitly selects on it.
    """
    if isinstance(op, Deduplicator):
        columns = [name for name in column_names if name in _HASH_COLUMNS]
        if not columns:
            # fail fast: resolving with no hash column would read None for
            # every row and silently collapse the corpus to one "duplicate"
            raise DatasetError(
                f"deduplicator {op.name!r} stores its signature outside the "
                f"standard hash columns {_HASH_COLUMNS}; streaming mode cannot "
                "resolve it globally"
            )
        return columns
    keep = [name for name in column_names if name != text_key]
    field_key = getattr(op, "field_key", None)
    if isinstance(field_key, str) and field_key:
        top = field_key.split(".", 1)[0]
        if top in column_names and top not in keep:
            keep.append(top)
    return keep


def resolve_global_keep(op: Any, signature: NestedDataset) -> tuple[list[bool], set[str]]:
    """Run a dataset-level op over the skinny signature dataset.

    ``signature`` must carry a :data:`ROW_ID_COLUMN`.  Returns the keep mask
    over global row ids plus the columns the op removed (a deduplicator
    drops its own hash column), which the mask pass then strips from the
    spilled rows.  Exact because every built-in Deduplicator/Selector keeps
    surviving rows in input order.
    """
    if len(signature) == 0:
        return [], set()
    if isinstance(op, Deduplicator):
        result, _pairs = op.process(signature, show_num=0)
    elif isinstance(op, Selector):
        result = op.process(signature)
    else:
        raise DatasetError(
            f"cannot resolve dataset-level op {getattr(op, 'name', op)!r} globally"
        )
    surviving = set(result.column(ROW_ID_COLUMN))
    mask = [row_id in surviving for row_id in signature.column(ROW_ID_COLUMN)]
    dropped = set(signature.column_names) - set(result.column_names)
    dropped.discard(ROW_ID_COLUMN)
    return mask, dropped


def apply_keep_mask(
    rows: list[dict], mask: list[bool], drop_columns: set[str]
) -> list[dict]:
    """Keep the masked rows of one shard, stripping resolved hash columns."""
    if drop_columns:
        return [
            {key: value for key, value in row.items() if key not in drop_columns}
            for row, keep in zip(rows, mask)
            if keep
        ]
    return [row for row, keep in zip(rows, mask) if keep]


def run_sample_ops(
    rows: list[dict],
    sample_ops: list,
    pool_factory: Callable[[], Any] | None = None,
    profiler: Any = None,
    tracer: Any = None,
    policy: Any = None,
    faults: Any = None,
    quarantine: Any = None,
    shard_id: str | None = None,
) -> NestedDataset:
    """Drive one shard through a run of Mappers/Filters (batched engine).

    ``pool_factory`` lazily provides a :class:`repro.parallel.WorkerPool`
    handle exactly like the in-memory executor — the pool is only created
    when an op actually executes.  ``profiler`` is an optional
    :class:`repro.core.monitor.RunProfiler` accumulating per-op wall time and
    row counts across shards; ``tracer`` is an optional
    :class:`repro.core.tracer.StreamingTracer` whose per-op accumulators
    every shard feeds incrementally.

    With a ``policy`` (:class:`repro.core.faults.ErrorPolicy`, plus the
    matching ``faults`` tracker and optional ``quarantine`` writer) every op
    runs through :func:`repro.core.faults.run_op_with_policy` — retried, and
    under a lenient policy row-isolated so one poison row only removes
    itself from the shard.  ``shard_id`` labels fault records and error
    messages with the shard being processed.
    """

    def apply(op: Any, dataset: NestedDataset, pool: Any) -> NestedDataset:
        if policy is None:
            return op.run(dataset, tracer=tracer, pool=pool)
        from repro.core.faults import run_op_with_policy

        return run_op_with_policy(
            op, dataset, policy, faults, quarantine,
            tracer=tracer, pool=pool, shard_id=shard_id,
        )

    dataset = NestedDataset.from_list(rows)
    for op in sample_ops:
        pool = pool_factory() if pool_factory is not None else None
        if profiler is not None:
            with profiler.track(op, rows_in=len(dataset)) as tracking:
                dataset = apply(op, dataset, pool)
                tracking.rows_out = len(dataset)
        else:
            dataset = apply(op, dataset, pool)
    return dataset


def stage_chain_hash(segment: StreamSegment) -> str:
    """Fingerprint of the shard-local work of one streaming segment.

    Digests the ordered config hashes of every shard-local op, plus the
    hashing stage of a closing Deduplicator (whose hash columns are part of
    the shard output that gets spilled/cached).  Together with a shard's
    input signature this keys the shard-level cache: equal keys guarantee a
    replayed shard is byte-equal to recomputation.
    """
    parts = [op_config_hash(op) for op in segment.sample_ops]
    if isinstance(segment.global_op, Deduplicator):
        parts.append("hash:" + op_config_hash(segment.global_op))
    return _stable_hash(parts)


__all__ = [
    "DEFAULT_SHARD_ROWS",
    "ROW_ID_COLUMN",
    "ShardStore",
    "StreamSegment",
    "apply_keep_mask",
    "iter_record_shards",
    "op_config_hash",
    "plan_segments",
    "resolve_global_keep",
    "run_sample_ops",
    "signature_column_names",
    "stage_chain_hash",
]
