"""Shared problem-report formatting for every static checking surface.

``repro validate-recipe`` and ``repro lint`` both end in the same shape of
output: a list of findings (each naming where the problem is and what is
wrong) or a short all-clear message, with the process exit code derived from
the count.  This module is the single home of that formatting so the two
commands — and any future checker — stay word-for-word consistent instead of
each re-implementing ``found N problem(s)`` in :mod:`repro.cli`.
"""

from __future__ import annotations

from typing import Iterable


def format_location(path: str, line: int | None = None) -> str:
    """``path:line`` (or just ``path``) — the clickable prefix of a finding."""
    return f"{path}:{line}" if line is not None else str(path)


def render_problems(
    problems: Iterable[object],
    empty_message: str,
    noun: str = "problem",
) -> str:
    """Render findings as the canonical ``found N <noun>(s):`` block.

    ``problems`` may be any objects with a useful ``str()`` (schema issues,
    lint violations, exceptions).  An empty iterable renders the all-clear
    ``empty_message`` instead, so callers never special-case success.
    """
    items = [str(problem) for problem in problems]
    if not items:
        return empty_message
    lines = [f"found {len(items)} {noun}(s):"]
    lines.extend(f"  - {item}" for item in items)
    return "\n".join(lines)


def severity_footer(errors: int, warnings: int, suppressed: int = 0) -> str:
    """The shared ``N error(s) / M warning(s) / K suppressed`` summary line.

    ``repro lint`` and ``repro dataflow`` both close their reports with this
    footer so CI log scrapers can parse one shape.
    """
    parts = [f"{errors} error(s)", f"{warnings} warning(s)"]
    if suppressed:
        parts.append(f"{suppressed} suppressed")
    return " / ".join(parts)


__all__ = ["format_location", "render_problems", "severity_footer"]
