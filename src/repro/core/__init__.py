"""Core building blocks: dataset substrate, OP base classes, executor and optimizations."""

from repro.core.base_op import Deduplicator, Filter, Formatter, Mapper, Selector
from repro.core.cache import CacheManager
from repro.core.checkpoint import CheckpointManager
from repro.core.config import (
    KNOWN_RECIPE_KEYS,
    RecipeConfig,
    load_config,
    save_config,
    validate_config,
)
from repro.core.dataset import NestedDataset, concatenate_datasets, dataset_token_count
from repro.core.executor import Executor
from repro.core.exporter import Exporter
from repro.core.fusion import FusedFilter, fuse_operators
from repro.core.monitor import ResourceMonitor
from repro.core.planner import ExecutionPlan, ResourceBudget, plan_execution
from repro.core.registry import FORMATTERS, OPERATORS, Registry
from repro.core.sample import Fields, HashKeys, StatsKeys
from repro.core.schema import OpSchema, ParamSpec, SchemaIssue, schema_for
from repro.core.tracer import Tracer

__all__ = [
    "CacheManager",
    "CheckpointManager",
    "Deduplicator",
    "ExecutionPlan",
    "Executor",
    "Exporter",
    "FORMATTERS",
    "Fields",
    "Filter",
    "Formatter",
    "FusedFilter",
    "HashKeys",
    "KNOWN_RECIPE_KEYS",
    "Mapper",
    "NestedDataset",
    "OPERATORS",
    "OpSchema",
    "ParamSpec",
    "RecipeConfig",
    "Registry",
    "ResourceBudget",
    "ResourceMonitor",
    "SchemaIssue",
    "Selector",
    "StatsKeys",
    "Tracer",
    "concatenate_datasets",
    "dataset_token_count",
    "fuse_operators",
    "load_config",
    "plan_execution",
    "save_config",
    "schema_for",
    "validate_config",
]
