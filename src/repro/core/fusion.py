"""Operator fusion and reordering (Sec. 6 of the paper, Figure 6).

Successive Filters are commutative: applying them in any order yields the same
surviving set.  Filters that share per-sample context (e.g. the tokenised word
list) can therefore be *fused* into a single operator that computes the shared
context once per sample, runs every member's stats computation against it, and
drops the sample as soon as any member rejects it.  The fused (time-consuming)
operator is additionally *reordered* to the end of its filter group so that the
cheaper filters shrink the data first.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.base_op import Deduplicator, Filter, Mapper, Selector
from repro.core.batch import batch_length, batch_select
from repro.core.context import enable_context
from repro.core.dataset import NestedDataset
from repro.core.sample import clear_context


class FusedFilter(Filter):
    """A filter combining several fusible filters behind one map/filter pass."""

    _name = "fused_filter"

    def __init__(self, fused_filters: Sequence[Filter]):
        super().__init__()
        if not fused_filters:
            raise ValueError("FusedFilter needs at least one member filter")
        self.fused_filters = list(fused_filters)
        self._name = "fused_filter(" + ",".join(op.name for op in self.fused_filters) + ")"
        # inherit the members' batch-size tuning (first explicit setting wins)
        for member in self.fused_filters:
            if member._batch_size is not None:
                self._batch_size = member._batch_size
                break

    def config(self) -> dict:
        """Constructor parameters, with every member's own config embedded.

        The generic :meth:`OP.config` would serialise the member list via
        param-less ``repr``s, making fused plans with different member
        thresholds indistinguishable to fingerprints and cache keys.
        """
        params = super().config()
        params["fused_filters"] = [
            {"name": member.name, "config": member.config()} for member in self.fused_filters
        ]
        return params

    def compute_stats(self, sample: dict, context: bool = True) -> dict:
        """Compute every member's stats, sharing the per-sample context."""
        enable_context(sample)
        for member in self.fused_filters:
            sample = member.compute_stats(sample, context=True)
        clear_context(sample)
        return sample

    def process(self, sample: dict) -> bool:
        """Keep the sample only when every member filter keeps it."""
        return all(member.process(sample) for member in self.fused_filters)

    def compute_stats_batched(self, samples: dict, context: dict | None = None) -> dict:
        """Compute every member's stats for a batch, sharing a batch context.

        The shared store holds row-aligned column values (e.g. the tokenised
        word lists), so the batch is tokenised once and every member reuses
        the result — the batched analogue of the per-sample context.
        """
        shared = {} if context is None else context
        for member in self.fused_filters:
            samples = member.compute_stats_batched(samples, context=shared)
        return samples

    def process_batched(self, samples: dict) -> list[bool]:
        """AND of every member's flags over a fully stat-annotated batch."""
        flags = [True] * batch_length(samples)
        for member in self.fused_filters:
            member_flags = member.process_batched(samples)
            flags = [a and b for a, b in zip(flags, member_flags)]
        return flags

    def filter_batched(self, samples: dict) -> tuple[dict, list[bool]]:
        """Member-interleaved batch pass with early short-circuit.

        Each member computes its stats and decides on the rows still alive;
        rejected rows are removed from the working batch (and from the shared
        context columns) before the next — typically more expensive — member
        runs.  Surviving rows end up with every member's stats, identical to
        the per-row path; rejected rows may carry partial stats but are
        dropped from the output either way.
        """
        total = batch_length(samples)
        flags = [True] * total
        alive = list(range(total))
        context: dict = {}
        current = samples
        for member in self.fused_filters:
            if not alive:
                break
            current = member.compute_stats_batched(current, context=context)
            member_flags = member.process_batched(current)
            if not all(member_flags):
                keep_local = [i for i, keep in enumerate(member_flags) if keep]
                for local, keep in enumerate(member_flags):
                    if not keep:
                        flags[alive[local]] = False
                current = batch_select(current, keep_local)
                context = {key: [values[i] for i in keep_local] for key, values in context.items()}
                alive = [alive[i] for i in keep_local]
        return current, flags


def _share_context(left: Filter, right: Filter) -> bool:
    """Two filters are fusible together when they share at least one context key."""
    return bool(set(left.context_keys) & set(right.context_keys))


def _split_filter_group(group: list[Filter]) -> tuple[list[Filter], list[Filter]]:
    """Split a group of consecutive filters into (non-fusible, fusible) members.

    A filter is fusible when it declares context keys shared with at least one
    other filter of the group.
    """
    fusible: list[Filter] = []
    non_fusible: list[Filter] = []
    for candidate in group:
        if candidate.context_keys and any(
            other is not candidate and _share_context(candidate, other) for other in group
        ):
            fusible.append(candidate)
        else:
            non_fusible.append(candidate)
    return non_fusible, fusible


def fuse_operators(ops: Sequence) -> list:
    """Return a new operator list with fusible filter groups fused and reordered.

    The procedure follows Figure 6 of the paper:

    1. find maximal groups of consecutive Filters (other OP types break groups);
    2. within each group, fuse the >1 fusible members into one
       :class:`FusedFilter` and reorder it to the end of the group;
    3. groups with 0 or 1 fusible member keep their membership, with the single
       fusible member (if any) moved last.
    """
    fused_list: list = []
    group: list[Filter] = []

    def flush_group() -> None:
        if not group:
            return
        non_fusible, fusible = _split_filter_group(group)
        fused_list.extend(non_fusible)
        if len(fusible) > 1:
            fused_list.append(FusedFilter(fusible))
        elif fusible:
            fused_list.extend(fusible)
        group.clear()

    for op in ops:
        if isinstance(op, Filter) and not isinstance(op, FusedFilter):
            group.append(op)
        else:
            flush_group()
            fused_list.append(op)
    flush_group()
    return fused_list


def describe_plan(ops: Sequence) -> list[dict]:
    """Summarise an operator list: name, category and fused membership.

    Used by the executor's logging and by the OP-fusion benchmark to report
    which operators ended up fused.
    """
    plan = []
    for op in ops:
        if isinstance(op, FusedFilter):
            category = "fused_filter"
            members = [member.name for member in op.fused_filters]
        else:
            members = []
            if isinstance(op, Mapper):
                category = "mapper"
            elif isinstance(op, Filter):
                category = "filter"
            elif isinstance(op, Deduplicator):
                category = "deduplicator"
            elif isinstance(op, Selector):
                category = "selector"
            else:
                category = "other"
        plan.append({"name": op.name, "category": category, "members": members})
    return plan


def run_fused_pipeline(dataset: NestedDataset, ops: Sequence, tracer=None) -> NestedDataset:
    """Run an (optionally fused) operator list over a dataset sequentially."""
    current = dataset
    for op in ops:
        current = op.run(current, tracer=tracer)
    return current
