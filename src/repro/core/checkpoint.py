"""Checkpoint manager: persist the full processing state for crash recovery.

The paper's checkpoint mechanism (Sec. 4.1.1) stores the whole dataset plus the
index of the last completed operator so a failed or interrupted run can resume
from the most recent state instead of re-executing the whole recipe.

Two granularities are supported:

* **run-level** (``save`` / ``load``): the classic whole-dataset checkpoint
  written after every completed operator.  The state records a per-op
  *config hash* besides the op name, so editing an operator's parameters
  invalidates the resume instead of silently reusing data produced by the
  old configuration.
* **shard-level** (``stream_dir`` / ``*_stream_state``): the streaming run
  mode spills every processed shard under ``<checkpoint_dir>/stream`` (see
  :class:`repro.core.stream.ShardStore`), so a crash resumes mid-corpus.
  The manager owns the persistent directory and the state file that guards
  it against recipe / shard-budget changes.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.core.dataset import NestedDataset
from repro.core.errors import CheckpointError
from repro.core.serialization import JsonSanitizer


def atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (same-directory tmp + replace).

    A crash mid-write leaves either the previous file or the stray ``.tmp``
    behind — never a truncated target — which is the property every resume
    path relies on.
    """
    temp = path.with_name(path.name + ".tmp")
    temp.write_text(text, encoding="utf-8")
    os.replace(temp, path)


class CheckpointManager:
    """Save/load dataset + pipeline-position checkpoints under a directory."""

    STATE_FILE = "checkpoint_state.json"
    DATA_FILE = "checkpoint_data.jsonl"
    STREAM_STATE_FILE = "stream_state.json"
    STREAM_DIR = "stream"

    def __init__(self, checkpoint_dir: str | Path, enabled: bool = True):
        self.checkpoint_dir = Path(checkpoint_dir)
        self.enabled = enabled

    # ------------------------------------------------------------------
    # Run-level checkpoints
    # ------------------------------------------------------------------
    def exists(self) -> bool:
        """Return True when a complete checkpoint is present on disk."""
        return (
            self.enabled
            and (self.checkpoint_dir / self.STATE_FILE).exists()
            and (self.checkpoint_dir / self.DATA_FILE).exists()
        )

    def save(
        self,
        dataset: NestedDataset,
        op_index: int,
        op_names: list[str],
        op_hashes: list[str] | None = None,
    ) -> None:
        """Persist the dataset and the index of the last completed operator.

        ``op_hashes`` are per-op digests of each operator's ``config()``;
        a later resume is only honoured when the hash prefix still matches,
        so re-running after editing an op's parameters re-executes instead
        of silently reusing stale data.
        """
        if not self.enabled:
            return
        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        data_path = self.checkpoint_dir / self.DATA_FILE
        sanitizer = JsonSanitizer()
        # both files are written atomically (tmp + os.replace), data before
        # state: a crash at any point leaves either no new checkpoint or a
        # complete one, never a state file pointing at truncated data
        temp_data = data_path.with_name(data_path.name + ".tmp")
        with temp_data.open("w", encoding="utf-8") as handle:
            for row in dataset:
                handle.write(sanitizer.dumps(row, ensure_ascii=False) + "\n")
        os.replace(temp_data, data_path)
        sanitizer.warn(f"checkpoint {data_path}")
        state = {
            "op_index": op_index,
            "op_names": op_names,
            "op_hashes": list(op_hashes) if op_hashes is not None else None,
            "num_rows": len(dataset),
            "fingerprint": dataset.fingerprint,
        }
        atomic_write_text(
            self.checkpoint_dir / self.STATE_FILE, json.dumps(state, indent=2)
        )

    def read_state(self) -> dict | None:
        """Return the saved checkpoint state dict, or ``None`` when absent.

        A corrupt state file (e.g. from a crash predating atomic writes)
        reads as ``None`` — the run re-executes from scratch instead of
        failing on resume.
        """
        path = self.checkpoint_dir / self.STATE_FILE
        if not (self.enabled and path.exists()):
            return None
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, OSError):
            return None

    def load(self) -> tuple[NestedDataset, int, list[str]]:
        """Load the checkpointed dataset and pipeline position.

        Raises :class:`CheckpointError` when no checkpoint is available.
        """
        if not self.exists():
            raise CheckpointError(f"no checkpoint found under {self.checkpoint_dir}")
        state = self.read_state()
        if state is None:
            raise CheckpointError(
                f"checkpoint state under {self.checkpoint_dir} is unreadable"
            )
        rows = []
        with (self.checkpoint_dir / self.DATA_FILE).open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    rows.append(json.loads(line))
        # restore the saved fingerprint: with incremental fingerprints the
        # content probe of from_list could never match what the original run
        # stamped, and every downstream cache key would miss after a resume
        dataset = NestedDataset.from_list(rows, fingerprint=state.get("fingerprint"))
        return dataset, int(state["op_index"]), list(state.get("op_names", []))

    def clear(self) -> None:
        """Remove any existing run-level checkpoint files."""
        for name in (self.STATE_FILE, self.DATA_FILE):
            path = self.checkpoint_dir / name
            if path.exists():
                path.unlink()

    # ------------------------------------------------------------------
    # Shard-level (streaming) checkpoints
    # ------------------------------------------------------------------
    @property
    def stream_dir(self) -> Path:
        """Directory holding the streaming run's spilled shards."""
        return self.checkpoint_dir / self.STREAM_DIR

    def load_stream_state(self) -> dict | None:
        """Return the persisted streaming state, or ``None`` when absent."""
        path = self.checkpoint_dir / self.STREAM_STATE_FILE
        if not (self.enabled and path.exists()):
            return None
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            return None

    def save_stream_state(self, state: dict) -> None:
        """Persist the streaming state (op hashes, shard budget, progress)."""
        if not self.enabled:
            return
        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        atomic_write_text(
            self.checkpoint_dir / self.STREAM_STATE_FILE, json.dumps(state, indent=2)
        )

    def clear_stream(self) -> None:
        """Drop the streaming state file and every spilled shard."""
        from repro.core.stream import ShardStore

        path = self.checkpoint_dir / self.STREAM_STATE_FILE
        if path.exists():
            path.unlink()
        if self.stream_dir.exists():
            ShardStore(self.stream_dir).clear()
            self.stream_dir.rmdir()
