"""Checkpoint manager: persist the full processing state for crash recovery.

The paper's checkpoint mechanism (Sec. 4.1.1) stores the whole dataset plus the
index of the last completed operator so a failed or interrupted run can resume
from the most recent state instead of re-executing the whole recipe.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.dataset import NestedDataset
from repro.core.errors import CheckpointError


class CheckpointManager:
    """Save/load dataset + pipeline-position checkpoints under a directory."""

    STATE_FILE = "checkpoint_state.json"
    DATA_FILE = "checkpoint_data.jsonl"

    def __init__(self, checkpoint_dir: str | Path, enabled: bool = True):
        self.checkpoint_dir = Path(checkpoint_dir)
        self.enabled = enabled

    # ------------------------------------------------------------------
    def exists(self) -> bool:
        """Return True when a complete checkpoint is present on disk."""
        return (
            self.enabled
            and (self.checkpoint_dir / self.STATE_FILE).exists()
            and (self.checkpoint_dir / self.DATA_FILE).exists()
        )

    def save(self, dataset: NestedDataset, op_index: int, op_names: list[str]) -> None:
        """Persist the dataset and the index of the last completed operator."""
        if not self.enabled:
            return
        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        data_path = self.checkpoint_dir / self.DATA_FILE
        with data_path.open("w", encoding="utf-8") as handle:
            for row in dataset:
                handle.write(json.dumps(row, ensure_ascii=False, default=repr) + "\n")
        state = {
            "op_index": op_index,
            "op_names": op_names,
            "num_rows": len(dataset),
            "fingerprint": dataset.fingerprint,
        }
        (self.checkpoint_dir / self.STATE_FILE).write_text(
            json.dumps(state, indent=2), encoding="utf-8"
        )

    def load(self) -> tuple[NestedDataset, int, list[str]]:
        """Load the checkpointed dataset and pipeline position.

        Raises :class:`CheckpointError` when no checkpoint is available.
        """
        if not self.exists():
            raise CheckpointError(f"no checkpoint found under {self.checkpoint_dir}")
        state = json.loads((self.checkpoint_dir / self.STATE_FILE).read_text(encoding="utf-8"))
        rows = []
        with (self.checkpoint_dir / self.DATA_FILE).open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    rows.append(json.loads(line))
        # restore the saved fingerprint: with incremental fingerprints the
        # content probe of from_list could never match what the original run
        # stamped, and every downstream cache key would miss after a resume
        dataset = NestedDataset.from_list(rows, fingerprint=state.get("fingerprint"))
        return dataset, int(state["op_index"]), list(state.get("op_names", []))

    def clear(self) -> None:
        """Remove any existing checkpoint files."""
        for name in (self.STATE_FILE, self.DATA_FILE):
            path = self.checkpoint_dir / name
            if path.exists():
                path.unlink()
