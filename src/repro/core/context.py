"""Per-sample context management shared between fused operators.

The paper (Sec. 6, "Optimized Computation") describes a context manager that
stores intermediate variables — segmented words, split lines, n-grams — so
several Filters operating on the same sample can reuse them instead of
recomputing.  Contexts live inside the sample under ``Fields.context`` and are
cleared after each fused operator so they never leak into exported data.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.sample import Fields, ensure_context


class ContextKeys:
    """Well-known keys of the shared per-sample context."""

    words = "words"
    refined_words = "refined_words"
    lines = "lines"
    sentences = "sentences"
    lower_text = "lower_text"
    char_ngrams = "char_ngrams"
    word_ngrams = "word_ngrams"


def get_or_compute(sample: dict, key: str, compute: Callable[[], Any]) -> Any:
    """Return ``sample``'s cached context value for ``key``, computing it once.

    When context tracking is enabled (the sample carries a context dict) the
    computed value is stored for reuse by later operators in the same fused
    group.
    """
    context = sample.get(Fields.context)
    if isinstance(context, dict) and key in context:
        return context[key]
    value = compute()
    if isinstance(context, dict):
        context[key] = value
    return value


def get_or_compute_column(
    context: dict | None, key: str, compute: Callable[[], list]
) -> list:
    """Batch-level analogue of :func:`get_or_compute`.

    ``context`` is a shared store of per-batch column values (``key`` →
    row-aligned list), threaded through the members of a fused filter by
    :meth:`repro.core.fusion.FusedFilter.filter_batched` so a batch is
    tokenised once and the word lists are reused by every member.  ``None``
    disables sharing (standalone batched execution).
    """
    if context is not None and key in context:
        return context[key]
    value = compute()
    if context is not None:
        context[key] = value
    return value


def enable_context(sample: dict) -> dict:
    """Attach an (empty) context dict to the sample so values get cached."""
    ensure_context(sample)
    return sample


def context_size(sample: dict) -> int:
    """Number of cached context entries on the sample (0 when disabled)."""
    context = sample.get(Fields.context)
    return len(context) if isinstance(context, dict) else 0
