"""Execution planning: pick the physical execution mode for a logical pipeline.

The fluent :class:`repro.api.Pipeline` (and ``repro process --mode auto``)
compiles a recipe into a *logical* plan; this module decides how to run it
physically.  :func:`plan_execution` inspects the input's size and shape plus a
:class:`ResourceBudget` and chooses between the in-memory engine
(:meth:`~repro.core.executor.Executor.run` — batched columnar, worker-pooled
when ``np > 1``) and the out-of-core streaming engine
(:meth:`~repro.core.executor.Executor.run_streaming`), replacing the old
caller-side ``run()``-vs-``run_streaming()`` fork.

The decision is deterministic and fully explained: the returned
:class:`ExecutionPlan` records the estimated input bytes, the projected
in-memory footprint, the budget it was compared against, and one reason line
per rule that fired — surfaced in run reports and ``repro process`` output.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.core.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import RecipeConfig
    from repro.core.dataset import NestedDataset

#: the execution modes ``plan_execution`` accepts
EXECUTION_MODES = ("auto", "memory", "streaming")

#: projected in-memory footprint per raw input byte (columns, stats columns,
#: hash columns, per-op copies held across cache boundaries)
MEMORY_EXPANSION_FACTOR = 4.0

#: additional multiplier for gzip-compressed inputs (typical web-text ratio)
GZIP_EXPANSION_FACTOR = 4.0

#: fraction of detected free memory the planner is willing to commit
DEFAULT_MEMORY_FRACTION = 0.5

#: budget when the platform exposes no memory information (1 GiB)
FALLBACK_MEMORY_BYTES = 1 << 30

#: rows probed when estimating the footprint of an in-memory dataset
_PROBE_ROWS = 64


@dataclass(frozen=True)
class ResourceBudget:
    """The resources an automatic mode decision may plan against."""

    max_memory_bytes: int = FALLBACK_MEMORY_BYTES

    @classmethod
    def detect(cls) -> "ResourceBudget":
        """Budget from the host's currently-available memory (best effort).

        Uses ``sysconf`` available-pages data scaled by
        :data:`DEFAULT_MEMORY_FRACTION`; platforms without it fall back to
        :data:`FALLBACK_MEMORY_BYTES`.
        """
        try:
            page_size = os.sysconf("SC_PAGE_SIZE")
            pages = os.sysconf("SC_AVPHYS_PAGES")
            if page_size > 0 and pages > 0:
                return cls(int(page_size * pages * DEFAULT_MEMORY_FRACTION))
        except (ValueError, OSError, AttributeError):  # pragma: no cover - platform
            pass
        return cls()  # pragma: no cover - exercised only without sysconf


@dataclass
class ExecutionPlan:
    """The planner's decision plus everything it looked at to make it."""

    mode: str
    requested: str = "auto"
    engine: str = "batched"
    np: int = 1
    batch_size: int | None = None
    estimated_input_bytes: int | None = None
    estimated_memory_bytes: int | None = None
    budget_bytes: int | None = None
    reasons: list[str] = field(default_factory=list)
    #: pre-flight dataflow findings (``DataflowFinding.as_dict()`` rows),
    #: attached by ``Pipeline.plan`` and ``Executor.execute``
    dataflow: list[dict] = field(default_factory=list)

    def as_dict(self) -> dict:
        """JSON-safe view embedded into run reports."""
        return {
            "mode": self.mode,
            "requested": self.requested,
            "engine": self.engine,
            "np": self.np,
            "batch_size": self.batch_size,
            "estimated_input_bytes": self.estimated_input_bytes,
            "estimated_memory_bytes": self.estimated_memory_bytes,
            "budget_bytes": self.budget_bytes,
            "reasons": list(self.reasons),
            "dataflow": [dict(finding) for finding in self.dataflow],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ExecutionPlan":
        """Rebuild a plan from :meth:`as_dict` output (e.g. a report's
        ``planner`` section)."""
        known = {key: payload[key] for key in (
            "mode", "requested", "engine", "np", "batch_size",
            "estimated_input_bytes", "estimated_memory_bytes", "budget_bytes",
        ) if key in payload}
        return cls(
            reasons=list(payload.get("reasons", [])),
            dataflow=[dict(f) for f in payload.get("dataflow", [])],
            **known,
        )

    def describe(self) -> str:
        """One-line human rendering (CLI output)."""
        detail = "; ".join(self.reasons) or "no planning rules fired"
        flow = f"; {len(self.dataflow)} dataflow finding(s)" if self.dataflow else ""
        return f"plan: mode={self.mode} engine={self.engine} ({detail}{flow})"


def _file_bytes(path: Path) -> int:
    """Expanded byte estimate of one input file (gzip envelopes inflated)."""
    size = path.stat().st_size
    if path.suffix == ".gz":
        size = int(size * GZIP_EXPANSION_FACTOR)
    return size


def estimate_input_bytes(
    cfg: "RecipeConfig", dataset: "NestedDataset | None" = None
) -> int | None:
    """Estimate the raw input size in bytes, or ``None`` when unknowable.

    For an in-memory dataset the estimate probes the first rows and
    extrapolates; for a path input it sums the resolved files' sizes
    (gzip-compressed files are inflated by :data:`GZIP_EXPANSION_FACTOR`).
    """
    if dataset is not None:
        rows = len(dataset)
        if rows == 0:
            return 0
        probe = dataset[: min(rows, _PROBE_ROWS)]
        probe_bytes = sum(
            len(str(value))
            for row in probe
            for value in row.values()
            if value is not None
        )
        return int(probe_bytes / max(1, len(probe)) * rows)
    if not cfg.dataset_path:
        return None
    path = Path(cfg.dataset_path)
    if path.is_file():
        return _file_bytes(path)
    from repro.formats.sharded import ShardedSource, is_glob

    if path.is_dir() or is_glob(str(cfg.dataset_path)):
        from repro.core.errors import FormatError

        try:
            paths = ShardedSource(cfg.dataset_path).files()
        except FormatError:
            return None
        return sum(_file_bytes(shard) for shard in paths)
    return None


def plan_execution(
    cfg: "RecipeConfig",
    dataset: "NestedDataset | None" = None,
    mode: str = "auto",
    budget: ResourceBudget | None = None,
) -> ExecutionPlan:
    """Choose the physical execution mode for one run.

    ``mode`` is ``"memory"`` / ``"streaming"`` for an explicit override, or
    ``"auto"`` to decide from the recipe (an explicit ``stream: true`` recipe
    keeps streaming), the estimated input size and the memory budget
    (``cfg.memory_budget`` when set, else ``budget``, else
    :meth:`ResourceBudget.detect`).
    """
    if mode not in EXECUTION_MODES:
        raise ConfigError(
            f"unknown execution mode {mode!r}; expected one of {EXECUTION_MODES}"
        )
    if cfg.memory_budget is not None:
        # the recipe's own budget is the user's durable declaration and beats
        # a caller-side default (matching the documented precedence)
        budget = ResourceBudget(cfg.memory_budget)
    elif budget is None:
        budget = ResourceBudget.detect()
    plan = ExecutionPlan(
        mode="memory",
        requested=mode,
        engine="pooled" if cfg.np > 1 else "batched",
        np=cfg.np,
        batch_size=cfg.batch_size,
        budget_bytes=budget.max_memory_bytes,
    )
    if mode == "memory":
        plan.reasons.append("in-memory mode explicitly requested")
        return plan
    if mode == "streaming":
        plan.mode = "streaming"
        plan.reasons.append("streaming mode explicitly requested")
        return plan
    if cfg.stream:
        plan.mode = "streaming"
        plan.reasons.append("recipe requests streaming (stream: true)")
        return plan
    if dataset is not None:
        plan.estimated_input_bytes = estimate_input_bytes(cfg, dataset)
        plan.reasons.append("input dataset is already materialised in memory")
        return plan
    estimated = estimate_input_bytes(cfg)
    plan.estimated_input_bytes = estimated
    if estimated is None:
        plan.reasons.append("input size unknown; defaulting to in-memory execution")
        return plan
    projected = int(estimated * MEMORY_EXPANSION_FACTOR)
    plan.estimated_memory_bytes = projected
    if projected > budget.max_memory_bytes:
        plan.mode = "streaming"
        plan.reasons.append(
            f"projected footprint {projected} B (input {estimated} B x "
            f"{MEMORY_EXPANSION_FACTOR:g}) exceeds the {budget.max_memory_bytes} B "
            "memory budget"
        )
    else:
        plan.reasons.append(
            f"projected footprint {projected} B fits the "
            f"{budget.max_memory_bytes} B memory budget"
        )
    return plan


__all__ = [
    "EXECUTION_MODES",
    "ExecutionPlan",
    "GZIP_EXPANSION_FACTOR",
    "MEMORY_EXPANSION_FACTOR",
    "ResourceBudget",
    "estimate_input_bytes",
    "plan_execution",
]
