"""Stratified sampling over metadata / statistics fields (Sec. 5.2).

The enhanced sampler buckets samples by one or more criteria (a categorical
meta field, or quantile buckets of a numeric stats field) and draws a bounded
number of samples from every bucket, yielding a representative yet compact
subset of a large corpus.
"""

from __future__ import annotations

import random
from collections import defaultdict

import numpy as np

from repro.core.dataset import NestedDataset
from repro.core.sample import get_field


class StratifiedSampler:
    """Sample a fixed budget spread across the value buckets of a field.

    Parameters
    ----------
    field_key:
        The (possibly nested) field to stratify on, e.g. ``"meta.source"`` or
        ``"__stats__.text_len"``.
    num_buckets:
        Number of quantile buckets used when the field is numeric.
    seed:
        Seed of the per-bucket uniform sampling.
    """

    def __init__(self, field_key: str, num_buckets: int = 5, seed: int = 42):
        if not field_key:
            raise ValueError("field_key must be provided")
        self.field_key = field_key
        self.num_buckets = max(1, num_buckets)
        self.seed = seed

    # ------------------------------------------------------------------
    def _bucket_assignments(self, dataset: NestedDataset) -> dict:
        values = [get_field(row, self.field_key) for row in dataset]
        numeric = [
            value for value in values
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        ]
        buckets: dict = defaultdict(list)
        if numeric and len(numeric) == len([v for v in values if v is not None]):
            array = np.asarray(numeric, dtype=float)
            edges = np.quantile(array, np.linspace(0, 1, self.num_buckets + 1))
            for index, value in enumerate(values):
                if value is None:
                    buckets["__missing__"].append(index)
                    continue
                bucket = int(np.searchsorted(edges[1:-1], float(value), side="right"))
                buckets[f"bucket_{bucket}"].append(index)
        else:
            for index, value in enumerate(values):
                key = str(value) if value is not None else "__missing__"
                buckets[key].append(index)
        return buckets

    def sample(self, dataset: NestedDataset, num_samples: int) -> NestedDataset:
        """Return roughly ``num_samples`` rows, balanced across buckets."""
        if len(dataset) == 0 or num_samples <= 0:
            return dataset.select([])
        num_samples = min(num_samples, len(dataset))
        buckets = self._bucket_assignments(dataset)
        rng = random.Random(self.seed)
        per_bucket = max(1, num_samples // max(1, len(buckets)))
        chosen: list[int] = []
        for key in sorted(buckets):
            indices = buckets[key]
            take = min(len(indices), per_bucket)
            chosen.extend(rng.sample(indices, take))
        # top-up (or trim) to hit the requested budget
        remaining = [index for index in range(len(dataset)) if index not in set(chosen)]
        rng.shuffle(remaining)
        while len(chosen) < num_samples and remaining:
            chosen.append(remaining.pop())
        chosen = chosen[:num_samples]
        return dataset.select(sorted(chosen))
