"""Diversity-aware sampling based on verb–noun linguistic diversity (Sec. 5.2).

This sampler implements the "bucket by analytical dimensions, sample a fixed
amount from each" strategy the paper uses to build its fine-tuning recipes:
samples are grouped by their extracted (verb, noun) pair and the budget is
spread across as many distinct pairs as possible, maximising expression
diversity for a given data volume.
"""

from __future__ import annotations

import random
from collections import defaultdict

from repro.analysis.diversity_analysis import extract_verb_noun
from repro.core.dataset import NestedDataset
from repro.core.sample import get_field


class DiversitySampler:
    """Select a subset maximising the number of distinct verb–noun pairs."""

    def __init__(self, text_key: str = "text", seed: int = 42):
        self.text_key = text_key
        self.seed = seed

    def sample(self, dataset: NestedDataset, num_samples: int) -> NestedDataset:
        """Return up to ``num_samples`` rows covering as many verb–noun pairs as possible."""
        if len(dataset) == 0 or num_samples <= 0:
            return dataset.select([])
        num_samples = min(num_samples, len(dataset))
        groups: dict = defaultdict(list)
        for index, row in enumerate(dataset):
            text = get_field(row, self.text_key, "")
            pair = extract_verb_noun(text if isinstance(text, str) else "")
            groups[pair].append(index)
        rng = random.Random(self.seed)
        for indices in groups.values():
            rng.shuffle(indices)
        chosen: list[int] = []
        # round-robin over groups: one sample per distinct pair per round
        keys = sorted(groups, key=lambda key: (key is None, str(key)))
        round_index = 0
        while len(chosen) < num_samples:
            progressed = False
            for key in keys:
                indices = groups[key]
                if round_index < len(indices):
                    chosen.append(indices[round_index])
                    progressed = True
                    if len(chosen) >= num_samples:
                        break
            if not progressed:
                break
            round_index += 1
        return dataset.select(sorted(chosen[:num_samples]))

    def diversity_of(self, dataset: NestedDataset) -> float:
        """Convenience: the verb–noun diversity score of a dataset."""
        from repro.analysis.diversity_analysis import DiversityAnalysis

        return DiversityAnalysis(text_key=self.text_key).analyze(dataset).diversity_score()
