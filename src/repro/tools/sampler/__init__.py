"""Enhanced samplers for LLM data: stratified and diversity-aware selection."""

from repro.tools.sampler.diversity import DiversitySampler
from repro.tools.sampler.stratified import StratifiedSampler

__all__ = ["DiversitySampler", "StratifiedSampler"]
