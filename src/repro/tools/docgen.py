"""Generated documentation: the operator catalog, straight from the registry.

``python -m repro docs-ops`` (or ``make docs``) walks
:data:`repro.core.registry.OPERATORS` and renders ``docs/ops_catalog.md``:
every registered operator with its category, one-line description (the first
docstring line) and constructor parameters with defaults.  The committed
catalog is asserted in sync with the registry by ``tests/test_docs.py``, so
documentation rot fails the build instead of shipping.

Rendering is deterministic (sorted by category, then name; ``repr`` defaults)
— regenerating from an unchanged registry is always a no-op diff.
"""

from __future__ import annotations

import inspect
from collections import Counter
from pathlib import Path

import repro.ops  # noqa: F401  (populates the registry as an import side effect)
from repro.core.base_op import op_category
from repro.core.registry import OPERATORS

#: display order of the operator categories in the catalog
CATEGORY_ORDER = ("mapper", "filter", "deduplicator", "selector", "op")

CATALOG_HEADER = """\
# Operator catalog

> **Generated file — do not edit.**  Regenerate with `make docs`
> (`python -m repro docs-ops`).  `tests/test_docs.py` fails when this file
> is out of sync with the operator registry.

Every operator registered in `repro.core.registry.OPERATORS`, grouped by
category.  Parameters are the constructor's keyword arguments with their
defaults; `text_key` (default `"text"`) and `batch_size` (execution tuning)
are accepted by every operator and omitted from the tables.
"""

#: constructor parameters shared by every OP, left out of the per-op tables
_COMMON_PARAMS = ("self", "text_key", "batch_size", "args", "kwargs")


def op_doc_summary(cls: type) -> str:
    """First line of an operator class's docstring (empty when undocumented)."""
    doc = inspect.getdoc(cls) or ""
    for line in doc.splitlines():
        line = line.strip()
        if line:
            return line
    return ""


def op_parameters(cls: type) -> list[tuple[str, str]]:
    """``(name, default_repr)`` pairs of an operator's own constructor params.

    Parameters every op shares (``text_key``, ``batch_size``) and catch-all
    ``**kwargs`` are omitted; a parameter without a default renders as
    ``required``.
    """
    try:
        signature = inspect.signature(cls.__init__)
    except (TypeError, ValueError):  # pragma: no cover - builtins only
        return []
    parameters = []
    for name, parameter in signature.parameters.items():
        if name in _COMMON_PARAMS or parameter.kind in (
            inspect.Parameter.VAR_POSITIONAL,
            inspect.Parameter.VAR_KEYWORD,
        ):
            continue
        default = (
            "required"
            if parameter.default is inspect.Parameter.empty
            else f"`{parameter.default!r}`"
        )
        parameters.append((name, default))
    return parameters


def op_catalog_entries() -> list[dict]:
    """One catalog entry per registered operator, in rendering order."""
    entries = []
    for name in OPERATORS.list():
        cls = OPERATORS.get(name)
        entries.append(
            {
                "name": name,
                "category": op_category(cls),
                "summary": op_doc_summary(cls),
                "parameters": op_parameters(cls),
            }
        )
    order = {category: index for index, category in enumerate(CATEGORY_ORDER)}
    entries.sort(key=lambda entry: (order.get(entry["category"], 99), entry["name"]))
    return entries


def render_ops_catalog() -> str:
    """Render the full operator catalog as deterministic Markdown."""
    entries = op_catalog_entries()
    counts = Counter(entry["category"] for entry in entries)
    lines = [CATALOG_HEADER]
    lines.append(
        "**"
        + ", ".join(
            f"{counts[category]} {category}s"
            for category in CATEGORY_ORDER
            if counts.get(category)
        )
        + f" — {len(entries)} operators.**\n"
    )
    current_category = None
    for entry in entries:
        if entry["category"] != current_category:
            current_category = entry["category"]
            lines.append(f"\n## {current_category.capitalize()}s\n")
        lines.append(f"### `{entry['name']}`\n")
        if entry["summary"]:
            lines.append(entry["summary"] + "\n")
        if entry["parameters"]:
            lines.append("| parameter | default |")
            lines.append("|---|---|")
            for name, default in entry["parameters"]:
                lines.append(f"| `{name}` | {default} |")
            lines.append("")
        else:
            lines.append("*No operator-specific parameters.*\n")
    return "\n".join(lines).rstrip() + "\n"


def write_ops_catalog(path: str | Path) -> bool:
    """Write the catalog to ``path``; returns True when the file changed."""
    path = Path(path)
    rendered = render_ops_catalog()
    if path.exists() and path.read_text(encoding="utf-8") == rendered:
        return False
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(rendered, encoding="utf-8")
    return True


def catalog_in_sync(path: str | Path) -> bool:
    """True when the committed catalog matches a fresh render of the registry."""
    path = Path(path)
    return path.exists() and path.read_text(encoding="utf-8") == render_ops_catalog()


__all__ = [
    "CATALOG_HEADER",
    "CATEGORY_ORDER",
    "catalog_in_sync",
    "op_catalog_entries",
    "op_doc_summary",
    "op_parameters",
    "render_ops_catalog",
    "write_ops_catalog",
]
