"""Generated documentation: the operator catalog, straight from the op schemas.

``python -m repro docs-ops`` (or ``make docs``) walks
:data:`repro.core.registry.OPERATORS` and renders ``docs/ops_catalog.md``:
every registered operator with its category, one-line description and a
**typed parameter table** read from its :class:`repro.core.schema.OpSchema`
— accepted types, default, declared bounds/choices and the per-parameter doc.
The committed catalog is asserted in sync with the registry by
``tests/test_docs.py``, so documentation rot (or an op schema drifting from
its constructor) fails the build instead of shipping.

Rendering is deterministic (sorted by category, then name; ``repr`` defaults)
— regenerating from an unchanged registry is always a no-op diff.
"""

from __future__ import annotations

from collections import Counter
from pathlib import Path

import repro.ops  # noqa: F401  (populates the registry as an import side effect)
from repro.core.registry import OPERATORS
from repro.core.schema import ParamSpec, schema_for

#: display order of the operator categories in the catalog
CATEGORY_ORDER = ("mapper", "filter", "deduplicator", "selector", "op")

CATALOG_HEADER = """\
# Operator catalog

> **Generated file — do not edit.**  Regenerate with `make docs`
> (`python -m repro docs-ops`).  `tests/test_docs.py` fails when this file
> is out of sync with the operator registry.

Every operator registered in `repro.core.registry.OPERATORS`, grouped by
category.  The parameter tables come from each operator's typed schema
(`repro.core.schema`): accepted types, default, declared constraints
(bounds / choices) and the per-parameter description.  `text_key` (default
`"text"`) and `batch_size` (execution tuning) are accepted by every operator
and omitted from the tables.

Each entry also carries its statically-inferred **effect signature**
(`repro.tools.dataflow`): the fields the op reads / writes / removes
(`<param>` marks a path taken from a constructor parameter, e.g.
`<text_key>`), the shared context keys it produces or consumes, and its
effect on the row set.  The `repro dataflow` checker verifies whole recipes
against these signatures; see `docs/dataflow.md`.
"""


def op_doc_summary(cls: type) -> str:
    """First line of an operator class's docstring (empty when undocumented).

    Delegates to the op schema so the catalog and every schema consumer
    agree on what an operator's summary is.
    """
    return schema_for(cls).summary


def op_parameters(cls: type) -> list[ParamSpec]:
    """The operator's own typed parameter specs, in constructor order.

    Parameters every op shares (``text_key``, ``batch_size``) and catch-all
    ``**kwargs`` are omitted — this is exactly the schema's ``params`` tuple.
    """
    return list(schema_for(cls).params)


def _cell(text: str) -> str:
    """Escape a markdown table cell: a literal ``|`` would split the row."""
    return text.replace("|", "\\|")


def _constraint_label(spec: ParamSpec) -> str:
    """The constraints cell of a parameter row (bounds / choices, or ``—``)."""
    if spec.choices is not None:
        return "one of " + ", ".join(f"`{choice!r}`" for choice in spec.choices)
    if spec.min_value is not None and spec.max_value is not None:
        return f"`[{spec.min_value}, {spec.max_value}]`"
    if spec.min_value is not None:
        return f"`>= {spec.min_value}`"
    if spec.max_value is not None:
        return f"`<= {spec.max_value}`"
    return "—"


def _effects_label(signature) -> str:
    """One-line rendering of an op's effect signature (empty when unknown)."""
    if signature is None:
        return ""
    parts = []
    if signature.reads:
        parts.append("reads " + ", ".join(f"`{path}`" for path in signature.reads))
    if signature.writes:
        parts.append("writes " + ", ".join(f"`{path}`" for path in signature.writes))
    if signature.removes:
        parts.append("removes " + ", ".join(f"`{path}`" for path in signature.removes))
    context = sorted(set(signature.context_reads) | set(signature.context_writes))
    if context:
        parts.append("context " + ", ".join(f"`{key}`" for key in context))
    parts.append(signature.row_effect)
    return "*Dataflow:* " + "; ".join(parts) + "."


def op_catalog_entries() -> list[dict]:
    """One catalog entry per registered operator, in rendering order."""
    from repro.tools.dataflow import effect_catalog

    signatures = effect_catalog()
    entries = []
    for name in OPERATORS.list():
        schema = schema_for(OPERATORS.get(name), name=name)
        entries.append(
            {
                "name": name,
                "category": schema.category,
                "summary": schema.summary,
                "parameters": list(schema.params),
                "effects": signatures.get(name),
            }
        )
    order = {category: index for index, category in enumerate(CATEGORY_ORDER)}
    entries.sort(key=lambda entry: (order.get(entry["category"], 99), entry["name"]))
    return entries


def render_ops_catalog() -> str:
    """Render the full operator catalog as deterministic Markdown."""
    entries = op_catalog_entries()
    counts = Counter(entry["category"] for entry in entries)
    lines = [CATALOG_HEADER]
    lines.append(
        "**"
        + ", ".join(
            f"{counts[category]} {category}s"
            for category in CATEGORY_ORDER
            if counts.get(category)
        )
        + f" — {len(entries)} operators.**\n"
    )
    current_category = None
    for entry in entries:
        if entry["category"] != current_category:
            current_category = entry["category"]
            lines.append(f"\n## {current_category.capitalize()}s\n")
        lines.append(f"### `{entry['name']}`\n")
        if entry["summary"]:
            lines.append(entry["summary"] + "\n")
        effects_line = _effects_label(entry.get("effects"))
        if effects_line:
            lines.append(effects_line + "\n")
        if entry["parameters"]:
            lines.append("| parameter | type | default | constraints | description |")
            lines.append("|---|---|---|---|---|")
            for spec in entry["parameters"]:
                default = spec.default_label()
                if default not in ("required", "unbounded"):
                    default = f"`{default}`"
                lines.append(
                    f"| `{spec.name}` | `{_cell(spec.type_label)}` | {_cell(default)} "
                    f"| {_cell(_constraint_label(spec))} | {_cell(spec.doc or '—')} |"
                )
            lines.append("")
        else:
            lines.append("*No operator-specific parameters.*\n")
    return "\n".join(lines).rstrip() + "\n"


def write_ops_catalog(path: str | Path) -> bool:
    """Write the catalog to ``path``; returns True when the file changed."""
    path = Path(path)
    rendered = render_ops_catalog()
    if path.exists() and path.read_text(encoding="utf-8") == rendered:
        return False
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(rendered, encoding="utf-8")
    return True


def catalog_in_sync(path: str | Path) -> bool:
    """True when the committed catalog matches a fresh render of the registry."""
    path = Path(path)
    return path.exists() and path.read_text(encoding="utf-8") == render_ops_catalog()


__all__ = [
    "CATALOG_HEADER",
    "CATEGORY_ORDER",
    "catalog_in_sync",
    "op_catalog_entries",
    "op_doc_summary",
    "op_parameters",
    "render_ops_catalog",
    "write_ops_catalog",
]
