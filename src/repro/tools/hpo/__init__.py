"""Auto-HPO for data recipes: search spaces, optimizers and ready-made objectives."""

from repro.tools.hpo.objectives import make_mixture_objective, make_op_threshold_objective
from repro.tools.hpo.optimizers import (
    Hyperband,
    RandomSearch,
    TPEOptimizer,
    best_trial,
    parameter_importance,
)
from repro.tools.hpo.search_space import (
    Choice,
    IntUniform,
    LogUniform,
    SearchSpace,
    Trial,
    Uniform,
)

__all__ = [
    "Choice",
    "Hyperband",
    "IntUniform",
    "LogUniform",
    "RandomSearch",
    "SearchSpace",
    "TPEOptimizer",
    "Trial",
    "Uniform",
    "best_trial",
    "make_mixture_objective",
    "make_op_threshold_objective",
    "parameter_importance",
]
