"""HPO schedulers: random search, TPE (Bayesian) and Hyperband early stopping.

These stand in for the W&B Sweeps integration of the original system: given a
:class:`~repro.tools.hpo.search_space.SearchSpace` and an objective callable,
each optimizer returns the best trial and the full trial history, which the
HPO demo (Figure 3) turns into importance/correlation views.
"""

from __future__ import annotations

import math
import random
from typing import Callable

import numpy as np

from repro.core.errors import HPOError
from repro.tools.hpo.search_space import SearchSpace, Trial

Objective = Callable[..., float]


class RandomSearch:
    """Uniformly sample configurations and keep the best."""

    def __init__(self, space: SearchSpace, maximize: bool = True, seed: int = 0):
        self.space = space
        self.maximize = maximize
        self.rng = random.Random(seed)
        self.trials: list[Trial] = []

    def optimize(self, objective: Objective, num_trials: int = 20) -> Trial:
        """Run ``num_trials`` evaluations and return the best trial."""
        if num_trials <= 0:
            raise HPOError("num_trials must be positive")
        for _ in range(num_trials):
            params = self.space.sample(self.rng)
            value = float(objective(**params))
            self.trials.append(Trial(params=params, value=value))
        return best_trial(self.trials, self.maximize)


class TPEOptimizer:
    """A simplified Tree-structured Parzen Estimator (Bayesian optimization).

    After a warm-up of random trials, candidates are sampled around the "good"
    trials (top ``gamma`` fraction) with Gaussian perturbations, and the
    candidate with the best good/bad density ratio is evaluated next.
    """

    def __init__(
        self,
        space: SearchSpace,
        maximize: bool = True,
        seed: int = 0,
        gamma: float = 0.25,
        num_candidates: int = 24,
        num_startup_trials: int = 8,
    ):
        self.space = space
        self.maximize = maximize
        self.rng = random.Random(seed)
        self.np_rng = np.random.default_rng(seed)
        self.gamma = gamma
        self.num_candidates = num_candidates
        self.num_startup_trials = num_startup_trials
        self.trials: list[Trial] = []

    # ------------------------------------------------------------------
    def _numeric_names(self) -> list[str]:
        names = []
        for name, dist in self.space.parameters.items():
            if hasattr(dist, "low") and hasattr(dist, "high"):
                names.append(name)
        return names

    def _density(self, points: np.ndarray, center_points: np.ndarray, bandwidth: np.ndarray) -> np.ndarray:
        if len(center_points) == 0:
            return np.full(len(points), 1e-12)
        densities = np.zeros(len(points))
        for center in center_points:
            z = (points - center) / bandwidth
            densities += np.exp(-0.5 * np.sum(z * z, axis=1))
        return densities / len(center_points) + 1e-12

    def _suggest(self) -> dict:
        numeric_names = self._numeric_names()
        if len(self.trials) < self.num_startup_trials or not numeric_names:
            return self.space.sample(self.rng)
        ordered = sorted(self.trials, key=lambda t: t.value, reverse=self.maximize)
        cut = max(1, int(len(ordered) * self.gamma))
        good, bad = ordered[:cut], ordered[cut:]

        def to_matrix(trials: list[Trial]) -> np.ndarray:
            return np.array([[float(t.params[name]) for name in numeric_names] for t in trials])

        good_matrix, bad_matrix = to_matrix(good), to_matrix(bad if bad else ordered)
        spans = np.array(
            [self.space.parameters[name].high - self.space.parameters[name].low
             for name in numeric_names],
            dtype=float,
        )
        bandwidth = np.maximum(spans * 0.15, 1e-6)

        candidates = []
        for _ in range(self.num_candidates):
            anchor = good_matrix[self.rng.randrange(len(good_matrix))]
            candidate = anchor + self.np_rng.normal(0.0, bandwidth)
            lows = np.array([self.space.parameters[n].low for n in numeric_names], dtype=float)
            highs = np.array([self.space.parameters[n].high for n in numeric_names], dtype=float)
            candidates.append(np.clip(candidate, lows, highs))
        candidate_matrix = np.array(candidates)
        score = self._density(candidate_matrix, good_matrix, bandwidth) / self._density(
            candidate_matrix, bad_matrix, bandwidth
        )
        best = candidate_matrix[int(np.argmax(score))]
        params = self.space.sample(self.rng)  # fills categorical params
        for name, value in zip(numeric_names, best):
            dist = self.space.parameters[name]
            params[name] = int(round(value)) if dist.__class__.__name__ == "IntUniform" else float(value)
        return params

    def optimize(self, objective: Objective, num_trials: int = 30) -> Trial:
        """Run ``num_trials`` TPE-guided evaluations and return the best trial."""
        for _ in range(num_trials):
            params = self._suggest()
            value = float(objective(**params))
            self.trials.append(Trial(params=params, value=value))
        return best_trial(self.trials, self.maximize)


class Hyperband:
    """Successive-halving early stopping over a budgeted objective.

    The objective must accept a ``budget`` keyword (e.g. the number of samples
    processed or proxy-training tokens); configurations surviving each rung
    get geometrically larger budgets.
    """

    def __init__(
        self,
        space: SearchSpace,
        max_budget: float = 81.0,
        eta: int = 3,
        maximize: bool = True,
        seed: int = 0,
    ):
        if eta < 2:
            raise HPOError("eta must be >= 2")
        self.space = space
        self.max_budget = max_budget
        self.eta = eta
        self.maximize = maximize
        self.rng = random.Random(seed)
        self.trials: list[Trial] = []

    def optimize(self, objective: Objective, num_configs: int = 27) -> Trial:
        """Run one successive-halving bracket starting from ``num_configs`` configs."""
        num_rungs = int(math.floor(math.log(max(num_configs, self.eta), self.eta)))
        budget = self.max_budget / (self.eta ** num_rungs)
        population = [self.space.sample(self.rng) for _ in range(num_configs)]
        while population:
            rung_trials = []
            for params in population:
                value = float(objective(budget=budget, **params))
                trial = Trial(params=params, value=value, budget=budget)
                rung_trials.append(trial)
                self.trials.append(trial)
            survivors = max(1, len(population) // self.eta)
            rung_trials.sort(key=lambda t: t.value, reverse=self.maximize)
            if budget >= self.max_budget or len(population) == 1:
                break
            population = [trial.params for trial in rung_trials[:survivors]]
            budget = min(self.max_budget, budget * self.eta)
        return best_trial(self.trials, self.maximize)


def best_trial(trials: list[Trial], maximize: bool = True) -> Trial:
    """Return the best trial of a history."""
    if not trials:
        raise HPOError("no trials have been evaluated")
    return max(trials, key=lambda t: t.value) if maximize else min(trials, key=lambda t: t.value)


def parameter_importance(trials: list[Trial]) -> dict[str, float]:
    """Absolute Pearson correlation of each numeric parameter with the objective.

    This is the "importance / correlation" view of the HPO demo (Figure 3).
    """
    if len(trials) < 3:
        return {}
    values = np.array([trial.value for trial in trials], dtype=float)
    importance: dict[str, float] = {}
    for name in trials[0].params:
        column = []
        for trial in trials:
            value = trial.params.get(name)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                column.append(float(value))
            else:
                column = []
                break
        if not column or len(set(column)) < 2 or len(set(values.tolist())) < 2:
            continue
        correlation = np.corrcoef(np.array(column), values)[0, 1]
        if not np.isnan(correlation):
            importance[name] = float(abs(correlation))
    return importance
