"""Ready-made HPO objectives for data-recipe search.

The paper's running example (Sec. 4.1.2) searches mixture weights for M
datasets maximising ``n/N + s`` where ``n`` is the mixed token count, ``N`` the
total token count and ``s`` the average GPT-3-style quality score of the
mixture.  :func:`make_mixture_objective` builds exactly that callable from a
set of candidate datasets and a trained quality classifier.
"""

from __future__ import annotations

from typing import Callable

from repro.core.dataset import NestedDataset, dataset_token_count
from repro.core.sample import Fields
from repro.formats.mixture_formatter import mix_datasets
from repro.tools.quality_classifier.pipeline import QualityClassifier


def make_mixture_objective(
    datasets: dict[str, NestedDataset],
    classifier: QualityClassifier,
    max_samples: int | None = None,
    dedup: bool = True,
    seed: int = 42,
) -> Callable[..., float]:
    """Return an objective ``f(**weights) -> n/N + s`` over mixture weights.

    Weight keyword names follow :meth:`SearchSpace.for_mixture_weights`:
    ``w_<dataset_name>``.
    """
    total_tokens = sum(dataset_token_count(dataset) for dataset in datasets.values()) or 1

    def objective(**weights: float) -> float:
        named = {name: max(0.0, float(weights.get(f"w_{name}", 0.0))) for name in datasets}
        if sum(named.values()) <= 0:
            return 0.0
        mixed = mix_datasets(datasets, named, max_samples=max_samples, seed=seed)
        if dedup and len(mixed) > 0:
            from repro.ops.deduplicators.document_deduplicator import DocumentDeduplicator

            mixed = DocumentDeduplicator().run(mixed)
        if len(mixed) == 0:
            return 0.0
        tokens = dataset_token_count(mixed)
        texts = [row.get(Fields.text, "") for row in mixed]
        quality = float(classifier.predict_scores(texts).mean()) if texts else 0.0
        return tokens / total_tokens + quality

    return objective


def make_op_threshold_objective(
    dataset: NestedDataset,
    classifier: QualityClassifier,
    op_name: str = "character_repetition_filter",
    param_name: str = "max_ratio",
) -> Callable[..., float]:
    """Objective scoring a single filter threshold by kept-volume x kept-quality.

    Used by the feedback-loop example to tune one OP hyper-parameter: the
    score is ``kept_fraction * average_quality_of_kept``, which trades recall
    against precision exactly like the paper's recipe-refinement loop.
    """
    from repro.core.registry import OPERATORS

    total = len(dataset) or 1

    def objective(**params: float) -> float:
        op = OPERATORS.get(op_name)(**{param_name: params[param_name]})
        kept = op.run(dataset)
        if len(kept) == 0:
            return 0.0
        texts = [row.get(Fields.text, "") for row in kept]
        quality = float(classifier.predict_scores(texts).mean())
        return (len(kept) / total) * quality

    return objective
