"""Search-space definitions for data-recipe hyper-parameter optimization (Sec. 4.1.2)."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.errors import HPOError


@dataclass(frozen=True)
class Uniform:
    """A continuous uniform parameter in ``[low, high]``."""

    low: float
    high: float

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)


@dataclass(frozen=True)
class LogUniform:
    """A log-uniform parameter in ``[low, high]`` (both > 0)."""

    low: float
    high: float

    def sample(self, rng: random.Random) -> float:
        import math

        return math.exp(rng.uniform(math.log(self.low), math.log(self.high)))


@dataclass(frozen=True)
class IntUniform:
    """An integer uniform parameter in ``[low, high]`` inclusive."""

    low: int
    high: int

    def sample(self, rng: random.Random) -> int:
        return rng.randint(self.low, self.high)


@dataclass(frozen=True)
class Choice:
    """A categorical parameter."""

    options: tuple

    def sample(self, rng: random.Random) -> Any:
        return rng.choice(self.options)


class SearchSpace:
    """A named collection of parameter distributions.

    Example::

        space = SearchSpace({
            "w_wiki": Uniform(0, 1),
            "w_cc": Uniform(0, 1),
            "max_ratio": Choice((0.2, 0.3, 0.4)),
        })
    """

    def __init__(self, parameters: dict[str, Any]):
        if not parameters:
            raise HPOError("search space must contain at least one parameter")
        for name, dist in parameters.items():
            if not hasattr(dist, "sample"):
                raise HPOError(f"parameter {name!r} has no sample() method: {dist!r}")
        self.parameters = dict(parameters)

    def names(self) -> list[str]:
        """Parameter names, in insertion order."""
        return list(self.parameters)

    def sample(self, rng: random.Random) -> dict[str, Any]:
        """Draw one configuration."""
        return {name: dist.sample(rng) for name, dist in self.parameters.items()}

    @staticmethod
    def for_mixture_weights(dataset_names: Sequence[str]) -> "SearchSpace":
        """Convenience space: one weight in [0, 1] per dataset to be mixed."""
        return SearchSpace({f"w_{name}": Uniform(0.0, 1.0) for name in dataset_names})


@dataclass
class Trial:
    """One evaluated configuration."""

    params: dict[str, Any]
    value: float
    budget: float = 1.0

    def as_dict(self) -> dict:
        """Plain-dict view for logging."""
        return {"params": dict(self.params), "value": self.value, "budget": self.budget}
