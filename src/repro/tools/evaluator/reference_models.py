"""Reference models: evaluated checkpoints bound to traceable training recipes.

The paper's *reference models* are checkpoints whose training data, parameters
and evaluation results are recorded so that new data recipes can be compared
against them (the data leaderboard of Figure 5).  The registry here stores the
same association for proxy models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tools.evaluator.harness import EvaluationReport


@dataclass
class ReferenceModel:
    """One registered reference model."""

    name: str
    training_data: str
    num_tokens: int
    average_score: float
    task_scores: dict[str, float] = field(default_factory=dict)
    recipe: dict = field(default_factory=dict)
    notes: str = ""

    def as_dict(self) -> dict:
        """Plain-dict view for tables and exports."""
        return {
            "name": self.name,
            "training_data": self.training_data,
            "num_tokens": self.num_tokens,
            "average_score": self.average_score,
            "task_scores": dict(self.task_scores),
            "notes": self.notes,
        }


class ReferenceModelRegistry:
    """In-memory registry of reference models, queryable and rankable."""

    def __init__(self):
        self._models: dict[str, ReferenceModel] = {}

    def register(self, model: ReferenceModel, overwrite: bool = False) -> ReferenceModel:
        """Add a reference model; refuses to silently overwrite unless asked."""
        if model.name in self._models and not overwrite:
            raise ValueError(f"reference model {model.name!r} already registered")
        self._models[model.name] = model
        return model

    def register_report(
        self,
        report: EvaluationReport,
        training_data: str,
        num_tokens: int,
        recipe: dict | None = None,
        notes: str = "",
    ) -> ReferenceModel:
        """Register straight from an :class:`EvaluationReport`."""
        model = ReferenceModel(
            name=report.model_name,
            training_data=training_data,
            num_tokens=num_tokens,
            average_score=report.average_score,
            task_scores=dict(report.task_scores),
            recipe=dict(recipe or {}),
            notes=notes,
        )
        return self.register(model, overwrite=True)

    def get(self, name: str) -> ReferenceModel:
        """Look up a reference model by name."""
        if name not in self._models:
            raise KeyError(f"unknown reference model {name!r}")
        return self._models[name]

    def __len__(self) -> int:
        return len(self._models)

    def __contains__(self, name: str) -> bool:
        return name in self._models

    def all(self) -> list[ReferenceModel]:
        """All registered models, best average score first."""
        return sorted(self._models.values(), key=lambda model: model.average_score, reverse=True)

    def comparison_table(self) -> list[dict]:
        """Rows of (model, data, tokens, score) — the Table 2-style comparison."""
        return [model.as_dict() for model in self.all()]
