"""The 16-task HELM-like benchmark suite scored against proxy models.

Each task converts a :class:`~repro.tools.evaluator.trainer.ProxyLLM`'s
component scores (coverage, fluency, diversity, cleanliness, dedup) into a
0-100 task score via task-specific weights, a base offset and a small
deterministic task×model perturbation.  The task names follow the 16 HELM core
scenarios the paper evaluates (Table 9); the *relative* orderings — better
recipes score higher, more tokens score higher — are what the reproduction
preserves, not the paper's absolute values.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.tools.evaluator.trainer import ProxyLLM


@dataclass(frozen=True)
class BenchmarkTask:
    """One synthetic evaluation task: a name, component weights, base and scale."""

    name: str
    base: float
    scale: float
    weights: dict[str, float]

    def score(self, model: ProxyLLM) -> float:
        """Score the model on this task (0-100)."""
        components = model.component_scores()
        weighted = sum(self.weights.get(key, 0.0) * value for key, value in components.items())
        weight_total = sum(self.weights.values()) or 1.0
        raw = self.base + self.scale * (weighted / weight_total)
        raw += self._perturbation(model.name)
        return float(max(0.0, min(100.0, raw)))

    def _perturbation(self, model_name: str) -> float:
        """Small deterministic task x model noise (reproducible across runs)."""
        digest = hashlib.md5(f"{self.name}:{model_name}".encode("utf-8")).digest()
        return (digest[0] / 255.0 - 0.5) * 2.0  # in [-1, 1]


#: The 16 HELM core scenarios (Table 9 of the paper) with task-specific weights.
HELM_CORE_TASKS: tuple[BenchmarkTask, ...] = (
    BenchmarkTask("MMLU", 18.0, 30.0, {"coverage": 2, "fluency": 1, "diversity": 1}),
    BenchmarkTask("BoolQ", 35.0, 40.0, {"fluency": 2, "coverage": 1, "cleanliness": 1}),
    BenchmarkTask("NarrativeQA", 20.0, 45.0, {"fluency": 2, "diversity": 2, "coverage": 1}),
    BenchmarkTask("NaturalQuestions (closed-book)", 5.0, 20.0, {"coverage": 3, "fluency": 1}),
    BenchmarkTask("NaturalQuestions (open-book)", 30.0, 45.0, {"coverage": 2, "fluency": 2}),
    BenchmarkTask("QuAC", 15.0, 30.0, {"diversity": 2, "fluency": 1, "coverage": 1}),
    BenchmarkTask("HellaSwag", 30.0, 50.0, {"coverage": 2, "fluency": 2, "dedup": 1}),
    BenchmarkTask("OpenbookQA", 25.0, 40.0, {"coverage": 2, "fluency": 1, "diversity": 1}),
    BenchmarkTask("TruthfulQA", 12.0, 40.0, {"cleanliness": 3, "dedup": 1, "fluency": 1}),
    BenchmarkTask("MS MARCO (regular)", 8.0, 20.0, {"coverage": 1, "fluency": 1, "diversity": 1}),
    BenchmarkTask("MS MARCO (TREC)", 18.0, 30.0, {"coverage": 1, "fluency": 1, "diversity": 1}),
    BenchmarkTask("IMDB", 45.0, 45.0, {"fluency": 2, "cleanliness": 1, "coverage": 1}),
    BenchmarkTask("XSUM", 2.0, 10.0, {"fluency": 2, "diversity": 1}),
    BenchmarkTask("CNN/DailyMail", 2.0, 15.0, {"fluency": 2, "diversity": 1, "dedup": 1}),
    BenchmarkTask("CivilComments", 42.0, 18.0, {"cleanliness": 3, "fluency": 1}),
    BenchmarkTask("RAFT", 30.0, 35.0, {"diversity": 2, "coverage": 1, "cleanliness": 1}),
)


def task_names() -> list[str]:
    """Names of the 16 core tasks, in canonical order."""
    return [task.name for task in HELM_CORE_TASKS]


def get_task(name: str) -> BenchmarkTask:
    """Look up a task by name."""
    for task in HELM_CORE_TASKS:
        if task.name == name:
            return task
    raise KeyError(f"unknown benchmark task {name!r}")
