"""Pairwise judging of fine-tuned proxy models (the GPT-4 evaluation stand-in).

The paper scores fine-tuning recipes by asking GPT-4 to compare responses of
two models on a prompt set and tallying wins/ties (Table 3).  The stand-in
judge compares two proxy models prompt by prompt using a deterministic quality
criterion: per-prompt response quality is drawn from each model's component
scores (fluency, diversity, cleanliness) plus a prompt-specific perturbation,
and a win is declared when the margin exceeds a tie threshold.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.tools.evaluator.trainer import ProxyLLM


@dataclass
class JudgeResult:
    """Win/tie/loss tallies of model A vs model B over a prompt set."""

    model_a: str
    model_b: str
    wins_a: int
    wins_b: int
    ties: int

    @property
    def num_prompts(self) -> int:
        """Total number of judged prompts."""
        return self.wins_a + self.wins_b + self.ties

    def win_rate_a(self) -> float:
        """Fraction of prompts won by model A."""
        return self.wins_a / self.num_prompts if self.num_prompts else 0.0

    def as_dict(self) -> dict:
        """Plain-dict view for the Table 3 benchmark."""
        return {
            "model_a": self.model_a,
            "model_b": self.model_b,
            "wins_a": self.wins_a,
            "wins_b": self.wins_b,
            "ties": self.ties,
        }


class PairwiseJudge:
    """Deterministic pairwise comparison over a fixed number of prompts."""

    def __init__(self, num_prompts: int = 160, tie_margin: float = 0.04, seed: int = 7):
        self.num_prompts = num_prompts
        self.tie_margin = tie_margin
        self.seed = seed

    def _response_quality(self, model: ProxyLLM, prompt_index: int) -> float:
        components = model.component_scores()
        base = (
            0.4 * components["fluency"]
            + 0.3 * components["diversity"]
            + 0.2 * components["cleanliness"]
            + 0.1 * components["dedup"]
        )
        digest = hashlib.md5(f"{self.seed}:{model.name}:{prompt_index}".encode("utf-8")).digest()
        perturbation = (digest[0] / 255.0 - 0.5) * 0.12
        return base + perturbation

    def compare(self, model_a: ProxyLLM, model_b: ProxyLLM) -> JudgeResult:
        """Judge both models on every prompt and tally wins/ties."""
        wins_a = wins_b = ties = 0
        for prompt_index in range(self.num_prompts):
            quality_a = self._response_quality(model_a, prompt_index)
            quality_b = self._response_quality(model_b, prompt_index)
            if abs(quality_a - quality_b) <= self.tie_margin:
                ties += 1
            elif quality_a > quality_b:
                wins_a += 1
            else:
                wins_b += 1
        return JudgeResult(
            model_a=model_a.name, model_b=model_b.name, wins_a=wins_a, wins_b=wins_b, ties=ties
        )
