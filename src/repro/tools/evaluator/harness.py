"""Auto-evaluation harness: run the benchmark suite, aggregate and rank models.

Reproduces the evaluator / leaderboard tooling of Sec. 4.3: per-task scores,
several aggregation strategies (plain mean, rank averaging, score-normalised
averaging) and a leaderboard-style comparison across reference models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import EvaluationError
from repro.tools.evaluator.benchmarks import HELM_CORE_TASKS, BenchmarkTask
from repro.tools.evaluator.trainer import ProxyLLM


@dataclass
class EvaluationReport:
    """Per-task scores and the aggregate score of one model."""

    model_name: str
    task_scores: dict[str, float]
    average_score: float
    components: dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict:
        """Plain-dict view for benchmark tables."""
        return {
            "model_name": self.model_name,
            "task_scores": dict(self.task_scores),
            "average_score": self.average_score,
            "components": dict(self.components),
        }


class Evaluator:
    """Evaluate proxy models across a (configurable) benchmark suite."""

    def __init__(self, tasks: tuple[BenchmarkTask, ...] | None = None):
        self.tasks = tuple(tasks) if tasks is not None else HELM_CORE_TASKS
        if not self.tasks:
            raise EvaluationError("the benchmark suite must contain at least one task")

    def evaluate(self, model: ProxyLLM) -> EvaluationReport:
        """Score one model on every task and aggregate with the plain mean."""
        task_scores = {task.name: task.score(model) for task in self.tasks}
        return EvaluationReport(
            model_name=model.name,
            task_scores=task_scores,
            average_score=float(np.mean(list(task_scores.values()))),
            components=model.component_scores(),
        )

    def evaluate_many(self, models: list[ProxyLLM]) -> list[EvaluationReport]:
        """Evaluate several models."""
        return [self.evaluate(model) for model in models]


class Leaderboard:
    """Collect evaluation reports and rank models by a chosen aggregation."""

    AGGREGATIONS = ("mean", "rank", "normalized")

    def __init__(self, aggregation: str = "mean"):
        if aggregation not in self.AGGREGATIONS:
            raise EvaluationError(
                f"unknown aggregation {aggregation!r}; choose from {self.AGGREGATIONS}"
            )
        self.aggregation = aggregation
        self.reports: list[EvaluationReport] = []

    def add(self, report: EvaluationReport) -> None:
        """Add one model's report to the leaderboard."""
        self.reports.append(report)

    # ------------------------------------------------------------------
    def _aggregate(self) -> dict[str, float]:
        if not self.reports:
            return {}
        if self.aggregation == "mean":
            return {report.model_name: report.average_score for report in self.reports}
        task_names = list(self.reports[0].task_scores)
        matrix = np.array(
            [[report.task_scores[name] for name in task_names] for report in self.reports]
        )
        if self.aggregation == "normalized":
            minimum = matrix.min(axis=0)
            spread = np.where(matrix.max(axis=0) - minimum > 0, matrix.max(axis=0) - minimum, 1.0)
            normalized = (matrix - minimum) / spread
            values = normalized.mean(axis=1)
        else:  # rank averaging: higher score -> better (lower) rank
            ranks = np.zeros_like(matrix)
            for column in range(matrix.shape[1]):
                order = np.argsort(-matrix[:, column])
                ranks[order, column] = np.arange(1, matrix.shape[0] + 1)
            values = -ranks.mean(axis=1)  # negate so "higher is better" holds
        return {report.model_name: float(value) for report, value in zip(self.reports, values)}

    def ranking(self) -> list[tuple[str, float]]:
        """Model names with aggregate values, best first."""
        aggregated = self._aggregate()
        return sorted(aggregated.items(), key=lambda item: item[1], reverse=True)

    def render(self) -> str:
        """Human-readable leaderboard table."""
        lines = [f"Leaderboard (aggregation={self.aggregation})"]
        for position, (name, value) in enumerate(self.ranking(), start=1):
            lines.append(f"  {position}. {name}: {value:.3f}")
        return "\n".join(lines)
