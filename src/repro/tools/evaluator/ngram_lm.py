"""An interpolated bigram language model: the proxy "LLM" trained on recipes.

The paper trains billion-parameter LLaMA models on its data recipes; the
reproduction's substitute is a word-level bigram language model with absolute
discounting and unigram interpolation.  It is small enough to train in
milliseconds yet responds to the properties that matter for the evaluation:
more training tokens reduce held-out perplexity, duplicated or noisy training
text biases the distribution, and diverse corpora yield more diverse
generations.
"""

from __future__ import annotations

import math
import random
from collections import Counter, defaultdict

from repro.ops.common.helper_funcs import get_words_from_text, words_refinement

_BOS = "<s>"
_UNK = "<unk>"


def tokenize(text: str) -> list[str]:
    """Word-level tokenisation used by the proxy model."""
    return words_refinement(get_words_from_text(text, lowercase=True))


class BigramLanguageModel:
    """Interpolated bigram LM with add-k smoothing over an open vocabulary."""

    def __init__(self, interpolation: float = 0.7, add_k: float = 0.1):
        self.interpolation = interpolation
        self.add_k = add_k
        self.unigram_counts: Counter = Counter()
        self.bigram_counts: dict[str, Counter] = defaultdict(Counter)
        self.total_tokens = 0

    # ------------------------------------------------------------------
    def fit(self, texts: list[str], max_tokens: int | None = None) -> "BigramLanguageModel":
        """Count unigrams/bigrams over the texts, up to ``max_tokens`` tokens."""
        budget = max_tokens if max_tokens is not None else math.inf
        for text in texts:
            if self.total_tokens >= budget:
                break
            tokens = tokenize(text)
            if not tokens:
                continue
            if self.total_tokens + len(tokens) > budget:
                tokens = tokens[: int(budget - self.total_tokens)]
            previous = _BOS
            for token in tokens:
                self.unigram_counts[token] += 1
                self.bigram_counts[previous][token] += 1
                previous = token
            self.total_tokens += len(tokens)
        return self

    @property
    def vocabulary_size(self) -> int:
        """Number of distinct tokens seen during training."""
        return len(self.unigram_counts)

    # ------------------------------------------------------------------
    def _unigram_prob(self, token: str) -> float:
        vocab = self.vocabulary_size + 1
        return (self.unigram_counts.get(token, 0) + self.add_k) / (
            self.total_tokens + self.add_k * vocab
        )

    def _bigram_prob(self, previous: str, token: str) -> float:
        context = self.bigram_counts.get(previous)
        if not context:
            return self._unigram_prob(token)
        vocab = self.vocabulary_size + 1
        total = sum(context.values())
        return (context.get(token, 0) + self.add_k) / (total + self.add_k * vocab)

    def probability(self, previous: str, token: str) -> float:
        """Interpolated probability P(token | previous)."""
        return (
            self.interpolation * self._bigram_prob(previous, token)
            + (1.0 - self.interpolation) * self._unigram_prob(token)
        )

    def perplexity(self, texts: list[str]) -> float:
        """Held-out perplexity of the model on a list of texts."""
        log_prob = 0.0
        count = 0
        for text in texts:
            tokens = tokenize(text)
            previous = _BOS
            for token in tokens:
                log_prob += math.log2(max(self.probability(previous, token), 1e-12))
                previous = token
                count += 1
        if count == 0:
            return float("inf")
        return float(2 ** (-log_prob / count))

    def generate(self, num_tokens: int = 50, seed: int = 0) -> list[str]:
        """Sample a token sequence from the model (greedy-ish multinomial sampling)."""
        if not self.unigram_counts:
            return []
        rng = random.Random(seed)
        tokens: list[str] = []
        previous = _BOS
        vocabulary = list(self.unigram_counts)
        for _ in range(num_tokens):
            context = self.bigram_counts.get(previous)
            if context:
                candidates = list(context.keys())
                weights = [context[token] for token in candidates]
            else:
                candidates = vocabulary
                weights = [self.unigram_counts[token] for token in candidates]
            token = rng.choices(candidates, weights=weights, k=1)[0]
            tokens.append(token)
            previous = token
        return tokens

    def distinct_n(self, n: int = 2, num_tokens: int = 400, seed: int = 0) -> float:
        """Distinct-n ratio of a generated sample — a generation-diversity proxy."""
        tokens = self.generate(num_tokens=num_tokens, seed=seed)
        if len(tokens) < n:
            return 0.0
        ngrams = [tuple(tokens[index:index + n]) for index in range(len(tokens) - n + 1)]
        return len(set(ngrams)) / len(ngrams)
