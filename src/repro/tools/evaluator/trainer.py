"""Proxy LLM training: turn a processed dataset into a measurable model.

``ProxyTrainer.train`` fits the bigram language model on (up to) a token
budget drawn from the dataset, and records the corpus-level properties that
the benchmark suite converts into task scores: held-out perplexity against a
fixed clean reference, generation diversity, flagged-word exposure, duplicate
fraction, source diversity and the effective token count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.analysis.diversity_analysis import DiversityAnalysis
from repro.core.dataset import NestedDataset
from repro.core.sample import Fields
from repro.ops.common.flagged_words import FLAGGED_WORDS_EN
from repro.tools.evaluator.ngram_lm import BigramLanguageModel, tokenize

#: Reference point used to normalise token-count coverage (a "full" training run).
REFERENCE_TOKENS = 200_000


def _reference_texts(seed: int = 1234, num_docs: int = 40) -> list[str]:
    """A fixed clean held-out set used for perplexity evaluation."""
    from repro.synth.generators import DocumentGenerator

    generator = DocumentGenerator(seed)
    return [generator.document(num_paragraphs=3) for _ in range(num_docs)]


@dataclass
class ProxyLLM:
    """A trained proxy model plus the corpus measurements behind its scores."""

    name: str
    language_model: BigramLanguageModel
    effective_tokens: int
    held_out_perplexity: float
    generation_diversity: float
    flagged_exposure: float
    duplicate_fraction: float
    source_diversity: float
    verb_noun_diversity: float
    training_tokens_requested: int | None = None
    metadata: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Normalised component scores in [0, 1] consumed by the benchmark suite.
    # ------------------------------------------------------------------
    def coverage_score(self) -> float:
        """Log-scaled token-count coverage relative to the reference budget."""
        return min(1.0, math.log1p(self.effective_tokens) / math.log1p(REFERENCE_TOKENS))

    def fluency_score(self) -> float:
        """Held-out LM quality: decreases with perplexity."""
        if math.isinf(self.held_out_perplexity):
            return 0.0
        return 1.0 / (1.0 + self.held_out_perplexity / 300.0)

    def diversity_score(self) -> float:
        """Blend of generation diversity, corpus verb–noun diversity and source mix."""
        return min(
            1.0,
            0.5 * self.generation_diversity
            + 0.3 * self.verb_noun_diversity
            + 0.2 * self.source_diversity,
        )

    def cleanliness_score(self) -> float:
        """Penalty-free score for low flagged-word exposure.

        Toxic/low-quality exposure is penalised steeply: even a fraction of a
        percent of flagged tokens in the training corpus measurably degrades
        alignment-sensitive benchmarks (the paper's motivation for filtering).
        """
        return max(0.0, 1.0 - 50.0 * self.flagged_exposure)

    def dedup_score(self) -> float:
        """Penalty-free score for low duplicate fraction.

        Duplicates hurt disproportionately (memorisation, wasted compute), so
        the penalty is a multiple of the raw duplicate fraction.
        """
        return max(0.0, 1.0 - 2.5 * self.duplicate_fraction)

    def component_scores(self) -> dict[str, float]:
        """All component scores keyed by name."""
        return {
            "coverage": self.coverage_score(),
            "fluency": self.fluency_score(),
            "diversity": self.diversity_score(),
            "cleanliness": self.cleanliness_score(),
            "dedup": self.dedup_score(),
        }


class ProxyTrainer:
    """Fit :class:`ProxyLLM` models from processed datasets."""

    def __init__(self, reference_seed: int = 1234):
        self._reference = _reference_texts(seed=reference_seed)

    def train(
        self,
        dataset: NestedDataset,
        name: str = "proxy-llm",
        num_tokens: int | None = None,
        text_key: str = Fields.text,
    ) -> ProxyLLM:
        """Train a proxy model on (up to ``num_tokens`` tokens of) the dataset."""
        texts = [row.get(text_key, "") if isinstance(row.get(text_key), str) else "" for row in dataset]
        model = BigramLanguageModel().fit(texts, max_tokens=num_tokens)

        flagged = 0
        total = 0
        seen_texts: set[str] = set()
        duplicates = 0
        sources: set[str] = set()
        for row, text in zip(dataset, texts):
            tokens = tokenize(text)
            total += len(tokens)
            flagged += sum(1 for token in tokens if token in FLAGGED_WORDS_EN)
            if text in seen_texts:
                duplicates += 1
            else:
                seen_texts.add(text)
            source = row.get(Fields.source) or (row.get(Fields.meta) or {}).get("source")
            if source:
                sources.add(str(source))

        diversity_report = DiversityAnalysis(text_key=text_key).analyze(dataset)
        return ProxyLLM(
            name=name,
            language_model=model,
            effective_tokens=model.total_tokens,
            held_out_perplexity=model.perplexity(self._reference),
            generation_diversity=model.distinct_n(2),
            flagged_exposure=flagged / total if total else 0.0,
            duplicate_fraction=duplicates / len(dataset) if len(dataset) else 0.0,
            source_diversity=min(1.0, len(sources) / 8.0),
            verb_noun_diversity=diversity_report.diversity_score(),
            training_tokens_requested=num_tokens,
            metadata={"num_documents": len(dataset)},
        )
