"""Proxy LLM training, auto-evaluation harness, leaderboard, reference models and judge."""

from repro.tools.evaluator.benchmarks import HELM_CORE_TASKS, BenchmarkTask, get_task, task_names
from repro.tools.evaluator.harness import EvaluationReport, Evaluator, Leaderboard
from repro.tools.evaluator.judge import JudgeResult, PairwiseJudge
from repro.tools.evaluator.ngram_lm import BigramLanguageModel, tokenize
from repro.tools.evaluator.reference_models import ReferenceModel, ReferenceModelRegistry
from repro.tools.evaluator.trainer import ProxyLLM, ProxyTrainer, REFERENCE_TOKENS

__all__ = [
    "BenchmarkTask",
    "BigramLanguageModel",
    "EvaluationReport",
    "Evaluator",
    "HELM_CORE_TASKS",
    "JudgeResult",
    "Leaderboard",
    "PairwiseJudge",
    "ProxyLLM",
    "ProxyTrainer",
    "REFERENCE_TOKENS",
    "ReferenceModel",
    "ReferenceModelRegistry",
    "get_task",
    "task_names",
    "tokenize",
]
