"""Binary logistic regression trained with batch gradient descent (numpy)."""

from __future__ import annotations

import numpy as np


class LogisticRegression:
    """L2-regularised binary logistic regression.

    The GPT-3 quality classifier is "a binary logistic regression classifier"
    over HashingTF features; this is the same model trained with full-batch
    gradient descent, which is plenty for the feature sizes used here.
    """

    def __init__(
        self,
        learning_rate: float = 5.0,
        num_iterations: int = 500,
        l2: float = 1e-5,
        seed: int = 0,
    ):
        self.learning_rate = learning_rate
        self.num_iterations = num_iterations
        self.l2 = l2
        self.seed = seed
        self.weights: np.ndarray | None = None
        self.bias: float = 0.0

    @staticmethod
    def _sigmoid(z: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-np.clip(z, -30.0, 30.0)))

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LogisticRegression":
        """Fit on a (n_samples, n_features) matrix and 0/1 label vector."""
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.float64)
        if features.ndim != 2 or labels.ndim != 1 or features.shape[0] != labels.shape[0]:
            raise ValueError("features must be 2-D and labels 1-D with matching rows")
        num_samples, num_features = features.shape
        rng = np.random.default_rng(self.seed)
        self.weights = rng.normal(0.0, 0.01, size=num_features)
        self.bias = 0.0
        for _ in range(self.num_iterations):
            predictions = self._sigmoid(features @ self.weights + self.bias)
            error = predictions - labels
            gradient_w = features.T @ error / num_samples + self.l2 * self.weights
            gradient_b = float(error.mean())
            self.weights -= self.learning_rate * gradient_w
            self.bias -= self.learning_rate * gradient_b
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Return P(label=1) for each row."""
        if self.weights is None:
            raise RuntimeError("model is not fitted")
        features = np.asarray(features, dtype=np.float64)
        return self._sigmoid(features @ self.weights + self.bias)

    def predict(self, features: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Return 0/1 predictions at the given probability threshold."""
        return (self.predict_proba(features) > threshold).astype(int)


def precision_recall_f1(labels: np.ndarray, predictions: np.ndarray) -> dict[str, float]:
    """Compute precision, recall and F1 of binary predictions."""
    labels = np.asarray(labels).astype(int)
    predictions = np.asarray(predictions).astype(int)
    true_positive = int(np.sum((labels == 1) & (predictions == 1)))
    false_positive = int(np.sum((labels == 0) & (predictions == 1)))
    false_negative = int(np.sum((labels == 1) & (predictions == 0)))
    precision = true_positive / (true_positive + false_positive) if (true_positive + false_positive) else 0.0
    recall = true_positive / (true_positive + false_negative) if (true_positive + false_negative) else 0.0
    f1 = 2 * precision * recall / (precision + recall) if (precision + recall) else 0.0
    return {"precision": precision, "recall": recall, "f1": f1}
