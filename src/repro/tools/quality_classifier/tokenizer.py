"""Tokenizers backing the quality classifiers.

The original pipeline uses PySpark's standard tokenizer for English and a
SentencePiece model for Chinese/code.  Two equivalents are provided:

* :class:`StandardTokenizer` — lowercased whitespace/punctuation word splitting;
* :class:`UnigramTokenizer` — a trainable unigram/character sub-word tokenizer
  (greedy longest-match over a learned vocabulary), standing in for
  SentencePiece; it handles CJK text and code identifiers where whitespace
  tokenization is inadequate.
"""

from __future__ import annotations

from collections import Counter

from repro.ops.common.helper_funcs import get_words_from_text, words_refinement


class StandardTokenizer:
    """Whitespace/punctuation word tokenizer (PySpark ``Tokenizer`` equivalent)."""

    def tokenize(self, text: str) -> list[str]:
        """Return lowercased word tokens with punctuation stripped."""
        return words_refinement(get_words_from_text(text, lowercase=True))


class UnigramTokenizer:
    """A trainable greedy sub-word tokenizer (SentencePiece stand-in).

    Training collects the most frequent character n-grams (up to
    ``max_piece_len``) as the vocabulary; tokenisation greedily matches the
    longest known piece at each position, falling back to single characters.
    """

    def __init__(self, vocab_size: int = 2000, max_piece_len: int = 6):
        self.vocab_size = vocab_size
        self.max_piece_len = max_piece_len
        self.vocab: set[str] = set()

    def train(self, texts: list[str]) -> "UnigramTokenizer":
        """Learn the piece vocabulary from a list of texts."""
        counts: Counter = Counter()
        for text in texts:
            text = text.lower()
            for length in range(2, self.max_piece_len + 1):
                for start in range(0, max(0, len(text) - length + 1)):
                    piece = text[start:start + length]
                    if piece.strip() and not any(char.isspace() for char in piece):
                        counts[piece] += 1
        self.vocab = {piece for piece, _ in counts.most_common(self.vocab_size)}
        return self

    @property
    def is_trained(self) -> bool:
        """True once :meth:`train` has produced a vocabulary."""
        return bool(self.vocab)

    def tokenize(self, text: str) -> list[str]:
        """Greedy longest-match tokenisation over the learned vocabulary."""
        text = text.lower()
        if not self.vocab:
            return [char for char in text if not char.isspace()]
        tokens: list[str] = []
        position = 0
        while position < len(text):
            if text[position].isspace():
                position += 1
                continue
            match = None
            for length in range(min(self.max_piece_len, len(text) - position), 1, -1):
                piece = text[position:position + length]
                if piece in self.vocab:
                    match = piece
                    break
            if match is None:
                match = text[position]
            tokens.append(match)
            position += len(match)
        return tokens
