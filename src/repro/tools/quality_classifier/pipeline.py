"""The callable quality-classifier pipeline (GPT-3-style, plus ZH / Code variants).

Reproduces Sec. 5.2 / 7.2.3 and Appendix B.1 of the paper: a tokenizer +
HashingTF + binary logistic regression pipeline that scores text quality, with
two keeping rules:

* ``label``  — keep when ``doc_score > 0.5``;
* ``pareto`` — keep when ``doc_score > 1 - numpy.random.pareto(alpha)`` with
  ``alpha = 9`` (the GPT-3 re-sampling rule).

Factory helpers train the three classifiers of Table 5/6 against the synthetic
corpora: GPT-3-like (Wikipedia/Books positives vs CommonCrawl negatives),
Chinese (clean vs noisy Chinese-like web) and Code (high-star vs random code).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import NestedDataset
from repro.core.sample import Fields, get_field
from repro.tools.quality_classifier.features import HashingVectorizer
from repro.tools.quality_classifier.model import LogisticRegression, precision_recall_f1
from repro.tools.quality_classifier.tokenizer import StandardTokenizer, UnigramTokenizer

PARETO_ALPHA = 9.0


@dataclass
class EvaluationResult:
    """Precision / recall / F1 of a trained classifier on a held-out split."""

    precision: float
    recall: float
    f1: float

    def as_dict(self) -> dict:
        """Plain-dict view (used by the Table 5 benchmark)."""
        return {"precision": self.precision, "recall": self.recall, "f1": self.f1}


class QualityClassifier:
    """Tokenizer + HashingTF + logistic-regression text quality scorer."""

    def __init__(
        self,
        tokenizer: str = "standard",
        num_features: int = 2 ** 14,
        num_iterations: int = 500,
        seed: int = 0,
    ):
        if tokenizer == "standard":
            self.tokenizer = StandardTokenizer()
        elif tokenizer == "unigram":
            self.tokenizer = UnigramTokenizer()
        else:
            raise ValueError(f"unknown tokenizer {tokenizer!r}")
        self.tokenizer_name = tokenizer
        self.vectorizer = HashingVectorizer(num_features=num_features)
        self.model = LogisticRegression(num_iterations=num_iterations, seed=seed)
        self.seed = seed

    # ------------------------------------------------------------------
    def _vectorize(self, texts: list[str]) -> np.ndarray:
        token_lists = [self.tokenizer.tokenize(text) for text in texts]
        return self.vectorizer.transform(token_lists)

    def fit(self, positive_texts: list[str], negative_texts: list[str]) -> "QualityClassifier":
        """Train on positive (high-quality) vs negative (low-quality) texts."""
        if isinstance(self.tokenizer, UnigramTokenizer) and not self.tokenizer.is_trained:
            self.tokenizer.train(list(positive_texts) + list(negative_texts))
        texts = list(positive_texts) + list(negative_texts)
        labels = np.array([1] * len(positive_texts) + [0] * len(negative_texts))
        features = self._vectorize(texts)
        self.model.fit(features, labels)
        return self

    def predict_scores(self, texts: list[str]) -> np.ndarray:
        """Return the document quality score (P(high quality)) for each text."""
        if not texts:
            return np.zeros(0)
        return self.model.predict_proba(self._vectorize(texts))

    def evaluate(self, positive_texts: list[str], negative_texts: list[str]) -> EvaluationResult:
        """Compute precision/recall/F1 on labelled held-out texts."""
        texts = list(positive_texts) + list(negative_texts)
        labels = np.array([1] * len(positive_texts) + [0] * len(negative_texts))
        predictions = (self.predict_scores(texts) > 0.5).astype(int)
        metrics = precision_recall_f1(labels, predictions)
        return EvaluationResult(**metrics)

    # ------------------------------------------------------------------
    def keep_mask(
        self, scores: np.ndarray, method: str = "label", seed: int | None = None
    ) -> np.ndarray:
        """Return the boolean keep decision for each score under a keeping rule."""
        scores = np.asarray(scores, dtype=float)
        if method == "label":
            return scores > 0.5
        if method == "pareto":
            rng = np.random.default_rng(self.seed if seed is None else seed)
            thresholds = 1.0 - rng.pareto(PARETO_ALPHA, size=scores.shape)
            return scores > thresholds
        raise ValueError(f"unknown keeping method {method!r}")

    def keeping_ratio(
        self, texts: list[str], method: str = "label", seed: int | None = None
    ) -> float:
        """Fraction of texts kept under the given keeping rule (Table 4)."""
        if not texts:
            return 0.0
        scores = self.predict_scores(texts)
        return float(self.keep_mask(scores, method=method, seed=seed).mean())

    def annotate_dataset(
        self, dataset: NestedDataset, text_key: str = Fields.text, stats_key: str = "quality_score"
    ) -> NestedDataset:
        """Return a copy of the dataset with per-sample quality scores in stats."""
        texts = [
            value if isinstance(value := get_field(row, text_key, ""), str) else ""
            for row in dataset
        ]
        scores = self.predict_scores(texts)

        def attach(sample: dict, score_iter=iter(scores.tolist())) -> dict:
            sample = dict(sample)
            stats = dict(sample.get(Fields.stats) or {})
            stats[stats_key] = next(score_iter)
            sample[Fields.stats] = stats
            return sample

        return dataset.map(attach)


# ----------------------------------------------------------------------
# Factory helpers matching the three classifiers of the paper (Table 5/6).
# ----------------------------------------------------------------------
def _texts(dataset: NestedDataset) -> list[str]:
    return [row.get(Fields.text, "") for row in dataset]


def train_gpt3_like_classifier(
    num_samples: int = 150, seed: int = 0, num_iterations: int = 500
) -> QualityClassifier:
    """GPT-3-like English classifier: Wikipedia/Books positives vs CommonCrawl negatives."""
    from repro.synth.corpora import books_like, common_crawl_like, wikipedia_like

    positives = _texts(wikipedia_like(num_samples=num_samples, seed=seed)) + _texts(
        books_like(num_samples=max(10, num_samples // 3), seed=seed + 1)
    )
    negatives = _texts(
        common_crawl_like(num_samples=num_samples, seed=seed + 2, quality=0.1, duplicate_ratio=0.0)
    )
    classifier = QualityClassifier(tokenizer="standard", num_iterations=num_iterations, seed=seed)
    return classifier.fit(positives, negatives)


def train_chinese_classifier(
    num_samples: int = 150, seed: int = 1, num_iterations: int = 500
) -> QualityClassifier:
    """Chinese classifier: clean Chinese-like prose vs noisy Chinese-like web text."""
    from repro.synth.corpora import chinese_web_like

    clean = chinese_web_like(num_samples=num_samples, seed=seed, quality=1.0)
    noisy = chinese_web_like(num_samples=num_samples, seed=seed + 5, quality=0.0)
    classifier = QualityClassifier(tokenizer="unigram", num_iterations=num_iterations, seed=seed)
    return classifier.fit(_texts(clean), _texts(noisy))


def train_code_classifier(
    num_samples: int = 150, seed: int = 2, num_iterations: int = 500
) -> QualityClassifier:
    """Code classifier: high-star code positives vs random code negatives.

    The paper reports this split works poorly (F1 ≈ 62%), because star count
    is a weak proxy for textual quality; the same weakness is reproduced here
    since positives and negatives are drawn from the same generator and differ
    mostly by the presence of license headers.
    """
    from repro.synth.corpora import code_like

    corpus = code_like(num_samples=num_samples * 2, seed=seed, quality=0.5)
    positives, negatives = [], []
    for row in corpus:
        stars = get_field(row, "meta.stars", 0)
        if stars >= 1000:
            positives.append(row.get(Fields.text, ""))
        else:
            negatives.append(row.get(Fields.text, ""))
    classifier = QualityClassifier(tokenizer="unigram", num_iterations=num_iterations, seed=seed)
    return classifier.fit(positives or ["def f():\n    return 1"], negatives or ["x = 1"])
