"""HashingTF feature extraction (PySpark ``HashingTF`` equivalent on numpy)."""

from __future__ import annotations

import hashlib

import numpy as np


class HashingVectorizer:
    """Map token lists to fixed-width term-frequency vectors via the hashing trick.

    Parameters
    ----------
    num_features:
        Width of the feature space (PySpark defaults to 2^20; a smaller power
        of two keeps the pure-Python reproduction fast without changing the
        behaviour of the downstream logistic regression).
    normalize:
        When True, each vector is L2-normalised, which stabilises training.
    """

    def __init__(self, num_features: int = 2 ** 14, normalize: bool = True):
        if num_features <= 0:
            raise ValueError("num_features must be positive")
        self.num_features = num_features
        self.normalize = normalize

    def _index(self, token: str) -> int:
        digest = hashlib.md5(token.encode("utf-8")).digest()
        return int.from_bytes(digest[:4], "little") % self.num_features

    def transform_one(self, tokens: list[str]) -> np.ndarray:
        """Vectorise one token list."""
        vector = np.zeros(self.num_features, dtype=np.float64)
        for token in tokens:
            vector[self._index(token)] += 1.0
        if self.normalize:
            norm = np.linalg.norm(vector)
            if norm > 0:
                vector /= norm
        return vector

    def transform(self, token_lists: list[list[str]]) -> np.ndarray:
        """Vectorise a batch of token lists into a (n_samples, num_features) matrix."""
        if not token_lists:
            return np.zeros((0, self.num_features), dtype=np.float64)
        return np.stack([self.transform_one(tokens) for tokens in token_lists])
