"""Quality classifiers: GPT-3-style text quality scoring pipelines."""

from repro.tools.quality_classifier.features import HashingVectorizer
from repro.tools.quality_classifier.model import LogisticRegression, precision_recall_f1
from repro.tools.quality_classifier.pipeline import (
    EvaluationResult,
    QualityClassifier,
    train_chinese_classifier,
    train_code_classifier,
    train_gpt3_like_classifier,
)
from repro.tools.quality_classifier.tokenizer import StandardTokenizer, UnigramTokenizer

__all__ = [
    "EvaluationResult",
    "HashingVectorizer",
    "LogisticRegression",
    "QualityClassifier",
    "StandardTokenizer",
    "UnigramTokenizer",
    "precision_recall_f1",
    "train_chinese_classifier",
    "train_code_classifier",
    "train_gpt3_like_classifier",
]
