"""AST-inferred operator effect signatures — the per-op dataflow facts.

An :class:`EffectSignature` records, for one operator, which sample fields it
*reads*, *writes* and *removes*, which context keys it produces or consumes,
and what it does to the row set — all inferred statically from the operator's
source by reusing the ``repro lint`` module model
(:class:`repro.tools.lint.framework.LintModule` /
:class:`~repro.tools.lint.framework.OpClassInfo`).  No operator is imported,
so even a module that would crash on import still yields a signature.

Field paths use the same dotted convention as ``get_field``/``set_field``:
``meta.stars``, ``__stats__.text_len``.  Paths that depend on a constructor
parameter are recorded as ``<param>`` placeholders (``<text_key>``,
``<field_key>``) and concretised per recipe step by
:meth:`EffectSignature.resolve`.

The extractor recognises the accessor idioms the operator pool actually uses
(all of them enforced by the lint rules of PR 6):

* ``self.get_text(sample)`` / ``self.set_text(sample, ...)`` and the batched
  ``get_text_column`` / ``set_text_column`` — read/write of ``<text_key>``;
* ``get_field`` / ``set_field`` / ``has_field`` with literal, ``self.<attr>``
  or ``Fields``/``StatsKeys``/``HashKeys`` keys;
* subscripts, ``.get(...)`` and ``in``-tests against ``__stats__`` views,
  hash columns and the sample itself;
* ``get_or_compute`` / ``get_or_compute_column`` and the declarative
  ``context_keys`` class attribute — shared-context production/consumption;
* ``remove_columns(...)`` — column removal (deduplicators dropping their
  signature columns).

The catalog is versioned (:data:`EFFECT_SIGNATURE_VERSION`) so downstream
consumers — the dataflow checker, ``docs/ops_catalog.md``, the future
service layer — can detect format changes.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.core.context import ContextKeys
from repro.core.sample import Fields, HashKeys, StatsKeys
from repro.tools.lint.framework import (
    LintModule,
    OpClassInfo,
    default_lint_paths,
    dotted_name,
    iter_python_files,
)

#: bump when the EffectSignature fields or path conventions change shape
EFFECT_SIGNATURE_VERSION = 1


def _public_values(cls: type) -> dict[str, str]:
    """``{attr: value}`` for the string class attributes of a key namespace."""
    return {
        name: value
        for name, value in vars(cls).items()
        if not name.startswith("_") and isinstance(value, str)
    }


_STATS_VALUES = _public_values(StatsKeys)
_HASH_VALUES = _public_values(HashKeys)
_CONTEXT_VALUES = _public_values(ContextKeys)
_FIELD_VALUES = _public_values(Fields)

#: the standard signature columns streaming dedup knows how to carry
HASH_COLUMNS = frozenset(_HASH_VALUES.values())

#: container fields accessing *into* which is namespace plumbing, not a read
_CONTAINER_FIELDS = frozenset({Fields.stats, Fields.context})

#: variable names treated as "the sample/batch mapping" for literal-key
#: subscripts (``sample["tag"]``); anything else is assumed to be a plain
#: dict the op owns internally
_SAMPLE_NAMES = frozenset({"sample", "samples", "row", "record"})

#: row-set effect per operator category — every op has one, which is what
#: makes the "every op has a non-empty signature" guarantee honest even for
#: ops that touch no fields at all (e.g. ``random_selector``)
ROW_EFFECT_OF_CATEGORY = {
    "mapper": "rewrites rows in place",
    "filter": "drops rows failing its predicate",
    "deduplicator": "drops duplicate rows",
    "selector": "keeps a chosen subset of rows",
}


@dataclass(frozen=True)
class EffectSignature:
    """Statically-inferred dataflow contract of one operator.

    ``reads``/``writes``/``removes`` are dotted field paths (stats keys appear
    as ``__stats__.<key>``, hash columns by their column name); paths holding
    a ``<param>`` placeholder are resolved against recipe parameters by
    :meth:`resolve`.  ``context_reads``/``context_writes`` name shared
    context keys (:class:`repro.core.context.ContextKeys` values).
    """

    op: str
    category: str
    reads: tuple[str, ...] = ()
    writes: tuple[str, ...] = ()
    removes: tuple[str, ...] = ()
    context_reads: tuple[str, ...] = ()
    context_writes: tuple[str, ...] = ()
    row_effect: str = "passes rows through"
    param_defaults: dict = field(default_factory=dict)

    @property
    def is_empty(self) -> bool:
        """True when the signature carries no information at all."""
        return not (
            self.reads
            or self.writes
            or self.removes
            or self.context_reads
            or self.context_writes
            or self.row_effect != "passes rows through"
        )

    def as_dict(self) -> dict:
        """JSON-ready representation (stable key order)."""
        return {
            "op": self.op,
            "category": self.category,
            "reads": list(self.reads),
            "writes": list(self.writes),
            "removes": list(self.removes),
            "context_reads": list(self.context_reads),
            "context_writes": list(self.context_writes),
            "row_effect": self.row_effect,
            "param_defaults": dict(self.param_defaults),
        }

    def resolve(self, params: dict | None = None) -> "ResolvedEffects":
        """Concretise ``<param>`` placeholders against one recipe step.

        Parameters missing from both ``params`` and the constructor defaults
        (or resolving to a non-string) drop the path — the checker treats an
        unresolvable path as unknown rather than guessing.
        """
        params = params or {}

        def concretise(paths: tuple[str, ...]) -> frozenset:
            out = set()
            for path in paths:
                resolved = self._resolve_path(path, params)
                if resolved:
                    out.add(resolved)
            return frozenset(out)

        return ResolvedEffects(
            reads=concretise(self.reads),
            writes=concretise(self.writes),
            removes=concretise(self.removes),
            context_reads=frozenset(self.context_reads),
            context_writes=frozenset(self.context_writes),
        )

    def _resolve_path(self, path: str, params: dict) -> str | None:
        if "<" not in path:
            return path
        out = path
        start = path.find("<")
        while start != -1:
            end = out.find(">", start)
            if end == -1:
                return None
            attr = out[start + 1 : end]
            value = params.get(attr, self.param_defaults.get(attr))
            if not isinstance(value, str) or not value:
                return None
            out = out[:start] + value + out[end + 1 :]
            start = out.find("<")
        return out


@dataclass(frozen=True)
class ResolvedEffects:
    """An :class:`EffectSignature` with placeholders bound to one recipe step."""

    reads: frozenset = frozenset()
    writes: frozenset = frozenset()
    removes: frozenset = frozenset()
    context_reads: frozenset = frozenset()
    context_writes: frozenset = frozenset()

    @property
    def context(self) -> frozenset:
        """All context keys the op touches (fusion-sharing test)."""
        return self.context_reads | self.context_writes


# --------------------------------------------------------------------------
# key resolution: AST node -> tagged (kind, value) pairs
# --------------------------------------------------------------------------

_STATS_TAG = "stats"
_FIELD_TAG = "field"
_HASH_TAG = "hash"
_CONTEXT_TAG = "context"
_CONTAINER_TAG = "container"
_LITERAL_TAG = "literal"


def _classify_literal(value: str) -> tuple[str, str]:
    """Classify a literal key independent of its subscript base."""
    if value in HASH_COLUMNS:
        return (_HASH_TAG, value)
    if value in _CONTAINER_FIELDS:
        return (_CONTAINER_TAG, value)
    if value.startswith(Fields.stats + "."):
        return (_STATS_TAG, value[len(Fields.stats) + 1 :])
    return (_LITERAL_TAG, value)


class _KeyResolver:
    """Resolves key expressions of one operator class to tagged values."""

    def __init__(self, info: OpClassInfo):
        self.param_names = {p.name for p in info.constructor_params}
        self.init_literals: dict[str, str] = {}
        for assignment in info.init_assignments():
            literal = None
            if isinstance(assignment.value, ast.Constant) and isinstance(
                assignment.value.value, str
            ):
                literal = assignment.value.value
            if literal is not None:
                self.init_literals.setdefault(assignment.attr, literal)
        self.local_keys: dict[str, set] = {}

    def learn_locals(self, method: ast.FunctionDef) -> None:
        """Record ``key = StatsKeys.x if ... else StatsKeys.y`` style locals."""
        self.local_keys = {}
        for node in ast.walk(method):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            found = set()
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Attribute) and not (
                    isinstance(sub.value, ast.Name) and sub.value.id == "self"
                ):
                    found.update(self._resolve_attribute(sub))
            if found:
                self.local_keys[target.id] = found

    def _resolve_attribute(self, node: ast.Attribute) -> set:
        dotted = dotted_name(node)
        if not dotted or "." not in dotted:
            return set()
        base, attr = dotted.split(".", 1)
        if base == "StatsKeys" and attr in _STATS_VALUES:
            return {(_STATS_TAG, _STATS_VALUES[attr])}
        if base == "HashKeys" and attr in _HASH_VALUES:
            return {(_HASH_TAG, _HASH_VALUES[attr])}
        if base == "ContextKeys" and attr in _CONTEXT_VALUES:
            return {(_CONTEXT_TAG, _CONTEXT_VALUES[attr])}
        if base == "Fields" and attr in _FIELD_VALUES:
            return {_classify_literal(_FIELD_VALUES[attr])}
        if base == "self":
            if attr in self.param_names:
                return {(_FIELD_TAG, f"<{attr}>")}
            literal = self.init_literals.get(attr)
            if literal is not None:
                return {_classify_literal(literal)}
        return set()

    def resolve(self, node: ast.AST | None) -> set:
        """All tagged keys a key expression may denote (empty: unresolvable)."""
        if node is None:
            return set()
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return {_classify_literal(node.value)}
        if isinstance(node, ast.Attribute):
            return self._resolve_attribute(node)
        if isinstance(node, ast.Name):
            return set(self.local_keys.get(node.id, ()))
        if isinstance(node, (ast.Tuple, ast.List)):
            out = set()
            for element in node.elts:
                out.update(self.resolve(element))
            return out
        return set()


def _is_stats_base(node: ast.AST, resolver: _KeyResolver) -> bool:
    """True when ``node`` denotes a ``__stats__`` view (``stats[...]`` etc.)."""
    if isinstance(node, ast.Name):
        return node.id == "stats" or node.id.startswith("stats_")
    if isinstance(node, ast.Subscript):
        return any(tag == _CONTAINER_TAG and value == Fields.stats
                   for tag, value in resolver.resolve(node.slice))
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr == "get" and node.args:
            return any(tag == _CONTAINER_TAG and value == Fields.stats
                       for tag, value in resolver.resolve(node.args[0]))
        # ensure_stats(sample) / stats_column_view(samples) return stats views
    if isinstance(node, ast.Call):
        callee = dotted_name(node.func).split(".")[-1]
        return callee in ("ensure_stats", "ensure_stats_column", "stats_column_view")
    return False


def _is_sample_base(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return node.id in _SAMPLE_NAMES
    return False


@dataclass
class _Effects:
    reads: set = field(default_factory=set)
    writes: set = field(default_factory=set)
    removes: set = field(default_factory=set)
    context_reads: set = field(default_factory=set)
    context_writes: set = field(default_factory=set)

    def record(self, base: ast.AST | None, keys: set, bucket: set,
               resolver: _KeyResolver) -> None:
        """File resolved keys into ``bucket`` as dotted field paths."""
        stats_base = base is not None and _is_stats_base(base, resolver)
        sample_base = base is not None and _is_sample_base(base)
        for tag, value in keys:
            if tag == _STATS_TAG:
                bucket.add(f"{Fields.stats}.{value}")
            elif tag == _HASH_TAG:
                bucket.add(value)
            elif tag == _CONTEXT_TAG:
                if bucket is self.reads:
                    self.context_reads.add(value)
                elif bucket is self.writes:
                    self.context_writes.add(value)
            elif tag == _FIELD_TAG:
                bucket.add(value)
            elif tag == _LITERAL_TAG:
                # a bare literal key counts only against a known base: a
                # stats view makes it a stats key, the sample mapping a field
                if stats_base:
                    bucket.add(f"{Fields.stats}.{value}")
                elif sample_base or base is None:
                    bucket.add(value)


def _extract_method(method: ast.FunctionDef, resolver: _KeyResolver,
                    effects: _Effects) -> None:
    """Accumulate the effects of one data-path method (nested defs included)."""
    resolver.learn_locals(method)
    for node in ast.walk(method):
        if isinstance(node, ast.Subscript):
            base, keys = node.value, resolver.resolve(node.slice)
            if isinstance(node.ctx, ast.Store):
                effects.record(base, keys, effects.writes, resolver)
            elif isinstance(node.ctx, ast.Del):
                effects.record(base, keys, effects.removes, resolver)
            else:
                effects.record(base, keys, effects.reads, resolver)
        elif isinstance(node, ast.Compare):
            if any(isinstance(op, (ast.In, ast.NotIn)) for op in node.ops):
                base = node.comparators[0] if node.comparators else None
                if base is not None and (
                    _is_stats_base(base, resolver) or _is_sample_base(base)
                ):
                    effects.record(base, resolver.resolve(node.left),
                                   effects.reads, resolver)
        elif isinstance(node, ast.Call):
            _extract_call(node, resolver, effects)


def _extract_call(node: ast.Call, resolver: _KeyResolver, effects: _Effects) -> None:
    func = node.func
    callee = dotted_name(func)
    # dotted_name gives up on chained-call bases (``x.select(...).remove_columns``);
    # the attribute name alone is enough to recognise the accessor helpers
    short = callee.split(".")[-1] if callee else (
        func.attr if isinstance(func, ast.Attribute) else ""
    )

    if callee == "self.get_text":
        effects.record(None, {(_FIELD_TAG, "<text_key>")}, effects.reads, resolver)
    elif callee == "self.set_text":
        effects.record(None, {(_FIELD_TAG, "<text_key>")}, effects.writes, resolver)
    elif short == "get_text_column":
        keys = resolver.resolve(node.args[1]) if len(node.args) > 1 else {
            (_FIELD_TAG, "<text_key>")
        }
        effects.record(None, keys or {(_FIELD_TAG, "<text_key>")}, effects.reads, resolver)
    elif short == "set_text_column":
        keys = resolver.resolve(node.args[1]) if len(node.args) > 1 else {
            (_FIELD_TAG, "<text_key>")
        }
        effects.record(None, keys or {(_FIELD_TAG, "<text_key>")}, effects.writes, resolver)
    elif short in ("get_field", "has_field") and len(node.args) > 1:
        effects.record(None, resolver.resolve(node.args[1]), effects.reads, resolver)
    elif short == "set_field" and len(node.args) > 1:
        effects.record(None, resolver.resolve(node.args[1]), effects.writes, resolver)
    elif short in ("get_or_compute", "get_or_compute_column") and len(node.args) > 1:
        keys = resolver.resolve(node.args[1])
        effects.record(None, keys, effects.reads, resolver)
        effects.record(None, keys, effects.writes, resolver)
    elif short == "remove_columns":
        for arg in node.args:
            effects.record(None, resolver.resolve(arg), effects.removes, resolver)
    elif isinstance(func, ast.Attribute) and func.attr == "get" and node.args:
        base = func.value
        if _is_stats_base(base, resolver) or _is_sample_base(base):
            effects.record(base, resolver.resolve(node.args[0]), effects.reads, resolver)
        else:
            keys = {
                (tag, value)
                for tag, value in resolver.resolve(node.args[0])
                if tag != _LITERAL_TAG
            }
            effects.record(base, keys, effects.reads, resolver)


def _declared_context_keys(info: OpClassInfo, resolver: _KeyResolver) -> set:
    """Context keys from the declarative ``context_keys`` class attribute."""
    declared = set()
    for child in info.node.body:
        if not isinstance(child, ast.Assign):
            continue
        for target in child.targets:
            if isinstance(target, ast.Name) and target.id == "context_keys":
                for tag, value in resolver.resolve(child.value):
                    if tag == _CONTEXT_TAG:
                        declared.add(value)
                    elif tag == _LITERAL_TAG:
                        declared.add(value)
    return declared


def extract_signature(info: OpClassInfo) -> EffectSignature:
    """Infer the :class:`EffectSignature` of one parsed operator class."""
    resolver = _KeyResolver(info)
    effects = _Effects()
    for method in info.process_methods():
        _extract_method(method, resolver, effects)
    effects.context_writes |= _declared_context_keys(info, resolver)

    category = info.category or "op"
    defaults = {
        p.name: p.default_literal
        for p in info.constructor_params
        if isinstance(p.default_literal, str)
    }
    defaults.setdefault("text_key", Fields.text)
    for path in ("reads", "writes", "removes"):
        getattr(effects, path).discard(Fields.stats)
        getattr(effects, path).discard(Fields.context)
    return EffectSignature(
        op=info.display_name,
        category=category,
        reads=tuple(sorted(effects.reads)),
        writes=tuple(sorted(effects.writes)),
        removes=tuple(sorted(effects.removes)),
        context_reads=tuple(sorted(effects.context_reads)),
        context_writes=tuple(sorted(effects.context_writes)),
        row_effect=ROW_EFFECT_OF_CATEGORY.get(category, "passes rows through"),
        param_defaults=defaults,
    )


def extract_effects_from_path(path: str | Path) -> dict[str, EffectSignature]:
    """Signatures of every operator class in one module (fixtures, plugins)."""
    module = LintModule.parse(Path(path))
    return {
        info.display_name: extract_signature(info)
        for info in module.op_classes
        if info.registered_name or info.category
    }


def _iter_signatures(paths: Iterable[Path]) -> Iterator[EffectSignature]:
    for file_path in iter_python_files(paths):
        try:
            module = LintModule.parse(file_path)
        except SyntaxError:
            continue
        for info in module.op_classes:
            if info.registered_name:
                yield extract_signature(info)


_CATALOG_CACHE: dict[str, EffectSignature] | None = None


def effect_catalog(refresh: bool = False) -> dict[str, EffectSignature]:
    """The signature catalog of the built-in operator pool (cached)."""
    global _CATALOG_CACHE
    if _CATALOG_CACHE is None or refresh:
        _CATALOG_CACHE = {
            signature.op: signature
            for signature in _iter_signatures(default_lint_paths())
        }
    return _CATALOG_CACHE


def effect_signature(op_name: str) -> EffectSignature | None:
    """The catalog signature of one registered op, or ``None`` if unknown."""
    return effect_catalog().get(op_name)


def catalog_as_dict() -> dict:
    """The whole catalog as a versioned, JSON-ready document."""
    return {
        "version": EFFECT_SIGNATURE_VERSION,
        "signatures": {
            name: signature.as_dict()
            for name, signature in sorted(effect_catalog().items())
        },
    }


__all__ = [
    "EFFECT_SIGNATURE_VERSION",
    "EffectSignature",
    "HASH_COLUMNS",
    "ResolvedEffects",
    "catalog_as_dict",
    "effect_catalog",
    "effect_signature",
    "extract_effects_from_path",
    "extract_signature",
]
