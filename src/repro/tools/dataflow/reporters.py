"""Reporters for ``repro dataflow``: text for humans, JSON for the service layer.

The text reporter shares its ``found N finding(s)`` shape and severity footer
with ``repro lint`` through :mod:`repro.core.reporting`.  The JSON document is
versioned and schema-stable (asserted by ``tests/test_dataflow.py``; described
in ``docs/dataflow.md``) so the ROADMAP's service layer can gate job
submission on it without parsing human text.
"""

from __future__ import annotations

import json

from repro.core.reporting import render_problems, severity_footer
from repro.tools.dataflow.checker import (
    DATAFLOW_RULES,
    EFFECT_SIGNATURE_VERSION,
    DataflowResult,
)


def render_text(result: DataflowResult, verbose_suppressed: bool = False) -> str:
    """Human-readable dataflow report: one line per finding plus a summary."""
    label = f" for {result.recipe!r}" if result.recipe else ""
    ok = (
        f"dataflow clean{label}: {result.ops_checked} step(s) checked against "
        f"{len(DATAFLOW_RULES)} rule(s)"
    )
    body = render_problems(result.findings, ok, noun="finding")
    counts = result.counts_by_severity()
    trailer: list[str] = []
    if result.findings or result.suppressed:
        trailer.append(
            f"({severity_footer(counts['error'], counts['warning'], len(result.suppressed))})"
        )
    if result.suppressed and verbose_suppressed:
        trailer.extend(f"  ~ {finding}" for finding in result.suppressed)
    return "\n".join([body, *trailer])


def result_payload(result: DataflowResult) -> dict:
    """One recipe's JSON-ready result (a row of the ``--all`` document)."""
    return {
        "recipe": result.recipe,
        "exit_code": result.exit_code,
        "ops_checked": result.ops_checked,
        "counts": result.counts_by_severity(),
        "findings": [finding.as_dict() for finding in result.findings],
        "suppressed": [finding.as_dict() for finding in result.suppressed],
    }


def render_json(result: DataflowResult) -> str:
    """Machine-readable single-recipe report (stable key order)."""
    payload = {
        "version": EFFECT_SIGNATURE_VERSION,
        "rules": list(DATAFLOW_RULES),
        **result_payload(result),
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def render_json_many(results: list[DataflowResult]) -> str:
    """Machine-readable multi-recipe report (the ``--all`` document)."""
    payload = {
        "version": EFFECT_SIGNATURE_VERSION,
        "rules": list(DATAFLOW_RULES),
        "exit_code": max((r.exit_code for r in results), default=0),
        "recipes": [result_payload(result) for result in results],
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def render_rule_catalog() -> str:
    """``--list-rules`` output: id, severity and contract of every rule."""
    lines = []
    for rule_id, (severity, summary, _) in DATAFLOW_RULES.items():
        lines.append(f"{rule_id} [{severity}]: {summary}")
    return "\n".join(lines)


__all__ = [
    "render_json",
    "render_json_many",
    "render_rule_catalog",
    "render_text",
    "result_payload",
]
