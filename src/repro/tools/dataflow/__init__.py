"""``repro dataflow``: static whole-pipeline verification for recipes.

PR 6's ``repro lint`` proves *single-op* contracts from the AST; this package
lifts the same machinery to whole recipes.  :mod:`~repro.tools.dataflow.effects`
infers a versioned :class:`EffectSignature` per operator (fields read/written/
removed, context keys, row effect) and
:mod:`~repro.tools.dataflow.checker` symbolically executes a recipe over an
abstract field-set lattice, reporting undefined reads, dead writes, order
hazards, fusion-unsafe adjacencies and streaming incompatibilities — with
did-you-mean suggestions and exact step indices, before a single row is read.

Entry points: ``repro dataflow`` / ``repro lint --recipes`` on the CLI,
``validate-recipe`` (schema + dataflow in one report),
:meth:`repro.api.pipeline.Pipeline.plan` and the
:class:`repro.core.executor.Executor` pre-flight (warn by default,
``strict_dataflow: true`` to fail).  See ``docs/dataflow.md``.
"""

from repro.tools.dataflow.checker import (
    DATAFLOW_RULES,
    DataflowFinding,
    DataflowResult,
    check_recipe,
    check_steps,
    dataflow_rule_ids,
)
from repro.tools.dataflow.effects import (
    EFFECT_SIGNATURE_VERSION,
    EffectSignature,
    ResolvedEffects,
    catalog_as_dict,
    effect_catalog,
    effect_signature,
    extract_effects_from_path,
    extract_signature,
)
from repro.tools.dataflow.reporters import (
    render_json,
    render_json_many,
    render_rule_catalog,
    render_text,
    result_payload,
)

__all__ = [
    "DATAFLOW_RULES",
    "DataflowFinding",
    "DataflowResult",
    "EFFECT_SIGNATURE_VERSION",
    "EffectSignature",
    "ResolvedEffects",
    "catalog_as_dict",
    "check_recipe",
    "check_steps",
    "dataflow_rule_ids",
    "effect_catalog",
    "effect_signature",
    "extract_effects_from_path",
    "extract_signature",
    "render_json",
    "render_json_many",
    "render_rule_catalog",
    "render_text",
    "result_payload",
]
