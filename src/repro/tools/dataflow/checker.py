"""The recipe dataflow checker: symbolic execution over a field-set lattice.

Given a recipe (a :class:`repro.core.config.RecipeConfig`, a payload dict or
a YAML/JSON path), the checker resolves each step's
:class:`~repro.tools.dataflow.effects.EffectSignature` against its parameters
and walks the pipeline once, tracking which fields are *known* (produced by
an earlier step, seeded from ``text_keys`` and the declared ``input_fields``)
and which writes are still *live* (never consumed).  Five rules fire along
the way:

``undefined-read`` (error)
    A step reads a field no earlier step produces.  Internal namespaces
    (``__stats__.*``, hash columns) are closed-world — the full key universe
    is known statically, so unknown reads get did-you-mean suggestions.
    User fields (``meta.stars``) are open-world *unless* the recipe declares
    ``input_fields``, which opts into closed-world checking for them too.

``order-hazard`` (error / warning)
    A step reads a field that *is* produced — but only by a later step
    (error, names the producer), or a mapper mutates a field a deduplicator
    already hashed (warning: rows that were duplicates at dedup time may no
    longer be after the rewrite, which is usually a recipe-ordering mistake).

``dead-write`` (warning)
    An internal-namespace write no later step reads before export strips it
    (stats columns when ``keep_stats_in_export`` is off), or any write
    overwritten by a later step with no intervening read.

``fusion-unsafe`` (error)
    With ``op_fusion`` on, :func:`repro.core.fusion.fuse_operators` moves the
    fusible members of a consecutive-filter group *after* its non-fusible
    members.  A non-fusible filter consuming stats produced by a fusible
    member of its own group therefore runs before its producer — regardless
    of the order written in the recipe.

``stream-unsafe`` (error)
    With ``stream`` on, the planner rejects op categories outside
    mapper/filter/deduplicator/selector and deduplicators whose signatures
    live outside the standard hash columns.  The checker reports both
    statically, before a single row is read.

Findings can be suppressed per recipe via ``dataflow_ignore`` entries of the
form ``rule`` or ``rule@step`` (1-based step index).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.registry import suggestion_hint
from repro.core.sample import Fields
from repro.tools.dataflow.effects import (
    EFFECT_SIGNATURE_VERSION,
    HASH_COLUMNS,
    EffectSignature,
    ResolvedEffects,
    _STATS_VALUES,
    effect_catalog,
)

ERROR = "error"
WARNING = "warning"

#: rule id -> (default severity, one-line summary, rationale) — feeds
#: ``docs/dataflow.md`` and the ``repro dataflow`` JSON schema
DATAFLOW_RULES = {
    "undefined-read": (
        ERROR,
        "every field a step reads must be produced earlier or arrive with the input",
        "a read of a never-produced field silently sees the accessor default "
        "mid-corpus — filters drop everything, selectors sort on nothing",
    ),
    "order-hazard": (
        ERROR,
        "consumers must run after their producers, and nothing may mutate a "
        "field a deduplicator already hashed",
        "the same ops in a different order are a different program; these "
        "hazards reorder silently instead of failing",
    ),
    "dead-write": (
        WARNING,
        "internal-namespace writes must be read before export strips them, "
        "and no write may shadow an unread earlier write",
        "dead writes are paid for on every row of the corpus and usually "
        "indicate a step is missing or misordered",
    ),
    "fusion-unsafe": (
        ERROR,
        "with op_fusion on, no non-fusible filter may consume stats produced "
        "by a fusible member of its own group",
        "fusion moves fused filters after the non-fusible rest of the group, "
        "so the consumer would run before its producer",
    ),
    "stream-unsafe": (
        ERROR,
        "streaming recipes may only use streamable op categories and "
        "standard-column dedup signatures",
        "the planner discovers these at run time, after rows have flowed; "
        "the checker proves them before the job is accepted",
    ),
}

#: op categories the streaming planner accepts (mirrors ``plan_segments``)
_STREAMABLE_CATEGORIES = frozenset({"mapper", "filter", "deduplicator", "selector"})

#: fields every formatter provides alongside the text payload
_FORMATTER_FIELDS = (Fields.suffix, Fields.source)


@dataclass(frozen=True)
class DataflowFinding:
    """One dataflow rule firing at one recipe step (1-based index)."""

    rule: str
    severity: str
    index: int
    op: str
    field: str
    message: str

    def __str__(self) -> str:
        return f"step {self.index} ({self.op}): [{self.rule}] {self.message}"

    def as_dict(self) -> dict:
        """JSON-ready representation (the ``--json`` reporter row)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "step": self.index,
            "op": self.op,
            "field": self.field,
            "message": self.message,
        }


@dataclass
class DataflowResult:
    """Outcome of checking one recipe: findings plus suppression accounting."""

    findings: list[DataflowFinding] = field(default_factory=list)
    suppressed: list[DataflowFinding] = field(default_factory=list)
    ops_checked: int = 0
    recipe: str = ""

    @property
    def exit_code(self) -> int:
        """Process exit code: 1 on any unsuppressed finding, else 0."""
        return 1 if self.findings else 0

    def counts_by_severity(self) -> dict[str, int]:
        """Active finding counts per severity (zero-filled)."""
        counts = {ERROR: 0, WARNING: 0}
        for finding in self.findings:
            counts[finding.severity] = counts.get(finding.severity, 0) + 1
        return counts


def _is_internal(path: str) -> bool:
    """Internal namespaces are stripped at export and closed-world."""
    return (
        path.startswith(Fields.stats + ".")
        or path in HASH_COLUMNS
        or path.startswith(Fields.context)
    )


def _stats_universe(extra: Iterable[str] = ()) -> list[str]:
    paths = {f"{Fields.stats}.{value}" for value in _STATS_VALUES.values()}
    paths.update(extra)
    return sorted(paths)


@dataclass
class _LiveWrite:
    step: int
    op: str
    consumed: bool


def check_steps(
    steps: list,
    *,
    signatures: dict[str, EffectSignature] | None = None,
    text_keys: Iterable[str] = (),
    input_fields: Iterable[str] | None = None,
    op_fusion: bool = False,
    stream: bool = False,
    keep_stats_in_export: bool = False,
) -> list[DataflowFinding]:
    """Check a list of ``(op_name, params)`` steps; the low-level entry point.

    ``signatures`` defaults to the built-in catalog; tests extend it with
    :func:`~repro.tools.dataflow.effects.extract_effects_from_path` to check
    synthetic pipelines.  Ops without a signature are skipped (the schema
    validator already rejects unknown op names).
    """
    catalog = signatures if signatures is not None else effect_catalog()
    resolved: list[tuple[str, EffectSignature | None, ResolvedEffects | None]] = []
    for name, params in steps:
        signature = catalog.get(name)
        effects = signature.resolve(params or {}) if signature else None
        resolved.append((name, signature, effects))

    findings: list[DataflowFinding] = []

    # the lattice seed: text columns plus whatever the formatter/input provides
    known: dict[str, int] = {Fields.text: 0}
    for key in text_keys:
        if isinstance(key, str) and key:
            known[key] = 0
    for formatter_field in _FORMATTER_FIELDS:
        known[formatter_field] = 0
    closed_world = input_fields is not None
    declared = [f for f in (input_fields or []) if isinstance(f, str) and f]
    for declared_field in declared:
        known[declared_field] = 0

    # who writes each field, for order-hazard producer lookup
    future_writers: dict[str, list[int]] = {}
    for index, (_, _, effects) in enumerate(resolved, start=1):
        if effects is None:
            continue
        for path in effects.writes:
            future_writers.setdefault(path, []).append(index)

    live: dict[str, _LiveWrite] = {}
    hashed_by: dict[str, tuple[int, str]] = {}

    for index, (name, signature, effects) in enumerate(resolved, start=1):
        if signature is None or effects is None:
            continue
        self_produced = effects.reads & effects.writes

        for path in sorted(effects.reads):
            if path in known:
                if path in live:
                    live[path].consumed = True
                continue
            if path in self_produced:
                continue  # the op's own stats/hash stage feeds its predicate
            producer = next(
                (j for j in future_writers.get(path, ()) if j > index), None
            )
            if producer is not None:
                findings.append(DataflowFinding(
                    rule="order-hazard",
                    severity=ERROR,
                    index=index,
                    op=name,
                    field=path,
                    message=(
                        f"reads {path!r} which is only produced later, by "
                        f"step {producer} ({resolved[producer - 1][0]}); move "
                        f"the producer before this step"
                    ),
                ))
            elif _is_internal(path):
                candidates = _stats_universe(known) + sorted(HASH_COLUMNS)
                hint = suggestion_hint(path, candidates, "known fields")
                findings.append(DataflowFinding(
                    rule="undefined-read",
                    severity=ERROR,
                    index=index,
                    op=name,
                    field=path,
                    message=(
                        f"reads {path!r} but no earlier step produces it"
                        + (f"; {hint}" if hint else "")
                    ),
                ))
            elif closed_world:
                candidates = sorted(set(declared) | {
                    f for f in known if not _is_internal(f)
                })
                hint = suggestion_hint(path, candidates, "declared input fields")
                findings.append(DataflowFinding(
                    rule="undefined-read",
                    severity=ERROR,
                    index=index,
                    op=name,
                    field=path,
                    message=(
                        f"reads {path!r} which is neither in input_fields nor "
                        f"produced by an earlier step"
                        + (f"; {hint}" if hint else "")
                    ),
                ))
            # open-world user field: assumed to arrive with the input

        for path in sorted(effects.writes):
            if path in hashed_by and signature.category == "mapper":
                dedup_step, dedup_name = hashed_by[path]
                findings.append(DataflowFinding(
                    rule="order-hazard",
                    severity=WARNING,
                    index=index,
                    op=name,
                    field=path,
                    message=(
                        f"mutates {path!r} after step {dedup_step} "
                        f"({dedup_name}) already hashed it; rows deduplicated "
                        f"on the old text — move this mapper before the dedup"
                    ),
                ))
            previous = live.get(path)
            if (
                previous is not None
                and not previous.consumed
                and previous.step != index
                and path not in effects.reads
            ):
                findings.append(DataflowFinding(
                    rule="dead-write",
                    severity=WARNING,
                    index=previous.step,
                    op=previous.op,
                    field=path,
                    message=(
                        f"writes {path!r} which step {index} ({name}) "
                        f"overwrites without any step reading it in between"
                    ),
                ))
            live[path] = _LiveWrite(
                step=index, op=name, consumed=path in self_produced
            )
            known[path] = index

        for path in effects.removes:
            known.pop(path, None)
            live.pop(path, None)

        if signature.category == "deduplicator":
            for path in effects.reads:
                if not _is_internal(path):
                    hashed_by[path] = (index, name)

    # writes still live at export time
    for path, entry in sorted(live.items()):
        if entry.consumed or not _is_internal(path):
            continue
        if path.startswith(Fields.stats + ".") and keep_stats_in_export:
            continue
        findings.append(DataflowFinding(
            rule="dead-write",
            severity=WARNING,
            index=entry.step,
            op=entry.op,
            field=path,
            message=(
                f"writes {path!r} which no later step reads and export "
                f"strips (internal columns never reach the output"
                + (
                    "; set keep_stats_in_export to keep stats columns)"
                    if path.startswith(Fields.stats + ".")
                    else ")"
                )
            ),
        ))

    if op_fusion:
        findings.extend(_fusion_findings(resolved))
    if stream:
        findings.extend(_stream_findings(resolved))

    findings.sort(key=lambda f: (f.index, f.rule, f.field))
    return findings


def _fusion_findings(resolved: list) -> list[DataflowFinding]:
    """Mirror ``fuse_operators``: fused filters run *after* group leftovers."""
    findings: list[DataflowFinding] = []
    group: list[int] = []

    def flush() -> None:
        if len(group) < 2:
            group.clear()
            return
        contexts = {
            i: resolved[i - 1][2].context for i in group if resolved[i - 1][2]
        }
        fusible = {
            i
            for i in group
            if contexts.get(i)
            and any(
                contexts[i] & contexts.get(j, frozenset())
                for j in group
                if j != i
            )
        }
        if len(fusible) >= 2:
            produced = {}
            for i in sorted(fusible):
                for path in resolved[i - 1][2].writes:
                    produced.setdefault(path, i)
            for i in group:
                if i in fusible:
                    continue
                effects = resolved[i - 1][2]
                if effects is None:
                    continue
                for path in sorted(effects.reads - effects.writes):
                    if path in produced:
                        j = produced[path]
                        findings.append(DataflowFinding(
                            rule="fusion-unsafe",
                            severity=ERROR,
                            index=i,
                            op=resolved[i - 1][0],
                            field=path,
                            message=(
                                f"reads {path!r} produced by step {j} "
                                f"({resolved[j - 1][0]}), but op_fusion moves "
                                f"the fused filters after this one — disable "
                                f"op_fusion or share context between the two"
                            ),
                        ))
        group.clear()

    for index, (_, signature, _) in enumerate(resolved, start=1):
        if signature is not None and signature.category == "filter":
            group.append(index)
        else:
            flush()
    flush()
    return findings


def _stream_findings(resolved: list) -> list[DataflowFinding]:
    """Mirror the streaming planner's run-time rejections, statically."""
    findings: list[DataflowFinding] = []
    for index, (name, signature, effects) in enumerate(resolved, start=1):
        if signature is None:
            continue
        if signature.category not in _STREAMABLE_CATEGORIES:
            findings.append(DataflowFinding(
                rule="stream-unsafe",
                severity=ERROR,
                index=index,
                op=name,
                field="",
                message=(
                    f"category {signature.category!r} cannot run in streaming "
                    f"mode (only mapper/filter/deduplicator/selector can)"
                ),
            ))
        elif signature.category == "deduplicator" and effects is not None:
            if not (effects.writes & HASH_COLUMNS):
                outside = ", ".join(sorted(effects.writes)) or "no column"
                findings.append(DataflowFinding(
                    rule="stream-unsafe",
                    severity=ERROR,
                    index=index,
                    op=name,
                    field=next(iter(sorted(effects.writes)), ""),
                    message=(
                        f"stores its dedup signature in {outside}, outside "
                        f"the standard hash columns streaming knows to carry"
                    ),
                ))
    return findings


def _parse_ignore(entries: Iterable[str]) -> list[tuple[str, int | None]]:
    parsed = []
    for entry in entries:
        if not isinstance(entry, str):
            continue
        rule, _, step = entry.partition("@")
        parsed.append((rule.strip(), int(step) if step.strip().isdigit() else None))
    return parsed


def check_recipe(
    recipe,
    *,
    stream: bool | None = None,
    signatures: dict[str, EffectSignature] | None = None,
) -> DataflowResult:
    """Check one recipe (config object, payload dict, or YAML/JSON path).

    ``stream`` overrides the recipe's own flag — the executor passes the
    *planned* mode so a recipe coerced into streaming is checked as such.
    """
    from repro.core.config import load_recipe_payload
    from repro.ops import split_process_entry

    payload = load_recipe_payload(recipe)
    steps = []
    for entry in payload.get("process") or []:
        try:
            steps.append(split_process_entry(entry))
        except (ValueError, TypeError):
            continue  # schema validation owns malformed entries
    raw_text_keys = payload.get("text_keys")
    text_keys = raw_text_keys if isinstance(raw_text_keys, (list, tuple)) else []

    findings = check_steps(
        steps,
        signatures=signatures,
        text_keys=text_keys,
        input_fields=payload.get("input_fields"),
        op_fusion=bool(payload.get("op_fusion")),
        stream=bool(payload.get("stream")) if stream is None else stream,
        keep_stats_in_export=bool(payload.get("keep_stats_in_export")),
    )

    result = DataflowResult(
        ops_checked=len(steps),
        recipe=str(payload.get("project_name") or ""),
    )
    ignored = _parse_ignore(payload.get("dataflow_ignore") or [])
    for finding in findings:
        if any(
            rule == finding.rule and (step is None or step == finding.index)
            for rule, step in ignored
        ):
            result.suppressed.append(finding)
        else:
            result.findings.append(finding)
    return result


def dataflow_rule_ids() -> list[str]:
    """Every dataflow rule id, in declaration order."""
    return list(DATAFLOW_RULES)


__all__ = [
    "DATAFLOW_RULES",
    "DataflowFinding",
    "DataflowResult",
    "EFFECT_SIGNATURE_VERSION",
    "check_recipe",
    "check_steps",
    "dataflow_rule_ids",
]
