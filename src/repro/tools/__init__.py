"""Dedicated pluggable tools: quality classifiers, samplers, HPO and evaluation."""
