"""Reporters and the baseline mechanism for ``repro lint``.

The text reporter shares its ``found N violation(s)`` shape with
``repro validate-recipe`` through :mod:`repro.core.reporting`; the JSON
reporter emits a machine-readable document for CI annotation tooling.  A
*baseline* is a JSON snapshot of known violations: ``repro lint --baseline
known.json`` reports only findings absent from the snapshot, which lets a
new rule land with enforcement on while the backlog is burned down
incrementally (line numbers are deliberately not part of the match key, so
unrelated edits do not resurrect baselined findings).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.reporting import render_problems, severity_footer
from repro.tools.lint.framework import RULES, LintResult, Violation


def render_text(result: LintResult, verbose_suppressed: bool = False) -> str:
    """Human-readable lint report: one line per finding plus a summary."""
    counts = result.counts_by_severity()
    ok = (
        f"lint clean: {result.files_checked} file(s) checked against "
        f"{len(result.rule_ids)} rule(s)"
    )
    body = render_problems(result.violations, ok, noun="violation")
    trailer: list[str] = []
    if result.violations or result.suppressed:
        footer = severity_footer(
            counts["error"], counts["warning"], len(result.suppressed)
        )
        trailer.append(f"({footer} in {result.files_checked} file(s))")
    if result.suppressed and verbose_suppressed:
        trailer.extend(f"  ~ {violation}" for violation in result.suppressed)
    return "\n".join([body, *trailer])


def render_json(result: LintResult) -> str:
    """Machine-readable lint report (stable key order, sorted findings)."""
    payload = {
        "exit_code": result.exit_code,
        "files_checked": result.files_checked,
        "rules": result.rule_ids,
        "counts": result.counts_by_severity(),
        "violations": [violation.as_dict() for violation in result.violations],
        "suppressed": [violation.as_dict() for violation in result.suppressed],
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def render_rule_catalog() -> str:
    """``--list-rules`` output: id, severity and contract of every rule."""
    from repro.tools.lint import rules as _rules  # noqa: F401  (registers RULES)

    lines = []
    for rule in RULES.values():
        lines.append(f"{rule.id} [{rule.severity}]: {rule.summary}")
    return "\n".join(lines)


def _baseline_key(violation: Violation) -> list:
    """The identity of a finding for baseline matching (no line numbers).

    Paths are normalised to forward slashes so a baseline written on Windows
    matches the same findings on POSIX and vice versa.
    """
    return [
        violation.rule,
        violation.path.replace("\\", "/"),
        violation.op,
        violation.message,
    ]


def write_baseline(path: str | Path, result: LintResult) -> int:
    """Snapshot the current findings to ``path``; returns the count written.

    When the file already exists, entries of rules *not* covered by this run
    (``--rule``-filtered invocations) are preserved, so refreshing the
    baseline for one rule cannot silently drop another rule's backlog.
    """
    target = Path(path)
    entries = {tuple(_baseline_key(violation)) for violation in result.violations}
    if target.exists():
        covered = set(result.rule_ids)
        entries.update(
            entry for entry in load_baseline(target) if entry and entry[0] not in covered
        )
    ordered = sorted(list(entry) for entry in entries)
    target.write_text(
        json.dumps({"baseline": ordered}, indent=2) + "\n", encoding="utf-8"
    )
    return len(ordered)


def load_baseline(path: str | Path) -> set[tuple]:
    """Load a baseline snapshot into a set of match keys (paths normalised)."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    entries = set()
    for entry in payload.get("baseline", []):
        entry = list(entry)
        if len(entry) > 1 and isinstance(entry[1], str):
            entry[1] = entry[1].replace("\\", "/")
        entries.add(tuple(entry))
    return entries


def baseline_filter(baseline: set[tuple]):
    """A ``keep`` predicate for :func:`~.framework.lint_paths`: drop known findings."""

    def keep(violation: Violation) -> bool:
        return tuple(_baseline_key(violation)) not in baseline

    return keep


__all__ = [
    "baseline_filter",
    "load_baseline",
    "render_json",
    "render_rule_catalog",
    "render_text",
    "write_baseline",
]
