"""Reporters and the baseline mechanism for ``repro lint``.

The text reporter shares its ``found N violation(s)`` shape with
``repro validate-recipe`` through :mod:`repro.core.reporting`; the JSON
reporter emits a machine-readable document for CI annotation tooling.  A
*baseline* is a JSON snapshot of known violations: ``repro lint --baseline
known.json`` reports only findings absent from the snapshot, which lets a
new rule land with enforcement on while the backlog is burned down
incrementally (line numbers are deliberately not part of the match key, so
unrelated edits do not resurrect baselined findings).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.reporting import render_problems
from repro.tools.lint.framework import RULES, LintResult, Violation


def render_text(result: LintResult, verbose_suppressed: bool = False) -> str:
    """Human-readable lint report: one line per finding plus a summary."""
    counts = result.counts_by_severity()
    ok = (
        f"lint clean: {result.files_checked} file(s) checked against "
        f"{len(result.rule_ids)} rule(s)"
    )
    body = render_problems(result.violations, ok, noun="violation")
    trailer: list[str] = []
    if result.violations:
        trailer.append(
            f"({counts['error']} error(s), {counts['warning']} warning(s) in "
            f"{result.files_checked} file(s))"
        )
    if result.suppressed:
        trailer.append(f"{len(result.suppressed)} finding(s) suppressed by lint-ignore comments")
        if verbose_suppressed:
            trailer.extend(f"  ~ {violation}" for violation in result.suppressed)
    return "\n".join([body, *trailer])


def render_json(result: LintResult) -> str:
    """Machine-readable lint report (stable key order, sorted findings)."""
    payload = {
        "exit_code": result.exit_code,
        "files_checked": result.files_checked,
        "rules": result.rule_ids,
        "counts": result.counts_by_severity(),
        "violations": [violation.as_dict() for violation in result.violations],
        "suppressed": [violation.as_dict() for violation in result.suppressed],
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def render_rule_catalog() -> str:
    """``--list-rules`` output: id, severity and contract of every rule."""
    from repro.tools.lint import rules as _rules  # noqa: F401  (registers RULES)

    lines = []
    for rule in RULES.values():
        lines.append(f"{rule.id} [{rule.severity}]: {rule.summary}")
    return "\n".join(lines)


def _baseline_key(violation: Violation) -> list:
    """The identity of a finding for baseline matching (no line numbers)."""
    return [violation.rule, violation.path, violation.op, violation.message]


def write_baseline(path: str | Path, result: LintResult) -> int:
    """Snapshot the current findings to ``path``; returns the count written."""
    entries = sorted(_baseline_key(violation) for violation in result.violations)
    Path(path).write_text(
        json.dumps({"baseline": entries}, indent=2) + "\n", encoding="utf-8"
    )
    return len(entries)


def load_baseline(path: str | Path) -> set[tuple]:
    """Load a baseline snapshot into a set of match keys."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    return {tuple(entry) for entry in payload.get("baseline", [])}


def baseline_filter(baseline: set[tuple]):
    """A ``keep`` predicate for :func:`~.framework.lint_paths`: drop known findings."""

    def keep(violation: Violation) -> bool:
        return tuple(_baseline_key(violation)) not in baseline

    return keep


__all__ = [
    "baseline_filter",
    "load_baseline",
    "render_json",
    "render_rule_catalog",
    "render_text",
    "write_baseline",
]
