"""Structural rules: batched parity, picklability and registry hygiene.

The batched columnar engine, the per-row legacy path and the equivalence
suite (``tests/test_batch_equivalence.py``) assume every op implements *both*
sides of its category's interface; spawn-mode :class:`repro.parallel.
WorkerPool` assumes every op instance pickles; and recipe resolution assumes
one registered op per module whose name matches the file.  These rules make
those assumptions checkable without importing (or executing) anything.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.tools.lint.framework import (
    ERROR,
    WARNING,
    LintModule,
    LintRule,
    Violation,
    dotted_name,
    register_rule,
)

#: batched override -> the per-row counterpart the same class must define
_BATCHED_COUNTERPART = {
    "process_batched": "process",
    "compute_stats_batched": "compute_stats",
    "compute_hash_batched": "compute_hash",
}

#: per category: at least one of each method group must be implemented
_CATEGORY_REQUIRED: dict[str, tuple[tuple[str, ...], ...]] = {
    "mapper": (("process", "process_batched"),),
    "filter": (
        ("compute_stats", "compute_stats_batched"),
        ("process", "process_batched", "filter_batched"),
    ),
    "deduplicator": (("compute_hash", "compute_hash_batched"), ("process",)),
    "selector": (("process",),),
}

#: constructors whose result cannot cross a spawn-mode pickle boundary
_UNPICKLABLE_CALL_SUFFIXES = {
    "Lock": "a lock",
    "RLock": "a lock",
    "Condition": "a condition variable",
    "Event": "an event",
    "Semaphore": "a semaphore",
    "BoundedSemaphore": "a semaphore",
    "Thread": "a thread",
    "Pool": "a process pool",
    "ProcessPoolExecutor": "an executor",
    "ThreadPoolExecutor": "an executor",
}
_OPEN_CALLS = frozenset({"open", "io.open", "gzip.open", "bz2.open", "lzma.open"})


@register_rule
class BatchedParityRule(LintRule):
    """Batched overrides need their per-row counterparts, and vice versa."""

    id = "batched-parity"
    severity = ERROR
    summary = "ops overriding a *_batched method must implement the per-row path too"
    rationale = (
        "run(batched=False), the Analyzer and fused execution all call the "
        "per-row methods; an op with only a batched implementation works until "
        "the first per-row caller, and an op implementing neither side of its "
        "category's interface is silently abstract.  The equivalence suite "
        "asserts both paths agree — they must both exist."
    )

    def check(self, module: LintModule) -> Iterator[Violation]:
        for op in module.op_classes:
            if op.registered_name is None:
                continue  # abstract/helper base classes may be partial
            for batched, per_row in _BATCHED_COUNTERPART.items():
                if batched in op.methods and per_row not in op.methods:
                    yield self.violation(
                        module,
                        op.methods[batched],
                        f"{batched}() is overridden but {per_row}() is not; "
                        "the per-row path (run(batched=False), Analyzer, "
                        "fusion) would use the base-class fallback and "
                        "disagree with the batched path",
                        op=op.display_name,
                    )
            required = _CATEGORY_REQUIRED.get(op.category or "", ())
            for group in required:
                if not any(name in op.methods for name in group):
                    yield self.violation(
                        module,
                        op.node,
                        f"{op.category} implements none of "
                        f"{'/'.join(group)}(); the registry classifies it as "
                        f"a {op.category} but it cannot execute",
                        op=op.display_name,
                    )


@register_rule
class PicklabilityRule(LintRule):
    """No unpicklable state on op instances."""

    id = "picklability"
    severity = ERROR
    summary = "ops must not store locks, handles, generators or lambdas on self"
    rationale = (
        "spawn-mode WorkerPool pickles every op into each worker process; an "
        "instance attribute holding a lambda, a generator, an open file "
        "handle or a lock raises at dispatch time (or worse, forks dead "
        "state).  Keep such resources in module scope or create them lazily "
        "per call."
    )

    def check(self, module: LintModule) -> Iterator[Violation]:
        for op in module.op_classes:
            for assignment in op.self_assignments:
                label = self._unpicklable_label(assignment.value)
                if label is not None:
                    yield self.violation(
                        module,
                        assignment.lineno,
                        f"{assignment.method}() stores {label} in "
                        f"self.{assignment.attr}; op instances must pickle "
                        "for spawn-mode WorkerPool dispatch",
                        op=op.display_name,
                    )

    @staticmethod
    def _unpicklable_label(value: ast.AST) -> str | None:
        """A human label for an unpicklable value expression, else ``None``."""
        if isinstance(value, ast.Lambda):
            return "a lambda"
        if isinstance(value, ast.GeneratorExp):
            return "a generator"
        if isinstance(value, ast.Call):
            target = dotted_name(value.func)
            if target in _OPEN_CALLS:
                return "an open file handle"
            suffix = target.split(".")[-1]
            if suffix in _UNPICKLABLE_CALL_SUFFIXES:
                return _UNPICKLABLE_CALL_SUFFIXES[suffix]
        return None


@register_rule
class RegistryHygieneRule(LintRule):
    """One documented, correctly-named registered op per module."""

    id = "registry-hygiene"
    severity = WARNING
    summary = "op modules register exactly one op, named after the file, with docstrings"
    rationale = (
        "recipes resolve ops by registered name and humans resolve them by "
        "file name — the two must agree; zero or multiple registrations per "
        "module break the one-op-per-file convention the catalog, the docs "
        "and grep all rely on, and missing docstrings ship undocumented "
        "operators into the generated catalog."
    )

    def check(self, module: LintModule) -> Iterator[Violation]:
        registered = [op for op in module.op_classes if op.registered_name is not None]
        if module.is_op_module:
            if not registered:
                yield self.violation(
                    module,
                    1,
                    "op module registers no operator; every module in the "
                    "pool's category directories must register exactly one",
                )
            elif len(registered) > 1:
                for op in registered[1:]:
                    yield self.violation(
                        module,
                        op.node,
                        f"op module registers {len(registered)} operators; "
                        "split each into its own module",
                        op=op.display_name,
                    )
            for op in registered[:1]:
                if op.registered_name != module.module_stem:
                    yield self.violation(
                        module,
                        op.node,
                        f"registered name {op.registered_name!r} does not "
                        f"match the module name {module.module_stem!r}",
                        op=op.display_name,
                    )
            if module.docstring() is None:
                yield self.violation(
                    module, 1, "op module has no module docstring"
                )
        for op in module.op_classes:
            if op.registered_name is None:
                continue
            if ast.get_docstring(op.node) is None:
                yield self.violation(
                    module,
                    op.node,
                    "registered operator class has no docstring; the catalog "
                    "summary and schema docs render empty",
                    op=op.display_name,
                )
