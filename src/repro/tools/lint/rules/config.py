"""Config/schema rules: ``config()`` and ``PARAM_SPECS`` must tell the truth.

``OP.config()`` reflects every non-underscore instance attribute of a basic
type, and ``hash(parent_fp, op.name, op.config())`` is the *only* thing the
shard cache keys on.  These rules prove the two directions of that contract:
every constructor parameter reaches ``config()`` (a dropped parameter means
two differently-configured ops share a cache entry — cache poisoning), and
nothing that is not a parameter leaks into it (a derived attribute in
``config()`` breaks recipe round-tripping, because the emitted recipe gains a
key the constructor rejects).  ``PARAM_SPECS`` coverage and drift checks keep
the typed schema layer — validation errors, the generated catalog, the fluent
builders — in lockstep with the constructors they describe.
"""

from __future__ import annotations

from typing import Iterator

from repro.tools.lint.framework import (
    ERROR,
    WARNING,
    LintModule,
    LintRule,
    Violation,
    register_rule,
)

#: keys a PARAM_SPECS override entry may carry (mirrors repro.core.schema)
_KNOWN_SPEC_KEYS = frozenset({"types", "nullable", "min_value", "max_value", "choices", "doc"})

#: instance attributes assigned by the framework base classes, not by ops
_BASE_CLASS_ATTRS = frozenset({"text_key", "extra_params", "dataset_path", "text_keys"})


@register_rule
class ConfigCompletenessRule(LintRule):
    """Constructor parameters and ``config()`` must agree exactly."""

    id = "config-completeness"
    severity = ERROR
    summary = "every constructor parameter must surface in config(), and nothing else may"
    rationale = (
        "config() is the cache key: a parameter that never lands on self is "
        "invisible to fingerprints (two different configurations share cached "
        "shards), while a derived public attribute leaks into config() and "
        "round-tripped recipes gain keys the constructor rejects.  Store each "
        "parameter as self.<param> and prefix derived state with underscore."
    )

    def check(self, module: LintModule) -> Iterator[Violation]:
        for op in module.op_classes:
            if "__init__" not in op.methods:
                continue
            stored = {assignment.attr for assignment in op.init_assignments()}
            param_names = {param.name for param in op.own_params()}
            for param in op.own_params():
                if param.name not in stored:
                    yield self.violation(
                        module,
                        param.lineno,
                        f"constructor parameter {param.name!r} is never stored "
                        f"as self.{param.name}, so it cannot reach config() — "
                        "fingerprints and shard-cache keys will not reflect it",
                        op=op.display_name,
                    )
            for assignment in op.init_assignments():
                if assignment.attr.startswith("_"):
                    continue
                if assignment.attr in param_names or assignment.attr in _BASE_CLASS_ATTRS:
                    continue
                yield self.violation(
                    module,
                    assignment.lineno,
                    f"derived attribute self.{assignment.attr} is not a "
                    "constructor parameter but leaks into config() (and into "
                    "round-tripped recipes); rename it to "
                    f"self._{assignment.attr}",
                    op=op.display_name,
                )


@register_rule
class ParamSpecCoverageRule(LintRule):
    """Every constructor parameter needs a documented ``PARAM_SPECS`` entry."""

    id = "param-spec-coverage"
    severity = WARNING
    summary = "every constructor parameter must have a PARAM_SPECS entry with a doc"
    rationale = (
        "PARAM_SPECS feeds construction-time validation, the generated "
        "operator catalog and the fluent builders; an uncovered parameter "
        "ships without bounds, without documentation and without a typed row "
        "in docs/ops_catalog.md."
    )

    def check(self, module: LintModule) -> Iterator[Violation]:
        for op in module.op_classes:
            params = op.own_params()
            if not params:
                continue
            specs = op.param_specs if isinstance(op.param_specs, dict) else {}
            anchor = op.param_specs_node or op.node
            for param in params:
                spec = specs.get(param.name)
                if spec is None:
                    yield self.violation(
                        module,
                        param.lineno,
                        f"constructor parameter {param.name!r} has no "
                        "PARAM_SPECS entry; declare bounds/choices and a doc "
                        "so the schema layer can validate and document it",
                        op=op.display_name,
                    )
                elif isinstance(spec, dict) and not str(spec.get("doc", "")).strip():
                    yield self.violation(
                        module,
                        anchor,
                        f"PARAM_SPECS entry for {param.name!r} has no 'doc'; "
                        "the generated catalog renders an empty description",
                        op=op.display_name,
                    )


@register_rule
class SchemaDriftRule(LintRule):
    """``PARAM_SPECS`` must stay consistent with the constructor signature."""

    id = "schema-drift"
    severity = ERROR
    summary = "PARAM_SPECS names, bounds and choices must match the constructor"
    rationale = (
        "repro.core.schema derives the typed schema from the constructor "
        "signature and merges PARAM_SPECS on top; a stray key, a default "
        "outside its own declared bounds, or a default missing from choices "
        "means validation rejects the operator's own defaults (or silently "
        "validates the wrong range)."
    )

    def check(self, module: LintModule) -> Iterator[Violation]:
        for op in module.op_classes:
            if not isinstance(op.param_specs, dict):
                continue
            anchor = op.param_specs_node or op.node
            declared = {param.name for param in op.constructor_params}
            declared |= {"text_key", "batch_size"}
            params_by_name = {param.name: param for param in op.constructor_params}
            for key, spec in op.param_specs.items():
                if key not in declared:
                    yield self.violation(
                        module,
                        anchor,
                        f"PARAM_SPECS declares {key!r} but the constructor "
                        "accepts no such parameter (schema_for would raise at "
                        "import time)",
                        op=op.display_name,
                    )
                    continue
                if not isinstance(spec, dict):
                    yield self.violation(
                        module,
                        anchor,
                        f"PARAM_SPECS entry for {key!r} must be a dict of "
                        "overrides (types/bounds/choices/doc)",
                        op=op.display_name,
                    )
                    continue
                for spec_key in set(spec) - _KNOWN_SPEC_KEYS:
                    yield self.violation(
                        module,
                        anchor,
                        f"PARAM_SPECS entry for {key!r} has unknown override "
                        f"key {spec_key!r} (known: "
                        f"{', '.join(sorted(_KNOWN_SPEC_KEYS))})",
                        op=op.display_name,
                    )
                param = params_by_name.get(key)
                if param is None:
                    continue
                default = param.default_literal
                if default is None or param.default_is_unbounded_sentinel:
                    continue
                minimum = spec.get("min_value")
                maximum = spec.get("max_value")
                if isinstance(default, (int, float)) and not isinstance(default, bool):
                    if isinstance(minimum, (int, float)) and default < minimum:
                        yield self.violation(
                            module,
                            param.lineno,
                            f"default {default!r} of {key!r} is below its own "
                            f"declared min_value {minimum!r}",
                            op=op.display_name,
                        )
                    if isinstance(maximum, (int, float)) and default > maximum:
                        yield self.violation(
                            module,
                            param.lineno,
                            f"default {default!r} of {key!r} is above its own "
                            f"declared max_value {maximum!r}",
                            op=op.display_name,
                        )
                choices = spec.get("choices")
                if isinstance(choices, (list, tuple)) and not isinstance(default, (list, tuple)):
                    if default not in choices:
                        yield self.violation(
                            module,
                            param.lineno,
                            f"default {default!r} of {key!r} is not among its "
                            f"declared choices {list(choices)!r}",
                            op=op.display_name,
                        )
