"""The built-in rule suite; importing this package registers every rule.

Rules live in four modules by theme — :mod:`purity` (the data path is a pure
function of config), :mod:`config` (``config()``/``PARAM_SPECS`` honesty),
:mod:`structure` (batched parity, picklability, registry hygiene) and
:mod:`hygiene` (exceptions must reach the error policy).  Adding a rule means
adding a :class:`repro.tools.lint.framework.LintRule` subclass decorated with
``@register_rule`` to one of them (or a new module imported here); see
``docs/linting.md``.
"""

from repro.tools.lint.rules import config, hygiene, purity, structure  # noqa: F401  (registration side effects)

from repro.tools.lint.framework import RULES


def all_rule_ids() -> list[str]:
    """Every registered rule id, in registration order."""
    return list(RULES)


__all__ = ["all_rule_ids", "config", "hygiene", "purity", "structure"]
