"""Purity rules: the data path must be a pure function of (self, input).

Shard-cache entries are keyed on ``hash(parent_fp, op.name, op.config())`` —
nothing else.  Any behaviour of ``process*`` / ``compute_stats*`` /
``compute_hash*`` that depends on the wall clock, an unseeded RNG, the
environment, files, the network, or mutable global state makes two runs with
identical fingerprints produce different rows, which silently poisons the
cache, breaks byte-identical streaming exports, and desynchronises
:class:`repro.parallel.WorkerPool` workers from the parent process.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.tools.lint.framework import (
    ERROR,
    LintModule,
    LintRule,
    OpClassInfo,
    Violation,
    dotted_name,
    register_rule,
)

#: wall-clock reads (dotted suffixes matched against call targets)
_TIME_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
    }
)

#: module-level random functions that consume the *global* (unseeded) RNG
_GLOBAL_RNG_FUNCS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "randbytes",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "normalvariate",
        "expovariate",
        "betavariate",
        "triangular",
        "getrandbits",
    }
)

#: attribute-call names that read or write files or URLs (Path / gzip / urllib)
_IO_METHOD_NAMES = frozenset(
    {"open", "urlopen", "urlretrieve", "read_text", "write_text", "read_bytes", "write_bytes"}
)
_IO_MODULE_PREFIXES = ("requests.", "socket.", "subprocess.", "urllib.", "http.", "shutil.")
_OS_FILE_CALLS = frozenset(
    {"os.remove", "os.unlink", "os.rename", "os.replace", "os.makedirs", "os.mkdir", "os.rmdir"}
)


def _is_io_call(target: str) -> bool:
    """True when a dotted call target performs file/network/process I/O."""
    if not target:
        return False
    if target == "open" or target in _OS_FILE_CALLS:
        return True
    if target.startswith(_IO_MODULE_PREFIXES):
        return True
    return "." in target and target.split(".")[-1] in _IO_METHOD_NAMES


def _process_path_calls(op: OpClassInfo) -> Iterator[tuple[ast.Call, str, str]]:
    """Every call in a data-path method as ``(node, dotted_target, method)``."""
    for method in op.process_methods():
        for node in ast.walk(method):
            if isinstance(node, ast.Call):
                yield node, dotted_name(node.func), method.name


class _PurityRule(LintRule):
    """Shared iteration helper for the per-hazard purity rules."""

    severity = ERROR

    def check_op(self, module: LintModule, op: OpClassInfo) -> Iterator[Violation]:
        raise NotImplementedError

    def check(self, module: LintModule) -> Iterator[Violation]:
        for op in module.op_classes:
            yield from self.check_op(module, op)


@register_rule
class PurityTimeRule(_PurityRule):
    """No wall-clock reads inside the data path."""

    id = "purity-time"
    summary = "process paths must not read the wall clock"
    rationale = (
        "time.time()/datetime.now() make op output depend on when it runs, so "
        "a cached shard and a recomputed shard diverge under one fingerprint."
    )

    def check_op(self, module: LintModule, op: OpClassInfo) -> Iterator[Violation]:
        for node, target, method in _process_path_calls(op):
            tail = ".".join(target.split(".")[-2:])
            if tail in _TIME_CALLS:
                yield self.violation(
                    module,
                    node,
                    f"{method}() reads the wall clock via {target}(); op output "
                    "must be reproducible from config() alone",
                    op=op.display_name,
                )


@register_rule
class PurityRandomRule(_PurityRule):
    """Randomness in the data path must come from a seeded generator."""

    id = "purity-random"
    summary = "process paths must not draw from unseeded RNGs"
    rationale = (
        "the global random module (and unseeded Random()/numpy RNGs) is not a "
        "function of config(), so fingerprints — and therefore shard-cache "
        "keys — lie about what the op produced; thread an explicit seed "
        "through the constructor instead."
    )

    def check_op(self, module: LintModule, op: OpClassInfo) -> Iterator[Violation]:
        for node, target, method in _process_path_calls(op):
            parts = target.split(".")
            if len(parts) == 2 and parts[0] == "random" and parts[1] in _GLOBAL_RNG_FUNCS:
                yield self.violation(
                    module,
                    node,
                    f"{method}() draws from the global RNG via {target}(); use "
                    "random.Random(self.seed) with a seed stored in config()",
                    op=op.display_name,
                )
            elif parts[-1] == "Random" and not node.args and not node.keywords:
                yield self.violation(
                    module,
                    node,
                    f"{method}() constructs an unseeded random.Random(); pass a "
                    "seed that is part of config()",
                    op=op.display_name,
                )
            elif ".".join(parts[:-1]).endswith(("numpy.random", "np.random")):
                yield self.violation(
                    module,
                    node,
                    f"{method}() uses {target}(); numpy global RNG state is not "
                    "part of config() — use a seeded Generator instead",
                    op=op.display_name,
                )


@register_rule
class PurityEnvRule(_PurityRule):
    """No environment reads inside the data path."""

    id = "purity-env"
    summary = "process paths must not read os.environ"
    rationale = (
        "environment variables differ between hosts and WorkerPool spawn "
        "modes; behaviour they control belongs in constructor parameters "
        "where it reaches config() and the cache key."
    )

    def check_op(self, module: LintModule, op: OpClassInfo) -> Iterator[Violation]:
        for method in op.process_methods():
            for node in ast.walk(method):
                target = dotted_name(node) if isinstance(node, ast.Attribute) else ""
                if target == "os.environ":
                    yield self.violation(
                        module,
                        node,
                        f"{method.name}() reads os.environ; promote the setting "
                        "to a constructor parameter so it reaches config()",
                        op=op.display_name,
                    )
                elif isinstance(node, ast.Call) and dotted_name(node.func) == "os.getenv":
                    yield self.violation(
                        module,
                        node,
                        f"{method.name}() calls os.getenv(); promote the setting "
                        "to a constructor parameter so it reaches config()",
                        op=op.display_name,
                    )


@register_rule
class PurityIoRule(_PurityRule):
    """No file or network I/O inside the data path."""

    id = "purity-io"
    summary = "process paths must not perform file or network I/O"
    rationale = (
        "reading files or the network inside the per-sample path makes output "
        "depend on external state invisible to the fingerprint, and blocks "
        "the batched/pooled executors on I/O they cannot schedule; load "
        "resources in __init__ or module scope instead."
    )

    def check_op(self, module: LintModule, op: OpClassInfo) -> Iterator[Violation]:
        for node, target, method in _process_path_calls(op):
            if _is_io_call(target):
                yield self.violation(
                    module,
                    node,
                    f"{method}() performs I/O via {target}(); process paths "
                    "must not touch files or the network",
                    op=op.display_name,
                )


@register_rule
class PurityGlobalRule(_PurityRule):
    """No global or instance state mutation inside the data path."""

    id = "purity-global"
    summary = "process paths must not mutate global, class or instance state"
    rationale = (
        "state written during processing leaks across samples and shards, "
        "differs between worker processes, and survives into later ops — the "
        "shard cache and the two-pass streaming engine both assume an op's "
        "behaviour is frozen at construction time."
    )

    def check_op(self, module: LintModule, op: OpClassInfo) -> Iterator[Violation]:
        process_names = {method.name for method in op.process_methods()}
        for method in op.process_methods():
            for node in ast.walk(method):
                if isinstance(node, ast.Global):
                    yield self.violation(
                        module,
                        node,
                        f"{method.name}() declares `global {', '.join(node.names)}`; "
                        "module state mutated per sample is invisible to the "
                        "fingerprint and races across workers",
                        op=op.display_name,
                    )
        for assignment in op.self_assignments:
            if assignment.method in process_names:
                yield self.violation(
                    module,
                    assignment.lineno,
                    f"{assignment.method}() assigns self.{assignment.attr}; "
                    "operators must be stateless after construction (shard "
                    "caching and pool dispatch assume frozen op state)",
                    op=op.display_name,
                )
        # mutation of class attributes (ClassName.x = ... / type(self).x = ...)
        for method in op.process_methods():
            for node in ast.walk(method):
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                    for target in targets:
                        if not isinstance(target, ast.Attribute):
                            continue
                        base = dotted_name(target.value)
                        is_type_self = (
                            isinstance(target.value, ast.Call)
                            and dotted_name(target.value.func) == "type"
                        )
                        if base == op.name or base == "self.__class__" or is_type_self:
                            yield self.violation(
                                module,
                                target,
                                f"{method.name}() mutates class attribute "
                                f"{target.attr}; shared class state written per "
                                "sample races across workers and shards",
                                op=op.display_name,
                            )
