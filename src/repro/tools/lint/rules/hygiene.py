"""Exception-hygiene rule: the data path must not swallow failures silently.

The fault-tolerance layer (:mod:`repro.core.faults`) owns every decision
about a failing row — retry it, drop it, quarantine it, abort the run — and
it can only decide about exceptions it *sees*.  An operator that catches
``Exception`` and silently continues hides poison rows from the error policy:
the row neither lands in the quarantine export nor aborts a ``raise``-policy
run, and the faults section of the run report undercounts.  A bare
``except:`` is worse still, because it also eats ``KeyboardInterrupt`` and
``SystemExit`` — including the injected worker-death faults the chaos suite
relies on.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.tools.lint.framework import (
    ERROR,
    LintModule,
    LintRule,
    OpClassInfo,
    Violation,
    register_rule,
)

#: handler types that catch (nearly) everything when written textually
_BROAD_EXCEPTION_NAMES = frozenset({"Exception", "BaseException"})


def _handler_type_names(handler: ast.ExceptHandler) -> list[str]:
    """The textual exception names a handler catches (empty for bare except)."""
    node = handler.type
    if node is None:
        return []
    nodes = node.elts if isinstance(node, ast.Tuple) else [node]
    names = []
    for entry in nodes:
        if isinstance(entry, ast.Name):
            names.append(entry.id)
        elif isinstance(entry, ast.Attribute):
            names.append(entry.attr)
    return names


def _swallows(handler: ast.ExceptHandler) -> bool:
    """True when the handler body does nothing with the exception.

    ``pass``, a bare ``...`` expression and ``continue`` all drop the error
    on the floor; anything else (re-raise, fallback value, logging) is a
    deliberate decision the rule leaves alone.
    """
    for statement in handler.body:
        if isinstance(statement, (ast.Pass, ast.Continue)):
            continue
        if isinstance(statement, ast.Expr) and isinstance(statement.value, ast.Constant):
            continue  # docstring or `...`
        return False
    return True


@register_rule
class ExceptionHygieneRule(LintRule):
    """Process paths must not hide exceptions from the error policy."""

    id = "exception-hygiene"
    severity = ERROR
    summary = "process paths must not swallow exceptions"
    rationale = (
        "the error policy (retry / skip / quarantine / raise) can only act on "
        "exceptions that escape the op; a bare `except:` or a broad handler "
        "that just passes hides poison rows from quarantine accounting and "
        "breaks the run report's faults section."
    )

    def check(self, module: LintModule) -> Iterator[Violation]:
        for op in module.op_classes:
            yield from self._check_op(module, op)

    def _check_op(self, module: LintModule, op: OpClassInfo) -> Iterator[Violation]:
        for method in op.process_methods():
            for node in ast.walk(method):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                names = _handler_type_names(node)
                if node.type is None:
                    yield self.violation(
                        module,
                        node,
                        f"{method.name}() uses a bare `except:`; it eats "
                        "SystemExit/KeyboardInterrupt and hides failures from "
                        "the error policy — catch the specific exception",
                        op=op.display_name,
                    )
                elif any(name in _BROAD_EXCEPTION_NAMES for name in names) and _swallows(
                    node
                ):
                    yield self.violation(
                        module,
                        node,
                        f"{method.name}() catches "
                        f"{' / '.join(names)} and silently continues; failing "
                        "rows never reach retry/quarantine — let the error "
                        "policy decide, or handle a specific exception",
                        op=op.display_name,
                    )
