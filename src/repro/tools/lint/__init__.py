"""``repro.tools.lint``: the static contract checker of the operator ecosystem.

An AST-based rule engine that proves — without importing or executing a
single operator — the contracts the execution engine silently relies on:
purity of the data path, ``config()``/``PARAM_SPECS`` honesty, batched/
per-row parity, picklability and registry hygiene.  Run it as ``repro lint``
(wired into ``make check``), or programmatically::

    from repro.tools.lint import lint_paths
    result = lint_paths()            # the built-in op pool
    assert not result.violations

Per-line suppression: append ``# repro: lint-ignore[rule-id]`` (or a bare
``# repro: lint-ignore`` for every rule) to the offending line.  The rule
catalog with rationale lives in ``docs/linting.md``.
"""

from repro.tools.lint.framework import (
    ERROR,
    RULES,
    WARNING,
    LintModule,
    LintResult,
    LintRule,
    Violation,
    default_lint_paths,
    lint_paths,
    register_rule,
    resolve_rules,
)
from repro.tools.lint.reporters import (
    baseline_filter,
    load_baseline,
    render_json,
    render_rule_catalog,
    render_text,
    write_baseline,
)

__all__ = [
    "ERROR",
    "RULES",
    "WARNING",
    "LintModule",
    "LintResult",
    "LintRule",
    "Violation",
    "baseline_filter",
    "default_lint_paths",
    "lint_paths",
    "load_baseline",
    "register_rule",
    "render_json",
    "render_rule_catalog",
    "render_text",
    "resolve_rules",
    "write_baseline",
]
