"""Core of ``repro lint``: rule framework, module model and the lint driver.

The engine's correctness rests on contracts no test executes directly: every
operator is a pure function of its ``config()`` (fingerprint-keyed shard
caching), every constructor parameter surfaces in ``config()`` and
``PARAM_SPECS`` (honest cache keys, typed schemas), and every op instance is
picklable (spawn-mode :class:`repro.parallel.WorkerPool`).  This module
provides the machinery to *prove* those contracts statically, from the AST
alone — no operator is imported, so even a module that would crash on import
can be linted.

Pieces:

* :class:`Violation` — one finding (rule id, severity, file, line, message);
* :class:`LintRule` + :func:`register_rule` — the rule registry.  A rule
  declares an ``id``, ``severity``, one-line ``summary`` and a ``rationale``
  (both feed ``docs/linting.md``) and implements ``check(module)``;
* :class:`LintModule` / :class:`OpClassInfo` — the parsed view rules consume:
  source, AST, per-line suppressions, and every operator class with its
  registration name, category, methods, constructor parameters and
  ``PARAM_SPECS`` literal;
* :func:`lint_paths` — the driver: walk files, parse, run rules, split
  findings into active vs suppressed (``# repro: lint-ignore[rule-id]``).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.core.registry import unknown_name_message
from repro.core.reporting import format_location

#: severity vocabulary, in decreasing order of gravity
ERROR = "error"
WARNING = "warning"
SEVERITIES = (ERROR, WARNING)

#: operator base-class names recognised statically, mapped to their category
CATEGORY_OF_BASE = {
    "Mapper": "mapper",
    "Filter": "filter",
    "Deduplicator": "deduplicator",
    "Selector": "selector",
    "OP": "op",
}

#: directories whose modules are expected to register exactly one operator
OP_MODULE_DIRS = frozenset(CATEGORY_OF_BASE[name] + "s" for name in CATEGORY_OF_BASE if name != "OP")

#: constructor parameters every OP accepts (mirrors ``schema.COMMON_PARAMS``);
#: rules about per-op parameters skip these
COMMON_CTOR_PARAMS = frozenset({"text_key", "batch_size"})

#: method-name prefixes of the data-path ("process paths"): these run once per
#: sample/batch and must be pure functions of (self, input)
PROCESS_METHOD_PREFIXES = ("process", "compute_stats", "compute_hash", "filter_batched")

#: suppression comment: ``# repro: lint-ignore`` (all rules) or
#: ``# repro: lint-ignore[rule-a, rule-b]`` on the offending line
_SUPPRESSION_PATTERN = re.compile(
    r"#\s*repro:\s*lint-ignore(?:\[(?P<rules>[^\]]*)\])?"
)


@dataclass(frozen=True)
class Violation:
    """One finding: which rule fired, where, and what is wrong."""

    rule: str
    severity: str
    path: str
    line: int
    message: str
    op: str = ""

    def __str__(self) -> str:
        where = format_location(self.path, self.line)
        subject = f" ({self.op})" if self.op else ""
        return f"{where}: [{self.rule}] {self.message}{subject}"

    def as_dict(self) -> dict:
        """JSON-ready representation (the ``--json`` reporter row)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "op": self.op,
            "message": self.message,
        }


class LintRule:
    """Base class of every lint rule; subclasses register via :func:`register_rule`.

    A rule is a singleton: stateless across modules, instantiated once at
    registration.  ``check`` yields :class:`Violation` objects (use the
    :meth:`violation` helper so paths/lines/severities stay consistent).
    """

    #: stable kebab-case identifier — the name used by ``--rule`` filters and
    #: ``lint-ignore[...]`` suppressions; never recycle an id
    id = ""
    severity = ERROR
    #: one-line statement of the contract the rule enforces
    summary = ""
    #: why violating the contract corrupts the engine (feeds docs/linting.md)
    rationale = ""

    def check(self, module: "LintModule") -> Iterator[Violation]:
        """Yield every violation of this rule found in ``module``."""
        raise NotImplementedError

    def violation(
        self,
        module: "LintModule",
        node: ast.AST | int,
        message: str,
        op: str = "",
    ) -> Violation:
        """Build a :class:`Violation` anchored at ``node`` (or a line number)."""
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        return Violation(
            rule=self.id,
            severity=self.severity,
            path=module.path,
            line=line,
            message=message,
            op=op,
        )


#: the global rule registry: rule id -> rule singleton, in registration order
RULES: dict[str, LintRule] = {}


def register_rule(cls: type) -> type:
    """Class decorator adding a rule singleton to :data:`RULES`."""
    rule = cls()
    if not rule.id or not rule.summary:
        raise ValueError(f"lint rule {cls.__name__} must declare an id and a summary")
    if rule.id in RULES:
        raise ValueError(f"lint rule id {rule.id!r} registered twice")
    if rule.severity not in SEVERITIES:
        raise ValueError(f"lint rule {rule.id!r} has unknown severity {rule.severity!r}")
    RULES[rule.id] = rule
    return cls


def resolve_rules(ids: Iterable[str] | None = None) -> list[LintRule]:
    """The rules to run: all of them, or the subset named by ``ids``.

    Unknown ids raise ``ValueError`` with "did you mean" suggestions so a
    typo'd ``--rule`` filter cannot silently run nothing.
    """
    if ids is None:
        return list(RULES.values())
    rules = []
    for rule_id in ids:
        if rule_id not in RULES:
            raise ValueError(unknown_name_message("lint rule", rule_id, RULES))
        rules.append(RULES[rule_id])
    return rules


def dotted_name(node: ast.AST) -> str:
    """``a.b.c`` for a Name/Attribute chain, ``""`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def literal_or_none(node: ast.AST | None):
    """``ast.literal_eval`` that returns ``None`` instead of raising."""
    if node is None:
        return None
    try:
        return ast.literal_eval(node)
    except (ValueError, SyntaxError):
        return None


@dataclass
class ConstructorParam:
    """One ``__init__`` parameter as declared in the source."""

    name: str
    lineno: int
    default: ast.AST | None = None
    annotation: str = ""

    @property
    def default_literal(self):
        """The default as a Python literal, or ``None`` when not a literal."""
        return literal_or_none(self.default)

    @property
    def default_is_unbounded_sentinel(self) -> bool:
        """True for ``sys.maxsize``-style sentinels (unbounded range ends)."""
        names = {dotted_name(node) for node in ast.walk(self.default)} if self.default else set()
        return any(name in ("sys.maxsize", "sys.float_info.max", "sys.float_info") for name in names)


@dataclass
class SelfAssignment:
    """One ``self.<attr> = value`` assignment and where it happens."""

    attr: str
    value: ast.AST
    lineno: int
    method: str


@dataclass
class OpClassInfo:
    """Statically-extracted view of one operator class definition."""

    node: ast.ClassDef
    registered_name: str | None  #: argument of @OPERATORS.register_module(...)
    category: str | None  #: mapper/filter/deduplicator/selector/op, from bases
    methods: dict[str, ast.FunctionDef] = field(default_factory=dict)
    constructor_params: list[ConstructorParam] = field(default_factory=list)
    self_assignments: list[SelfAssignment] = field(default_factory=list)
    param_specs: dict | None = None  #: parsed PARAM_SPECS literal (None: absent)
    param_specs_node: ast.AST | None = None

    @property
    def name(self) -> str:
        """The class name as written in the source."""
        return self.node.name

    @property
    def display_name(self) -> str:
        """Registered op name when known, else the class name."""
        return self.registered_name or self.name

    def own_params(self) -> list[ConstructorParam]:
        """Constructor parameters excluding the common execution knobs."""
        return [p for p in self.constructor_params if p.name not in COMMON_CTOR_PARAMS]

    def init_assignments(self) -> list[SelfAssignment]:
        """``self.<attr> = ...`` assignments made inside ``__init__``."""
        return [a for a in self.self_assignments if a.method == "__init__"]

    def process_methods(self) -> Iterator[ast.FunctionDef]:
        """The data-path methods whose purity the engine depends on."""
        for name, method in self.methods.items():
            if name.startswith(PROCESS_METHOD_PREFIXES):
                yield method


def _is_register_decorator(decorator: ast.AST) -> str | None:
    """The registered name when ``decorator`` is ``@X.register_module(...)``.

    Returns the string argument, the empty string for a bare/derived-name
    registration, or ``None`` when the decorator is something else entirely.
    """
    if not isinstance(decorator, ast.Call):
        return None
    if dotted_name(decorator.func).split(".")[-1] != "register_module":
        return None
    if decorator.args and isinstance(decorator.args[0], ast.Constant):
        value = decorator.args[0].value
        return value if isinstance(value, str) else ""
    return ""


def _extract_op_class(node: ast.ClassDef) -> OpClassInfo | None:
    """Build the :class:`OpClassInfo` of a class, or ``None`` for non-ops.

    A class counts as an operator when it is decorated with
    ``register_module`` or inherits (textually) from a known op base class.
    """
    registered = None
    for decorator in node.decorator_list:
        name = _is_register_decorator(decorator)
        if name is not None:
            registered = name or None
            break
    category = None
    for base in node.bases:
        base_name = dotted_name(base).split(".")[-1]
        if base_name in CATEGORY_OF_BASE:
            category = CATEGORY_OF_BASE[base_name]
            break
    if registered is None and category is None:
        return None

    info = OpClassInfo(node=node, registered_name=registered, category=category)
    for child in node.body:
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.methods[child.name] = child
        elif isinstance(child, ast.Assign):
            for target in child.targets:
                if isinstance(target, ast.Name) and target.id == "PARAM_SPECS":
                    info.param_specs = literal_or_none(child.value)
                    info.param_specs_node = child

    init = info.methods.get("__init__")
    if init is not None:
        args = init.args
        positional = args.args[1:]  # drop self
        defaults = args.defaults
        offset = len(positional) - len(defaults)
        for index, arg in enumerate(positional):
            default = defaults[index - offset] if index >= offset else None
            info.constructor_params.append(
                ConstructorParam(
                    name=arg.arg,
                    lineno=arg.lineno,
                    default=default,
                    annotation=ast.unparse(arg.annotation) if arg.annotation else "",
                )
            )
        for index, arg in enumerate(args.kwonlyargs):
            info.constructor_params.append(
                ConstructorParam(
                    name=arg.arg,
                    lineno=arg.lineno,
                    default=args.kw_defaults[index],
                    annotation=ast.unparse(arg.annotation) if arg.annotation else "",
                )
            )
    for method in info.methods.values():
        for sub in ast.walk(method):
            if isinstance(sub, ast.Assign):
                targets = sub.targets
            elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
                targets = [sub.target]
            else:
                continue
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    info.self_assignments.append(
                        SelfAssignment(
                            attr=target.attr,
                            value=getattr(sub, "value", None) or ast.Constant(value=None),
                            lineno=target.lineno,
                            method=method.name,
                        )
                    )
    return info


def _parse_suppressions(source: str) -> dict[int, set[str]]:
    """Per-line suppressed rule ids; ``{"*"}`` suppresses every rule."""
    suppressions: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESSION_PATTERN.search(line)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            suppressions[lineno] = {"*"}
        else:
            suppressions[lineno] = {rule.strip() for rule in rules.split(",") if rule.strip()}
    return suppressions


@dataclass
class LintModule:
    """One parsed Python file, as seen by the rules."""

    path: str
    source: str
    tree: ast.Module
    op_classes: list[OpClassInfo]
    suppressions: dict[int, set[str]]

    @classmethod
    def parse(cls, path: Path, root: Path | None = None) -> "LintModule":
        """Parse ``path`` into a lintable module (raises ``SyntaxError``)."""
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        display = str(path.relative_to(root)) if root and path.is_relative_to(root) else str(path)
        op_classes = [
            info
            for node in tree.body
            if isinstance(node, ast.ClassDef)
            for info in [_extract_op_class(node)]
            if info is not None
        ]
        return cls(
            path=display,
            source=source,
            tree=tree,
            op_classes=op_classes,
            suppressions=_parse_suppressions(source),
        )

    @property
    def module_stem(self) -> str:
        """File name without the ``.py`` suffix (the expected op name)."""
        return Path(self.path).stem

    @property
    def parent_dir(self) -> str:
        """Name of the directory directly containing the module."""
        return Path(self.path).parent.name

    @property
    def is_op_module(self) -> bool:
        """True for modules that live in a category directory of the op pool."""
        return self.parent_dir in OP_MODULE_DIRS and self.module_stem != "__init__"

    def docstring(self) -> str | None:
        """The module docstring, if any."""
        return ast.get_docstring(self.tree)

    def is_suppressed(self, violation: Violation) -> bool:
        """True when the violation's line carries a matching lint-ignore."""
        rules = self.suppressions.get(violation.line)
        return bool(rules) and ("*" in rules or violation.rule in rules)


@dataclass
class LintResult:
    """Outcome of one lint run: active findings plus suppression accounting."""

    violations: list[Violation] = field(default_factory=list)
    suppressed: list[Violation] = field(default_factory=list)
    files_checked: int = 0
    rule_ids: list[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        """Process exit code: 1 on any unsuppressed violation, else 0."""
        return 1 if self.violations else 0

    def counts_by_severity(self) -> dict[str, int]:
        """Active violation counts per severity (zero-filled)."""
        counts = {severity: 0 for severity in SEVERITIES}
        for violation in self.violations:
            counts[violation.severity] = counts.get(violation.severity, 0) + 1
        return counts


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under the given files/directories, sorted."""
    for path in paths:
        if path.is_dir():
            yield from sorted(p for p in path.rglob("*.py") if "__pycache__" not in p.parts)
        elif path.suffix == ".py":
            yield path


def default_lint_paths() -> list[Path]:
    """What ``repro lint`` checks by default: the op pool + the service layer.

    The service package ships no operators today, but it *hosts* recipe
    execution — scanning it keeps the gate in place for any op class that
    ever lands there (the picklability/purity contracts apply wherever an op
    is defined), and surfaces syntax errors in the serving code path.
    """
    import repro.ops
    import repro.service

    return [
        Path(repro.ops.__file__).parent,
        Path(repro.service.__file__).parent,
    ]


def lint_paths(
    paths: Iterable[str | Path] | None = None,
    rule_ids: Iterable[str] | None = None,
    root: Path | None = None,
    keep: Callable[[Violation], bool] | None = None,
    severities: Iterable[str] | None = None,
) -> LintResult:
    """Run the (selected) rules over every Python file under ``paths``.

    ``root`` shortens reported paths to be repo-relative; ``keep`` is an
    optional post-filter (the baseline mechanism) applied before suppression
    accounting; ``severities`` restricts findings to the named severity
    levels (the ``--severity`` CLI filter).  Files that fail to parse surface
    as a ``syntax`` violation rather than crashing the run — a broken op
    module must fail the lint gate, not evade it.
    """
    # rule modules self-register on import; import here so callers that only
    # ever touch the framework do not pay for it
    from repro.tools.lint import rules as _rules  # noqa: F401

    resolved = resolve_rules(rule_ids)
    if severities is not None:
        severities = set(severities)
        unknown = severities - set(SEVERITIES)
        if unknown:
            raise ValueError(
                f"unknown severity level(s) {sorted(unknown)}; "
                f"choose from {list(SEVERITIES)}"
            )
    targets = [Path(p) for p in paths] if paths else default_lint_paths()
    if root is None:
        root = Path.cwd()
    result = LintResult(rule_ids=[rule.id for rule in resolved])
    for file_path in iter_python_files(targets):
        result.files_checked += 1
        try:
            module = LintModule.parse(file_path, root=root)
        except SyntaxError as error:
            result.violations.append(
                Violation(
                    rule="syntax",
                    severity=ERROR,
                    path=str(file_path),
                    line=error.lineno or 1,
                    message=f"file does not parse: {error.msg}",
                )
            )
            continue
        for rule in resolved:
            for violation in rule.check(module):
                if severities is not None and violation.severity not in severities:
                    continue
                if keep is not None and not keep(violation):
                    continue
                if module.is_suppressed(violation):
                    result.suppressed.append(violation)
                else:
                    result.violations.append(violation)
    result.violations.sort(key=lambda v: (v.path, v.line, v.rule))
    result.suppressed.sort(key=lambda v: (v.path, v.line, v.rule))
    return result
