"""Parallel execution engine: a persistent worker pool for sample-level ops.

This package is the single parallel runtime shared by the core
:class:`~repro.core.executor.Executor` (via the ``np`` recipe knob) and the
simulated distributed runners in :mod:`repro.distributed` (Figure 10).  The
design follows the paper's Ray adaptation: sample-level operators (Mappers and
Filters) are embarrassingly parallel over rows, so they are dispatched as row
*chunks* to a pool of long-lived worker processes, while dataset-level
operators (Deduplicators and Selectors) run globally on the merged result.

Key properties:

* **Persistent workers** — a :class:`WorkerPool` keeps its processes alive
  across runs; workers are initialized exactly once with the instantiated
  operator list (via a ``Pool`` initializer), so per-run operator construction
  and asset loading costs are paid once, not per task.
* **Chunked dispatch** — tasks carry ``(kind, op_index, rows)`` where the
  operator is referenced by index into the worker-resident op list; only row
  chunks cross the process boundary, never operator pickles or whole
  partitions.
* **Start-method fallback** — ``fork`` is preferred (workers inherit the
  already-instantiated ops and warm asset caches for free); on spawn-only
  platforms workers re-instantiate the ops from the recipe entries inside the
  initializer.
* **Honest accounting** — every task reports the CPU time its worker spent on
  it (``time.process_time``), so callers can attribute cost per simulated
  node even when the host multiplexes all workers onto fewer cores.
"""

from repro.parallel.pool import (
    WorkerPool,
    get_shared_pool,
    is_shared_pool,
    resolve_start_method,
    shutdown_shared_pools,
)
from repro.parallel.worker import apply_sample_ops, default_chunk_size

__all__ = [
    "WorkerPool",
    "apply_sample_ops",
    "default_chunk_size",
    "get_shared_pool",
    "is_shared_pool",
    "resolve_start_method",
    "shutdown_shared_pools",
]
