"""Worker-side entry points of the parallel engine.

Every function here runs inside a pool worker process.  The module keeps the
instantiated operator list in a process-global so that a worker pays operator
construction (and asset loading: stop-word tables, flagged-word lists, the
unigram LM) exactly once, at pool start-up, instead of once per dispatched
task — the root cause of the Figure-10 regression in the original fork-per-run
implementation.

Tasks are small tuples ``(kind, op_index, rows)``; operators are referenced by
index into the worker-resident list, so only row chunks cross the process
boundary.  Every task returns ``(payload, cpu_seconds, pid)`` where
``cpu_seconds`` is the CPU time this worker spent executing the operator code
(:func:`time.process_time`), excluding IPC serialisation, and ``pid`` is the
process id of the worker that actually executed the task.  Callers use the
CPU time to attribute cost to simulated cluster nodes independently of how
the host OS multiplexes the workers onto physical cores, and the pid as
direct evidence that the work really ran out-of-process in a pool worker.
"""

from __future__ import annotations

import math
import os
import time
from typing import Any, Sequence

from repro.core.base_op import Filter, Mapper

#: operator list of this worker process, set once by :func:`initialize_worker`
_WORKER_OPS: list | None = None

#: batch size for batched Mappers inside :func:`apply_sample_ops`; matches
#: the default ``batch_size`` of :meth:`repro.core.dataset.NestedDataset.map`
#: so batch boundaries line up with the serial Executor path within a chunk
DEFAULT_BATCH_SIZE = 1000


def initialize_worker(ops: Sequence | None, process_list: list | None, op_fusion: bool) -> None:
    """Install the operator list in this worker (runs once per worker process).

    Under the ``fork`` start method the parent passes its already-instantiated
    ``ops`` (inherited without pickling).  Under ``spawn``/``forkserver`` the
    parent passes the recipe ``process_list`` instead and each worker
    re-instantiates the operators here, applying the same fusion setting the
    parent used so operator indices line up.
    """
    global _WORKER_OPS
    if ops is None:
        if process_list is None:
            raise ValueError("worker needs either instantiated ops or a process list")
        from repro.ops import build_ops

        ops = build_ops(process_list, op_fusion=op_fusion)
    _WORKER_OPS = list(ops)
    # warm the shared assets (word lists, unigram LM) so the first dispatched
    # chunk is not billed for lazy loading — see ops.common.preload_assets
    from repro.ops.common import preload_assets

    preload_assets()


def default_chunk_size(num_rows: int, num_workers: int, tasks_per_worker: int = 4) -> int:
    """Chunk size that yields ~``tasks_per_worker`` chunks per worker."""
    if num_rows <= 0:
        return 1
    return max(1, math.ceil(num_rows / max(1, num_workers * tasks_per_worker)))


def chunk_rows(rows: Sequence[dict], chunk_size: int) -> list[list[dict]]:
    """Split rows into consecutive chunks of at most ``chunk_size`` rows."""
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    return [list(rows[start:start + chunk_size]) for start in range(0, len(rows), chunk_size)]


def apply_sample_ops(ops: Sequence, rows: list[dict]) -> list[dict]:
    """Run a list of sample-level ops over rows in a single fused pass.

    Mappers transform rows; Filters compute stats and drop rejected rows
    immediately.  This is the common code path of the inline (``np=1`` /
    single-node) execution and the worker-side ``pipeline`` task.  Output
    equivalence with the serial Executor is guaranteed for per-sample ops.
    Batched Mappers are fed :data:`DEFAULT_BATCH_SIZE`-row batches *local to
    this chunk*, so their batch boundaries coincide with the serial path only
    up to chunk/partition edges — a batched mapper whose output depends on
    batch composition is not safe to run partitioned.
    """
    current = [dict(row) for row in rows]
    for op in ops:
        if isinstance(op, Mapper):
            if op._batched:
                batched: list[dict] = []
                for start in range(0, len(current), DEFAULT_BATCH_SIZE):
                    batched.extend(op.process_batched(current[start:start + DEFAULT_BATCH_SIZE]))
                current = batched
            else:
                current = [op.process(sample) for sample in current]
        elif isinstance(op, Filter):
            surviving = []
            for sample in current:
                sample = op.compute_stats(sample)
                if op.process(sample):
                    surviving.append(sample)
            current = surviving
        else:
            raise TypeError(f"apply_sample_ops only handles Mappers/Filters, got {op!r}")
    return current


def run_task(task: tuple[str, int, list[dict]]) -> tuple[Any, float, int]:
    """Execute one dispatched task against the worker-resident operator list.

    Supported kinds:

    * ``"map"`` — ``op.process`` over each row; payload: transformed rows.
    * ``"map_batched"`` — ``op.process_batched`` over the chunk as one batch.
    * ``"stats"`` — ``op.compute_stats`` over each row; payload: stat rows.
    * ``"flags"`` — ``bool(op.process(row))`` per row; payload: keep flags.
    * ``"filter"`` — stats then decision; payload: ``(stat_rows, keep_flags)``.
    * ``"pipeline"`` — the full worker op list via :func:`apply_sample_ops`
      (``op_index`` is ignored); payload: surviving rows.

    Returns ``(payload, cpu_seconds, pid)``; the pid identifies the worker
    process that served the task.
    """
    kind, op_index, rows = task
    if _WORKER_OPS is None:
        raise RuntimeError("worker not initialized; WorkerPool must set the op list")
    start_cpu = time.process_time()
    if kind == "pipeline":
        payload: Any = apply_sample_ops(_WORKER_OPS, rows)
    else:
        op = _WORKER_OPS[op_index]
        if kind == "map":
            payload = [op.process(dict(row)) for row in rows]
        elif kind == "map_batched":
            payload = op.process_batched([dict(row) for row in rows])
        elif kind == "stats":
            payload = [op.compute_stats(dict(row)) for row in rows]
        elif kind == "flags":
            payload = [bool(op.process(dict(row))) for row in rows]
        elif kind == "filter":
            stat_rows = [op.compute_stats(dict(row)) for row in rows]
            payload = (stat_rows, [bool(op.process(row)) for row in stat_rows])
        else:
            raise ValueError(f"unknown task kind {kind!r}")
    return payload, time.process_time() - start_cpu, os.getpid()
