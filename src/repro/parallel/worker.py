"""Worker-side entry points of the parallel engine.

Every function here runs inside a pool worker process.  The module keeps the
instantiated operator list in a process-global so that a worker pays operator
construction (and asset loading: stop-word tables, flagged-word lists, the
unigram LM) exactly once, at pool start-up, instead of once per dispatched
task — the root cause of the Figure-10 regression in the original fork-per-run
implementation.

Tasks are small tuples ``(kind, op_ref, payload)``; operators are referenced
by index into the worker-resident list — or, for fused filters assembled
after pool construction, by a *tuple* of member indices (the worker builds
and caches an equivalent ``FusedFilter`` over its resident members).  Row
tasks carry row-dict chunks; the batched column tasks (``map_cols``,
``stats_cols``, ``hash_cols``, ``filter_cols``…) carry column batches
(``dict[str, list]``), so the per-row dict construction never happens on
either side of the process boundary.

Every task returns ``(payload, cpu_seconds, pid)`` where ``cpu_seconds`` is
the CPU time this worker spent executing the operator code
(:func:`time.process_time`), excluding IPC serialisation, and ``pid`` is the
process id of the worker that actually executed the task.  Callers use the
CPU time to attribute cost to simulated cluster nodes independently of how
the host OS multiplexes the workers onto physical cores, and the pid as
direct evidence that the work really ran out-of-process in a pool worker.
"""

from __future__ import annotations

import math
import os
import time
from typing import Any, Sequence

from repro.core.base_op import Filter, Mapper
from repro.core.batch import batch_to_rows, rows_to_batch

#: operator list of this worker process, set once by :func:`initialize_worker`
_WORKER_OPS: list | None = None

#: worker-side cache of FusedFilters referenced by member-index tuples
_FUSED_CACHE: dict[tuple, Any] = {}


def initialize_worker(ops: Sequence | None, process_list: list | None, op_fusion: bool) -> None:
    """Install the operator list in this worker (runs once per worker process).

    Under the ``fork`` start method the parent passes its already-instantiated
    ``ops`` (inherited without pickling).  Under ``spawn``/``forkserver`` the
    parent passes the recipe ``process_list`` instead and each worker
    re-instantiates the operators here, applying the same fusion setting the
    parent used so operator indices line up.
    """
    global _WORKER_OPS
    if ops is None:
        if process_list is None:
            raise ValueError("worker needs either instantiated ops or a process list")
        from repro.ops import build_ops

        ops = build_ops(process_list, op_fusion=op_fusion)
    _WORKER_OPS = list(ops)
    _FUSED_CACHE.clear()
    # warm the shared assets (word lists, unigram LM) so the first dispatched
    # chunk is not billed for lazy loading — see ops.common.preload_assets
    from repro.ops.common import preload_assets

    preload_assets()


def default_chunk_size(num_rows: int, num_workers: int, tasks_per_worker: int = 4) -> int:
    """Chunk size that yields ~``tasks_per_worker`` chunks per worker."""
    if num_rows <= 0:
        return 1
    return max(1, math.ceil(num_rows / max(1, num_workers * tasks_per_worker)))


def chunk_rows(rows: Sequence[dict], chunk_size: int) -> list[list[dict]]:
    """Split rows into consecutive chunks of at most ``chunk_size`` rows."""
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    return [list(rows[start:start + chunk_size]) for start in range(0, len(rows), chunk_size)]


def apply_sample_ops(ops: Sequence, rows: list[dict]) -> list[dict]:
    """Run a list of sample-level ops over rows in a single fused pass.

    The rows are converted to one column batch, every op executes its batched
    path over it (Mappers transform, Filters compute stats and drop rejected
    rows immediately via the short-circuiting ``filter_batched``), and the
    surviving batch is materialised back to rows.  This is the common code
    path of the inline (``np=1`` / single-node) execution and the worker-side
    ``pipeline`` task.  Output equivalence with the serial Executor is
    guaranteed for per-sample ops; a batched op whose output depends on batch
    composition is not safe to run partitioned, because here the batch spans
    the whole chunk rather than the op's own ``batch_size``.
    """
    batch = rows_to_batch(rows)
    for op in ops:
        if isinstance(op, Mapper):
            batch = op.process_batched(batch)
        elif isinstance(op, Filter):
            batch, _flags = op.filter_batched(batch)
        else:
            raise TypeError(f"apply_sample_ops only handles Mappers/Filters, got {op!r}")
    return batch_to_rows(batch)


def _resolve_worker_op(op_ref: int | tuple) -> Any:
    """Look up a task's operator: an index, or a member-index tuple (fused)."""
    assert _WORKER_OPS is not None
    if isinstance(op_ref, tuple):
        fused = _FUSED_CACHE.get(op_ref)
        if fused is None:
            from repro.core.fusion import FusedFilter

            fused = FusedFilter([_WORKER_OPS[index] for index in op_ref])
            _FUSED_CACHE[op_ref] = fused
        return fused
    return _WORKER_OPS[op_ref]


def run_task(task: tuple[str, Any, Any]) -> tuple[Any, float, int]:
    """Execute one dispatched task against the worker-resident operator list.

    Row-chunk kinds (payload: list of row dicts):

    * ``"map"`` — ``op.process`` over each row; payload: transformed rows.
    * ``"stats"`` — ``op.compute_stats`` over each row; payload: stat rows.
    * ``"flags"`` — ``bool(op.process(row))`` per row; payload: keep flags.
    * ``"filter"`` — stats then decision; payload: ``(stat_rows, keep_flags)``.
    * ``"pipeline"`` — the full worker op list via :func:`apply_sample_ops`
      (``op_ref`` is ignored); payload: surviving rows.

    Column-batch kinds (payload: ``dict[str, list]``):

    * ``"map_cols"`` — ``op.process_batched``; payload: the mapped batch.
    * ``"stats_cols"`` — ``op.compute_stats_batched``; payload: stat batch.
    * ``"hash_cols"`` — ``op.compute_hash_batched``; payload: hashed batch.
    * ``"filter_cols"`` — ``op.filter_batched`` (short-circuit); payload:
      ``(surviving_batch, keep_flags)``.
    * ``"filter_cols_full"`` — stats for *every* row then decision; payload:
      ``(stat_batch, keep_flags)`` (used when a tracer needs rejected rows).
    * ``"flags_cols"`` — ``op.process_batched`` flags only; payload: flags.

    Returns ``(payload, cpu_seconds, pid)``; the pid identifies the worker
    process that served the task.
    """
    kind, op_ref, payload_in = task
    if _WORKER_OPS is None:
        raise RuntimeError("worker not initialized; WorkerPool must set the op list")
    start_cpu = time.process_time()
    if kind == "pipeline":
        payload: Any = apply_sample_ops(_WORKER_OPS, payload_in)
    else:
        op = _resolve_worker_op(op_ref)
        if kind == "map":
            payload = [op.process(dict(row)) for row in payload_in]
        elif kind == "stats":
            payload = [op.compute_stats(dict(row)) for row in payload_in]
        elif kind == "flags":
            payload = [bool(op.process(dict(row))) for row in payload_in]
        elif kind == "filter":
            stat_rows = [op.compute_stats(dict(row)) for row in payload_in]
            payload = (stat_rows, [bool(op.process(row)) for row in stat_rows])
        elif kind == "map_cols":
            payload = op.process_batched(dict(payload_in))
        elif kind == "stats_cols":
            payload = op.compute_stats_batched(dict(payload_in))
        elif kind == "hash_cols":
            payload = op.compute_hash_batched(dict(payload_in))
        elif kind == "filter_cols":
            payload = op.filter_batched(dict(payload_in))
        elif kind == "filter_cols_full":
            batch = op.compute_stats_batched(dict(payload_in))
            payload = (batch, op.process_batched(batch))
        elif kind == "flags_cols":
            payload = [bool(flag) for flag in op.process_batched(dict(payload_in))]
        else:
            raise ValueError(f"unknown task kind {kind!r}")
    return payload, time.process_time() - start_cpu, os.getpid()
