"""The persistent :class:`WorkerPool` and the shared pool registry.

A ``WorkerPool`` wraps a :mod:`multiprocessing` pool whose workers are
initialized exactly once with the instantiated operator list (see
:mod:`repro.parallel.worker`).  The pool stays alive across any number of
``map_rows`` / ``filter_rows`` / ``run_sample_pipeline`` calls, which is what
fixes the Figure-10 regression: the old runner forked a fresh pool per run and
re-ran ``load_ops`` in every worker for every call.

:func:`get_shared_pool` adds process-wide pool reuse: callers that repeatedly
run the same recipe at the same worker count (e.g. the scalability sweep, or
the Ray-like and Beam-like runners back to back) receive the same live pool.
"""

from __future__ import annotations

import atexit
import json
import logging
import multiprocessing
import threading
import time
import warnings
from collections import OrderedDict
from typing import Any, Callable, Sequence

from repro.core.base_op import Filter, Mapper
from repro.core.dataset import _stable_hash
from repro.core.faults import BACKOFF_CAP_S, DegradedExecutionWarning
from repro.parallel import worker as _worker
from repro.parallel.worker import chunk_rows, default_chunk_size

try:  # the canonical broken-pool signal of concurrent.futures executors
    from concurrent.futures.process import BrokenProcessPool
except ImportError:  # pragma: no cover - always present on CPython
    class BrokenProcessPool(RuntimeError):
        """Fallback placeholder when concurrent.futures is unavailable."""

logger = logging.getLogger(__name__)

#: fallback preference order; ``fork`` inherits instantiated ops and warm
#: asset caches for free, ``forkserver`` and ``spawn`` re-instantiate per worker
_START_METHOD_ORDER = ("fork", "forkserver", "spawn")

#: exception types that indicate pool infrastructure failure (dead or hung
#: workers, broken result pipes) rather than an operator error.  A worker
#: killed mid-task never raises through ``multiprocessing.Pool`` — its result
#: simply never arrives — so the per-dispatch timeout is the detection signal.
_POOL_FAILURES = (
    multiprocessing.TimeoutError,
    BrokenPipeError,
    EOFError,
    BrokenProcessPool,
)


def _op_equivalence_key(op: Any) -> tuple[str, str, str]:
    """Identity of an op up to configuration: ``(class, name, config hash)``.

    Two instances with equal keys are interchangeable for dispatch because
    operators are pure functions of their ``config()`` (the lint-enforced
    contract); execution-tuning state (underscored attributes such as
    ``_batch_size``) is deliberately outside the key, as batch boundaries are
    always sliced caller-side.
    """
    return (type(op).__name__, op.name, _stable_hash(op.config()))


def resolve_start_method(preferred: str | None = None, available: Sequence[str] | None = None) -> str:
    """Pick a usable multiprocessing start method, falling back gracefully.

    ``preferred`` is honoured when the platform supports it; otherwise (and
    when no preference is given) the first supported entry of
    ``fork > forkserver > spawn`` is used.  Raises :class:`RuntimeError` only
    when the platform reports no start method at all.
    """
    methods = list(available if available is not None else multiprocessing.get_all_start_methods())
    if not methods:
        raise RuntimeError("no multiprocessing start method available on this platform")
    if preferred is not None and preferred in methods:
        return preferred
    for method in _START_METHOD_ORDER:
        if method in methods:
            return method
    return methods[0]


class WorkerPool:
    """A persistent pool of worker processes holding an instantiated op list.

    Parameters
    ----------
    num_workers:
        Number of worker processes (>= 1).
    ops:
        The instantiated operator list the workers should hold.  When omitted
        it is built from ``process_list`` in the parent.
    process_list:
        Recipe entries used to rebuild the ops inside workers under ``spawn``
        (where live instances cannot be inherited); also the fallback source
        of ``ops``.
    op_fusion:
        Whether the spawn-side rebuild should fuse the operator list the same
        way the parent did.
    start_method:
        Preferred multiprocessing start method; silently falls back via
        :func:`resolve_start_method` on platforms that lack it.
    chunk_size:
        Default rows per dispatched chunk (auto-sized per call when ``None``).
    task_timeout_s:
        Per-dispatch timeout of the supervision layer.  ``None`` (default)
        blocks indefinitely — zero supervision overhead, but a dead or hung
        worker can only be detected when a timeout is set.
    max_rebuilds:
        Pool reconstructions after infrastructure failures before the pool
        degrades to serial in-parent execution (with a
        :class:`repro.core.faults.DegradedExecutionWarning`).
    rebuild_backoff_s:
        Base of the capped exponential backoff slept between rebuilds.
    """

    def __init__(
        self,
        num_workers: int,
        ops: Sequence | None = None,
        process_list: list | None = None,
        op_fusion: bool = False,
        start_method: str | None = None,
        chunk_size: int | None = None,
        task_timeout_s: float | None = None,
        max_rebuilds: int = 2,
        rebuild_backoff_s: float = 0.05,
    ):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if ops is None:
            if process_list is None:
                raise ValueError("WorkerPool needs ops or a process_list")
            from repro.ops import build_ops

            ops = build_ops(process_list, op_fusion=op_fusion)
        self.num_workers = num_workers
        self.chunk_size = chunk_size
        self.start_method = resolve_start_method(start_method)
        self.task_timeout_s = task_timeout_s
        self.max_rebuilds = max_rebuilds
        self.rebuild_backoff_s = rebuild_backoff_s
        #: pool reconstructions performed so far (supervision diagnostics)
        self.rebuilds = 0
        #: True once the pool gave up on worker processes and runs serial
        self.degraded = False
        #: optional :class:`repro.core.faults.FaultTracker` sharing the
        #: executor's per-run fault ledger (set by the executor each run)
        self.fault_tracker: Any = None
        #: the drain error :meth:`close` fell back to ``terminate()`` on
        self.close_error: BaseException | None = None
        #: pids of the workers that executed the most recent dispatch — direct
        #: evidence of out-of-process execution (unlike :meth:`worker_pids`,
        #: which only lists the live processes)
        self.last_served_pids: list[int] = []
        self._ops = list(ops)
        self._op_index = {id(op): index for index, op in enumerate(self._ops)}
        # equivalence index: ops are pure functions of their config() (the
        # lint-enforced contract), so any instance with the same registered
        # name and config hash is interchangeable with the resident one.
        # This is what lets a long-lived shared pool serve executors that
        # built their own (equal) op instances from the same recipe.
        self._config_index = {
            _op_equivalence_key(op): index for index, op in enumerate(self._ops)
        }
        self._closed = False
        self._context = multiprocessing.get_context(self.start_method)
        if self.start_method == "fork":
            # forked workers inherit the live instances without pickling
            self._initargs: tuple = (self._ops, None, False)
        elif process_list is not None:
            # spawned workers re-instantiate from the (picklable) recipe
            self._initargs = (None, list(process_list), op_fusion)
        else:
            self._initargs = (self._ops, None, False)
        self._pool = self._spawn_pool()

    def _spawn_pool(self) -> Any:
        """Create the underlying multiprocessing pool (initial or rebuild)."""
        return self._context.Pool(
            processes=self.num_workers,
            initializer=_worker.initialize_worker,
            initargs=self._initargs,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """True while the pool can accept work."""
        return not self._closed

    def close(self) -> None:
        """Shut the worker processes down; the pool accepts no further work.

        Drains gracefully — in-flight tasks finish before the workers exit —
        falling back to ``terminate()`` only when the drain itself fails.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self._pool.close()
            self._pool.join()
        except Exception as drain_error:
            # never discard the drain failure: log it, remember it, and chain
            # it onto any terminate failure so neither error disappears
            self.close_error = drain_error
            logger.warning(
                "WorkerPool drain failed (%r); terminating workers", drain_error
            )
            try:
                self._pool.terminate()
                self._pool.join()
            except Exception as terminate_error:
                terminate_error.__cause__ = drain_error
                logger.error(
                    "WorkerPool terminate after failed drain also failed: %r "
                    "(drain error: %r)",
                    terminate_error,
                    drain_error,
                )

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def worker_pids(self) -> list[int]:
        """Process ids of the live worker processes (diagnostics / tests)."""
        processes = getattr(self._pool, "_pool", None) or []
        return [process.pid for process in processes]

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _resolve(self, op: Any) -> int | tuple | None:
        """Worker-side reference for ``op``: its index, or the member-index
        tuple of a :class:`~repro.core.fusion.FusedFilter` whose members are
        all pool-resident (fused plans assembled *after* pool construction,
        e.g. by ``fuse_operators`` over a shared pool's op list).

        Resolution is by object identity first, then by *equivalence*: an op
        with the same registered name and ``config()`` hash as a resident op
        dispatches to the resident instance (identical output by the purity
        contract).  Equivalence is what lets every :class:`Executor` of a
        long-running service share one warm pool built from the recipe.
        """
        index = self._resolve_single(op)
        if index is not None:
            return index
        from repro.core.fusion import FusedFilter

        if isinstance(op, FusedFilter):
            members = [self._resolve_single(member) for member in op.fused_filters]
            if members and all(index is not None for index in members):
                return tuple(members)
        return None

    def _resolve_single(self, op: Any) -> int | None:
        """Index of one (non-fused) op: by identity, then by config equivalence."""
        index = self._op_index.get(id(op))
        if index is not None:
            return index
        try:
            return self._config_index.get(_op_equivalence_key(op))
        except Exception:  # unhashable/unserialisable config: identity only
            return None

    def holds(self, op: Any) -> bool:
        """True when ``op`` is resident in this (open) pool.

        A ``FusedFilter`` counts as resident when every member filter is —
        workers assemble (and cache) an equivalent fused op over their own
        resident members, so post-fusion plans never silently fall back to
        in-process serial execution.
        """
        return not self._closed and self._resolve(op) is not None

    def accepts(self, function: Callable, kind: str = "map", batched: bool = False) -> bool:
        """True when ``function`` can be dispatched to the pool as ``kind``.

        ``kind`` is the caller's dispatch intent — ``"map"`` (row transform or
        stats annotation, served by :meth:`map_rows`), ``"filter"`` (boolean
        keep/drop decision, served by :meth:`flag_rows`), ``"map_batches"``
        (columnar batch transform, served by :meth:`map_column_batches`) or
        ``"filter_batches"`` (columnar keep flags, served by
        :meth:`flag_column_batches`) — and ``batched`` mirrors the caller's
        ``batched=`` flag on the row-oriented kinds.  Intent and method must
        agree: approving a method for the wrong intent would make the pool
        execute *different* worker code than the serial path runs for the
        same call, so mismatches fall back to serial.
        """
        owner = getattr(function, "__self__", None)
        if self._closed or owner is None or self._resolve(owner) is None:
            return False
        name = getattr(function, "__name__", "")
        if kind == "filter":
            return not batched and isinstance(owner, Filter) and name == "process"
        if kind == "map":
            if name == "compute_stats":
                return not batched
            return not batched and name == "process" and isinstance(owner, Mapper)
        if kind == "map_batches":
            if name == "process_batched":
                return isinstance(owner, Mapper)
            return name in ("compute_stats_batched", "compute_hash_batched")
        if kind == "filter_batches":
            return isinstance(owner, Filter) and name == "process_batched"
        return False

    def _dispatch(self, tasks: list[tuple[str, int, list[dict]]]) -> list[tuple[Any, float]]:
        if self._closed:
            raise RuntimeError("WorkerPool is closed")
        if not tasks:
            self.last_served_pids = []
            return []
        results = self._supervised_map(tasks)
        self.last_served_pids = sorted({pid for _payload, _cpu, pid in results})
        return [(payload, cpu) for payload, cpu, _pid in results]

    def _supervised_map(self, tasks: list) -> list[tuple[Any, float, int]]:
        """Dispatch with dead/hung-worker detection, rebuild and degradation.

        Operator exceptions re-raise untouched for the error-policy layer;
        only infrastructure failures (:data:`_POOL_FAILURES` — a timed-out
        dispatch, a broken result pipe) trigger a pool rebuild.  The retried
        chunk is safe to replay because operators are pure functions of their
        config (the lint-enforced contract).  After ``max_rebuilds``
        reconstructions the pool degrades to serial in-parent execution with
        a warning instead of aborting the run.
        """
        if self.degraded:
            return self._run_serial(tasks)
        attempt = 0
        while True:
            try:
                # map_async + get(timeout) instead of map: identical semantics
                # and cost with timeout=None, but a set timeout is the only
                # way to notice a worker that died (its result never arrives;
                # multiprocessing.Pool repopulates workers silently)
                return self._pool.map_async(_worker.run_task, tasks).get(
                    self.task_timeout_s
                )
            except _POOL_FAILURES as error:
                if self.rebuilds >= self.max_rebuilds:
                    self._degrade(error)
                    return self._run_serial(tasks)
                self._rebuild(error, attempt)
                attempt += 1

    def _rebuild(self, error: BaseException, attempt: int) -> None:
        """Tear down the broken pool and build a fresh one in place."""
        detail = f"worker pool failure ({error!r}); rebuilding pool"
        logger.warning("%s (rebuild %d/%d)", detail, self.rebuilds + 1, self.max_rebuilds)
        try:
            self._pool.terminate()
            self._pool.join()
        except Exception:
            logger.warning("terminating the broken pool failed; abandoning it")
        if self.rebuild_backoff_s > 0:
            time.sleep(min(self.rebuild_backoff_s * (2 ** attempt), BACKOFF_CAP_S))
        self._pool = self._spawn_pool()
        self.rebuilds += 1
        if self.fault_tracker is not None:
            self.fault_tracker.record_rebuild(detail)

    def _degrade(self, error: BaseException) -> None:
        """Give up on worker processes; subsequent dispatches run in-parent."""
        self.degraded = True
        detail = (
            f"worker pool failed {self.rebuilds} rebuild(s) deep ({error!r}); "
            "degrading to serial in-parent execution"
        )
        warnings.warn(detail, DegradedExecutionWarning, stacklevel=3)
        if self.fault_tracker is not None:
            self.fault_tracker.record_degradation(detail)
        try:
            self._pool.terminate()
            self._pool.join()
        except Exception:
            logger.warning("terminating the degraded pool failed; abandoning it")

    def _run_serial(self, tasks: list) -> list[tuple[Any, float, int]]:
        """Execute dispatched tasks in the parent process (degraded mode)."""
        # install the op list as this process's worker state so run_task
        # resolves op references exactly like a worker would
        _worker.initialize_worker(*self._initargs)
        return [_worker.run_task(task) for task in tasks]

    def _chunks(self, rows: Sequence[dict], chunk_size: int | None = None) -> list[list[dict]]:
        size = chunk_size or self.chunk_size or default_chunk_size(len(rows), self.num_workers)
        return chunk_rows(rows, size)

    def map_rows(self, function: Callable, rows: list[dict]) -> list[dict]:
        """Run a per-row Mapper method (or ``compute_stats``) over rows via the pool.

        The task kind is derived from the bound method itself, so the workers
        always execute the same method the serial path would (columnar
        ``process_batched`` dispatch is served by :meth:`map_column_batches`
        instead).  Chunks preserve row order.
        """
        owner = getattr(function, "__self__", None)
        if owner is None:
            raise ValueError(f"{function!r} is not a bound op method")
        op_ref = self._resolve_or_raise(owner)
        method = getattr(function, "__name__", "")
        if method == "compute_stats":
            kind, chunks = "stats", self._chunks(rows)
        elif method == "process" and isinstance(owner, Mapper):
            kind, chunks = "map", self._chunks(rows)
        else:
            raise ValueError(f"cannot map {method!r} of {type(owner).__name__} over rows")
        merged: list[dict] = []
        for payload, _cpu in self._dispatch([(kind, op_ref, chunk) for chunk in chunks]):
            merged.extend(payload)
        return merged

    def _resolve_or_raise(self, op: Any) -> int | tuple:
        op_ref = self._resolve(op)
        if op_ref is None:
            raise ValueError(f"{op!r} is not resident in this pool")
        return op_ref

    def map_column_batches(self, function: Callable, batches: list[dict]) -> list[dict]:
        """Run a columnar batch method over pre-sliced column batches.

        ``function`` must be a pool-resident op's ``process_batched``,
        ``compute_stats_batched`` or ``compute_hash_batched`` bound method;
        each batch becomes one task, so the batch boundaries are exactly the
        caller's (serial-path) boundaries.  Returns the transformed batches
        in order.
        """
        owner = getattr(function, "__self__", None)
        if owner is None:
            raise ValueError(f"{function!r} is not a bound op method")
        op_ref = self._resolve_or_raise(owner)
        method = getattr(function, "__name__", "")
        kinds = {
            "process_batched": "map_cols",
            "compute_stats_batched": "stats_cols",
            "compute_hash_batched": "hash_cols",
        }
        if method not in kinds or (method == "process_batched" and not isinstance(owner, Mapper)):
            raise ValueError(f"cannot dispatch {method!r} of {type(owner).__name__} as a column map")
        tasks = [(kinds[method], op_ref, batch) for batch in batches]
        return [payload for payload, _cpu in self._dispatch(tasks)]

    def flag_column_batches(self, function: Callable, batches: list[dict]) -> list[list[bool]]:
        """Evaluate a Filter's batched keep/drop flags over column batches."""
        owner = getattr(function, "__self__", None)
        if owner is None or not isinstance(owner, Filter):
            raise ValueError(f"{function!r} is not a method of a pool-resident Filter")
        op_ref = self._resolve_or_raise(owner)
        if getattr(function, "__name__", "") != "process_batched":
            raise ValueError("flag_column_batches dispatches process_batched only")
        tasks = [("flags_cols", op_ref, batch) for batch in batches]
        return [payload for payload, _cpu in self._dispatch(tasks)]

    def filter_column_batches(
        self, op: Filter, batches: list[dict], full_stats: bool = False
    ) -> list[tuple[dict, list[bool]]]:
        """Run a Filter's batched stats + decision over column batches.

        Returns one ``(batch, keep_flags)`` pair per input batch.  With
        ``full_stats`` the batch contains *every* row stat-annotated (for
        tracing); otherwise only the surviving rows come back
        (short-circuiting ``filter_batched``, the fast path).
        """
        op_ref = self._resolve_or_raise(op)
        kind = "filter_cols_full" if full_stats else "filter_cols"
        tasks = [(kind, op_ref, batch) for batch in batches]
        return [payload for payload, _cpu in self._dispatch(tasks)]

    def flag_rows(self, function: Callable, rows: list[dict]) -> list[bool]:
        """Evaluate a Filter's boolean ``process`` over rows via the pool."""
        owner = getattr(function, "__self__", None)
        if owner is None or not isinstance(owner, Filter):
            raise ValueError(f"{function!r} is not a method of a pool-resident Filter")
        op_ref = self._resolve_or_raise(owner)
        flags: list[bool] = []
        for payload, _cpu in self._dispatch([("flags", op_ref, chunk) for chunk in self._chunks(rows)]):
            flags.extend(payload)
        return flags

    def filter_rows(self, op: Filter, rows: list[dict]) -> tuple[list[dict], list[bool]]:
        """Run a Filter's stats + keep/drop decision over rows via the pool.

        Returns the stat-annotated rows and the parallel list of keep flags,
        mirroring the serial :meth:`repro.core.base_op.Filter.run` loop.
        """
        op_ref = self._resolve_or_raise(op)
        stat_rows: list[dict] = []
        keep_flags: list[bool] = []
        for payload, _cpu in self._dispatch([("filter", op_ref, chunk) for chunk in self._chunks(rows)]):
            chunk_stats, chunk_flags = payload
            stat_rows.extend(chunk_stats)
            keep_flags.extend(chunk_flags)
        return stat_rows, keep_flags

    def run_sample_pipeline(
        self, partitions: list[list[dict]], chunk_size: int | None = None
    ) -> tuple[list[list[dict]], list[float]]:
        """Run the full worker op list over per-node partitions.

        Each partition (one simulated cluster node) is dispatched as several
        row chunks for load balancing; results are re-grouped per node in
        order.  Returns ``(surviving_rows_per_node, cpu_seconds_per_node)``
        where the CPU seconds are measured inside the workers and therefore
        reflect the genuine per-node cost even when the host has fewer cores
        than workers.
        """
        tasks: list[tuple[str, int, list[dict]]] = []
        owners: list[int] = []
        for node_id, partition in enumerate(partitions):
            size = chunk_size or self.chunk_size or default_chunk_size(len(partition), 1)
            for chunk in chunk_rows(partition, size):
                tasks.append(("pipeline", -1, chunk))
                owners.append(node_id)
        node_rows: list[list[dict]] = [[] for _ in partitions]
        node_cpu = [0.0] * len(partitions)
        for node_id, (payload, cpu) in zip(owners, self._dispatch(tasks)):
            node_rows[node_id].extend(payload)
            node_cpu[node_id] += cpu
        return node_rows, node_cpu


# ----------------------------------------------------------------------
# Process-wide shared pools
# ----------------------------------------------------------------------
#: most-recently-used ordering; bounded so a long-lived caller cycling through
#: many recipes / worker counts does not accumulate idle worker processes
_SHARED_POOLS: "OrderedDict[tuple, WorkerPool]" = OrderedDict()

#: guards the registry's check-then-create: once a long-running server (or
#: any threaded caller) drives :func:`get_shared_pool`, an unguarded race
#: would fork two pools for one key and leak the loser's worker processes
_SHARED_POOLS_LOCK = threading.RLock()

#: maximum number of live shared pools; the least-recently-used pool is
#: closed and evicted when the bound is exceeded.  Sized so a scalability
#: sweep over the paper's node counts (2/4/8/16, plus headroom) keeps every
#: pool alive for the whole sweep — eviction mid-sweep would silently bring
#: back the fork-per-run behaviour the shared registry exists to prevent
MAX_SHARED_POOLS = 8


def _pool_key(num_workers: int, process_list: list, start_method: str, op_fusion: bool) -> tuple:
    signature = json.dumps(process_list, sort_keys=True, default=repr)
    return (num_workers, start_method, op_fusion, signature)


def get_shared_pool(
    num_workers: int,
    process_list: list,
    start_method: str | None = None,
    op_fusion: bool = False,
    task_timeout_s: float | None = None,
    max_rebuilds: int | None = None,
    rebuild_backoff_s: float | None = None,
) -> WorkerPool:
    """Return a live shared pool for ``(num_workers, process_list)``, creating it once.

    Repeated callers with the same recipe and worker count — e.g. every run of
    a scalability sweep, the Ray-like and Beam-like runners on the same
    recipe, or every job of a ``repro serve`` server — reuse the same worker
    processes instead of forking fresh ones.  ``op_fusion`` registers the
    post-fusion plan, so a caller executing a fused op list gets a pool whose
    residents are the fused operators.  The registry keeps at most
    :data:`MAX_SHARED_POOLS` live pools, closing the least recently used one
    when a new pool would exceed the bound.

    The supervision knobs (``task_timeout_s``, ``max_rebuilds``,
    ``rebuild_backoff_s``) are per-*caller*, not part of the pool identity:
    they are (re)applied to the returned pool on every call, so each job of a
    long-running service runs the shared pool under its own fault policy.

    Thread-safe: the whole check-then-create (and LRU eviction) runs under a
    process-wide lock, so concurrent callers with one key get one pool.
    """
    method = resolve_start_method(start_method)
    key = _pool_key(num_workers, process_list, method, op_fusion)
    with _SHARED_POOLS_LOCK:
        pool = _SHARED_POOLS.get(key)
        if pool is None or not pool.alive:
            pool = WorkerPool(
                num_workers,
                process_list=list(process_list),
                op_fusion=op_fusion,
                start_method=method,
            )
            _SHARED_POOLS[key] = pool
        _SHARED_POOLS.move_to_end(key)
        evicted_pools = []
        while len(_SHARED_POOLS) > MAX_SHARED_POOLS:
            _, evicted = _SHARED_POOLS.popitem(last=False)
            evicted_pools.append(evicted)
        if task_timeout_s is not None:
            pool.task_timeout_s = task_timeout_s
        if max_rebuilds is not None:
            pool.max_rebuilds = max_rebuilds
        if rebuild_backoff_s is not None:
            pool.rebuild_backoff_s = rebuild_backoff_s
    # close evicted pools outside the lock: a graceful drain can block
    for evicted in evicted_pools:
        evicted.close()
    return pool


def is_shared_pool(pool: WorkerPool) -> bool:
    """True when ``pool`` is owned by the process-wide shared registry."""
    with _SHARED_POOLS_LOCK:
        return any(entry is pool for entry in _SHARED_POOLS.values())


def shutdown_shared_pools() -> None:
    """Terminate every shared pool (also registered as an ``atexit`` hook)."""
    with _SHARED_POOLS_LOCK:
        pools = list(_SHARED_POOLS.values())
        _SHARED_POOLS.clear()
    for pool in pools:
        pool.close()


atexit.register(shutdown_shared_pools)
