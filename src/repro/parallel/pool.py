"""The persistent :class:`WorkerPool` and the shared pool registry.

A ``WorkerPool`` wraps a :mod:`multiprocessing` pool whose workers are
initialized exactly once with the instantiated operator list (see
:mod:`repro.parallel.worker`).  The pool stays alive across any number of
``map_rows`` / ``filter_rows`` / ``run_sample_pipeline`` calls, which is what
fixes the Figure-10 regression: the old runner forked a fresh pool per run and
re-ran ``load_ops`` in every worker for every call.

:func:`get_shared_pool` adds process-wide pool reuse: callers that repeatedly
run the same recipe at the same worker count (e.g. the scalability sweep, or
the Ray-like and Beam-like runners back to back) receive the same live pool.
"""

from __future__ import annotations

import atexit
import json
import multiprocessing
from typing import Any, Callable, Sequence

from repro.core.base_op import Filter, Mapper
from repro.parallel import worker as _worker
from repro.parallel.worker import chunk_rows, default_chunk_size

#: fallback preference order; ``fork`` inherits instantiated ops and warm
#: asset caches for free, ``forkserver`` and ``spawn`` re-instantiate per worker
_START_METHOD_ORDER = ("fork", "forkserver", "spawn")


def resolve_start_method(preferred: str | None = None, available: Sequence[str] | None = None) -> str:
    """Pick a usable multiprocessing start method, falling back gracefully.

    ``preferred`` is honoured when the platform supports it; otherwise (and
    when no preference is given) the first supported entry of
    ``fork > forkserver > spawn`` is used.  Raises :class:`RuntimeError` only
    when the platform reports no start method at all.
    """
    methods = list(available if available is not None else multiprocessing.get_all_start_methods())
    if not methods:
        raise RuntimeError("no multiprocessing start method available on this platform")
    if preferred is not None and preferred in methods:
        return preferred
    for method in _START_METHOD_ORDER:
        if method in methods:
            return method
    return methods[0]


class WorkerPool:
    """A persistent pool of worker processes holding an instantiated op list.

    Parameters
    ----------
    num_workers:
        Number of worker processes (>= 1).
    ops:
        The instantiated operator list the workers should hold.  When omitted
        it is built from ``process_list`` in the parent.
    process_list:
        Recipe entries used to rebuild the ops inside workers under ``spawn``
        (where live instances cannot be inherited); also the fallback source
        of ``ops``.
    op_fusion:
        Whether the spawn-side rebuild should fuse the operator list the same
        way the parent did.
    start_method:
        Preferred multiprocessing start method; silently falls back via
        :func:`resolve_start_method` on platforms that lack it.
    chunk_size:
        Default rows per dispatched chunk (auto-sized per call when ``None``).
    """

    def __init__(
        self,
        num_workers: int,
        ops: Sequence | None = None,
        process_list: list | None = None,
        op_fusion: bool = False,
        start_method: str | None = None,
        chunk_size: int | None = None,
    ):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if ops is None:
            if process_list is None:
                raise ValueError("WorkerPool needs ops or a process_list")
            from repro.ops import load_ops

            ops = load_ops(process_list)
            if op_fusion:
                from repro.core.fusion import fuse_operators

                ops = fuse_operators(ops)
        self.num_workers = num_workers
        self.chunk_size = chunk_size
        self.start_method = resolve_start_method(start_method)
        self._ops = list(ops)
        self._op_index = {id(op): index for index, op in enumerate(self._ops)}
        self._closed = False
        context = multiprocessing.get_context(self.start_method)
        if self.start_method == "fork":
            # forked workers inherit the live instances without pickling
            initargs: tuple = (self._ops, None, False)
        elif process_list is not None:
            # spawned workers re-instantiate from the (picklable) recipe
            initargs = (None, list(process_list), op_fusion)
        else:
            initargs = (self._ops, None, False)
        self._pool = context.Pool(
            processes=num_workers, initializer=_worker.initialize_worker, initargs=initargs
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """True while the pool can accept work."""
        return not self._closed

    def close(self) -> None:
        """Shut the worker processes down; the pool accepts no further work."""
        if self._closed:
            return
        self._closed = True
        self._pool.terminate()
        self._pool.join()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def worker_pids(self) -> list[int]:
        """Process ids of the live worker processes (diagnostics / tests)."""
        processes = getattr(self._pool, "_pool", None) or []
        return [process.pid for process in processes]

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def accepts(self, function: Callable) -> bool:
        """True when ``function`` is a dispatchable method of a pool-resident op."""
        if self._closed:
            return False
        owner = getattr(function, "__self__", None)
        if owner is None or id(owner) not in self._op_index:
            return False
        return getattr(function, "__name__", "") in ("process", "process_batched", "compute_stats")

    def _dispatch(self, tasks: list[tuple[str, int, list[dict]]]) -> list[tuple[Any, float]]:
        if self._closed:
            raise RuntimeError("WorkerPool is closed")
        if not tasks:
            return []
        return self._pool.map(_worker.run_task, tasks)

    def _chunks(self, rows: Sequence[dict], chunk_size: int | None = None) -> list[list[dict]]:
        size = chunk_size or self.chunk_size or default_chunk_size(len(rows), self.num_workers)
        return chunk_rows(rows, size)

    def map_rows(
        self,
        function: Callable,
        rows: list[dict],
        batched: bool = False,
        batch_size: int = 1000,
    ) -> list[dict]:
        """Run a Mapper method (or ``compute_stats``) over rows via the pool.

        Chunks preserve row order; for batched mappers the chunk size equals
        ``batch_size`` so batch boundaries match the serial execution exactly.
        """
        owner = getattr(function, "__self__", None)
        index = self._op_index.get(id(owner))
        if index is None:
            raise ValueError(f"{function!r} is not a method of a pool-resident op")
        method = getattr(function, "__name__", "")
        if batched or method == "process_batched":
            kind, chunks = "map_batched", chunk_rows(rows, max(1, batch_size))
        elif method == "compute_stats":
            kind, chunks = "stats", self._chunks(rows)
        elif isinstance(owner, Mapper):
            kind, chunks = "map", self._chunks(rows)
        else:
            raise ValueError(f"cannot map {method!r} of {type(owner).__name__} over rows")
        merged: list[dict] = []
        for payload, _cpu in self._dispatch([(kind, index, chunk) for chunk in chunks]):
            merged.extend(payload)
        return merged

    def flag_rows(self, function: Callable, rows: list[dict]) -> list[bool]:
        """Evaluate a Filter's boolean ``process`` over rows via the pool."""
        owner = getattr(function, "__self__", None)
        index = self._op_index.get(id(owner))
        if index is None or not isinstance(owner, Filter):
            raise ValueError(f"{function!r} is not a method of a pool-resident Filter")
        flags: list[bool] = []
        for payload, _cpu in self._dispatch([("flags", index, chunk) for chunk in self._chunks(rows)]):
            flags.extend(payload)
        return flags

    def filter_rows(self, op: Filter, rows: list[dict]) -> tuple[list[dict], list[bool]]:
        """Run a Filter's stats + keep/drop decision over rows via the pool.

        Returns the stat-annotated rows and the parallel list of keep flags,
        mirroring the serial :meth:`repro.core.base_op.Filter.run` loop.
        """
        index = self._op_index.get(id(op))
        if index is None:
            raise ValueError(f"{op!r} is not resident in this pool")
        stat_rows: list[dict] = []
        keep_flags: list[bool] = []
        for payload, _cpu in self._dispatch([("filter", index, chunk) for chunk in self._chunks(rows)]):
            chunk_stats, chunk_flags = payload
            stat_rows.extend(chunk_stats)
            keep_flags.extend(chunk_flags)
        return stat_rows, keep_flags

    def run_sample_pipeline(
        self, partitions: list[list[dict]], chunk_size: int | None = None
    ) -> tuple[list[list[dict]], list[float]]:
        """Run the full worker op list over per-node partitions.

        Each partition (one simulated cluster node) is dispatched as several
        row chunks for load balancing; results are re-grouped per node in
        order.  Returns ``(surviving_rows_per_node, cpu_seconds_per_node)``
        where the CPU seconds are measured inside the workers and therefore
        reflect the genuine per-node cost even when the host has fewer cores
        than workers.
        """
        tasks: list[tuple[str, int, list[dict]]] = []
        owners: list[int] = []
        for node_id, partition in enumerate(partitions):
            size = chunk_size or self.chunk_size or default_chunk_size(len(partition), 1)
            for chunk in chunk_rows(partition, size):
                tasks.append(("pipeline", -1, chunk))
                owners.append(node_id)
        node_rows: list[list[dict]] = [[] for _ in partitions]
        node_cpu = [0.0] * len(partitions)
        for node_id, (payload, cpu) in zip(owners, self._dispatch(tasks)):
            node_rows[node_id].extend(payload)
            node_cpu[node_id] += cpu
        return node_rows, node_cpu


# ----------------------------------------------------------------------
# Process-wide shared pools
# ----------------------------------------------------------------------
_SHARED_POOLS: dict[tuple, WorkerPool] = {}


def _pool_key(num_workers: int, process_list: list, start_method: str) -> tuple:
    signature = json.dumps(process_list, sort_keys=True, default=repr)
    return (num_workers, start_method, signature)


def get_shared_pool(
    num_workers: int, process_list: list, start_method: str | None = None
) -> WorkerPool:
    """Return a live shared pool for ``(num_workers, process_list)``, creating it once.

    Repeated callers with the same recipe and worker count — e.g. every run of
    a scalability sweep, or the Ray-like and Beam-like runners on the same
    recipe — reuse the same worker processes instead of forking fresh ones.
    """
    method = resolve_start_method(start_method)
    key = _pool_key(num_workers, process_list, method)
    pool = _SHARED_POOLS.get(key)
    if pool is None or not pool.alive:
        pool = WorkerPool(
            num_workers, process_list=list(process_list), start_method=method
        )
        _SHARED_POOLS[key] = pool
    return pool


def shutdown_shared_pools() -> None:
    """Terminate every shared pool (also registered as an ``atexit`` hook)."""
    for pool in list(_SHARED_POOLS.values()):
        pool.close()
    _SHARED_POOLS.clear()


atexit.register(shutdown_shared_pools)
