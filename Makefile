# Test / benchmark entry points.
#
#   make smoke       tier-1 verification, exactly as ROADMAP.md specifies
#   make unit        unit tests only (tests/)
#   make benchmarks  paper figure/table reproductions only (benchmarks/)
#   make fig10       the Figure-10 scalability reproduction with its table
#   make bench-batch batched-engine throughput suite; refreshes BENCH_batch_engine.json
#   make bench-stream streaming-engine memory suite; refreshes BENCH_stream.json

PYTEST = PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m pytest

.PHONY: smoke test unit benchmarks fig10 bench-batch bench-stream

smoke:
	$(PYTEST) -x -q

test: smoke

unit:
	$(PYTEST) -x -q -m "not benchmark_suite" tests

benchmarks:
	$(PYTEST) -x -q -m benchmark_suite benchmarks

fig10:
	$(PYTEST) -x -q -s benchmarks/test_fig10_scalability.py

bench-batch:
	$(PYTEST) -x -q -s benchmarks/test_batch_throughput.py

bench-stream:
	$(PYTEST) -x -q -s benchmarks/test_stream_memory.py
