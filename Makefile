# Test / benchmark entry points.
#
#   make smoke       tier-1 verification, exactly as ROADMAP.md specifies
#   make unit        unit tests only (tests/)
#   make benchmarks  paper figure/table reproductions only (benchmarks/)
#   make fig10       the Figure-10 scalability reproduction with its table
#   make bench-batch batched-engine throughput suite; refreshes BENCH_batch_engine.json
#   make bench-stream streaming-engine memory suite; refreshes BENCH_stream.json
#   make docs        regenerate docs/ops_catalog.md from the operator registry
#   make docs-check  fail when the committed catalog is out of sync (CI)
#   make validate-recipes  schema-validate every built-in recipe (no execution)
#   make lint        statically check operator contracts (repro lint)
#   make dataflow    statically verify every built-in recipe's dataflow
#   make chaos       deterministic fault-injection suite (tests/test_chaos.py)
#   make serve-smoke end-to-end serving check: ephemeral-port server, fig8 job,
#                    warm-cache resubmission, export diff vs the CLI path
#   make check       docs-check + validate-recipes + lint + dataflow + unit + chaos
#                    + serve-smoke (the CI gate)

PYTEST = PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m pytest
REPRO = PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m repro

.PHONY: smoke test unit benchmarks fig10 bench-batch bench-stream docs docs-check validate-recipes lint dataflow chaos serve-smoke check

smoke:
	$(PYTEST) -x -q

test: smoke

unit:
	$(PYTEST) -x -q -m "not benchmark_suite" tests

benchmarks:
	$(PYTEST) -x -q -m benchmark_suite benchmarks

fig10:
	$(PYTEST) -x -q -s benchmarks/test_fig10_scalability.py

bench-batch:
	$(PYTEST) -x -q -s benchmarks/test_batch_throughput.py

bench-stream:
	$(PYTEST) -x -q -s benchmarks/test_stream_memory.py

docs:
	$(REPRO) docs-ops

docs-check:
	$(REPRO) docs-ops --check

validate-recipes:
	$(REPRO) validate-recipe --all

lint:
	$(REPRO) lint

dataflow:
	$(REPRO) dataflow --all

chaos:
	$(PYTEST) -x -q tests/test_chaos.py

serve-smoke:
	$(REPRO) serve-smoke

check: docs-check validate-recipes lint dataflow unit chaos serve-smoke
