"""Repository-level pytest configuration.

Makes the ``src`` layout importable without installation so ``pytest`` works
straight from a clean checkout (``pip install -e .`` remains the recommended
path and takes precedence when the package is installed).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
