#!/usr/bin/env python3
"""Train and apply the GPT-3-style quality classifier (the Sec. 5.2 tool).

Trains the English classifier on synthetic Wikipedia/Books positives versus
CommonCrawl negatives, evaluates precision/recall/F1 on a held-out split and
reports the CommonCrawl keeping ratio under both keeping rules (Table 4).

Run with::

    python examples/quality_classifier_demo.py
"""

from repro.core.sample import Fields
from repro.synth import common_crawl_like, wikipedia_like
from repro.tools.quality_classifier import train_gpt3_like_classifier


def main() -> None:
    classifier = train_gpt3_like_classifier(num_samples=120, seed=0)

    held_out_positive = [row[Fields.text] for row in wikipedia_like(num_samples=40, seed=901)]
    held_out_negative = [
        row[Fields.text]
        for row in common_crawl_like(num_samples=40, seed=902, quality=0.0, duplicate_ratio=0.0)
    ]
    result = classifier.evaluate(held_out_positive, held_out_negative)
    print(
        "held-out evaluation: "
        f"precision={result.precision:.3f} recall={result.recall:.3f} f1={result.f1:.3f}"
    )

    crawl = [row[Fields.text] for row in common_crawl_like(num_samples=300, seed=903)]
    for method in ("label", "pareto"):
        ratio = classifier.keeping_ratio(crawl, method=method)
        print(f"CommonCrawl keeping ratio @ {method}: {ratio:.2%}")

    # annotate a dataset with quality scores so selectors can use them
    annotated = classifier.annotate_dataset(common_crawl_like(num_samples=20, seed=904))
    first = annotated[0]
    print(f"example quality score: {first[Fields.stats]['quality_score']:.3f}")


if __name__ == "__main__":
    main()
