#!/usr/bin/env python3
"""Distributed processing with the Ray-like and Beam-like runners (Figure 10).

Runs the same recipe on a StackExchange-like corpus across an increasing
number of simulated nodes and prints, per back-end, the measured host
wall-clock and the simulated-cluster projection (one core per node): in the
projection the Ray-like runner shrinks with the node count while the
Beam-like runner stays nearly flat because of its single-node loading stage.
The measured column also shrinks when the host has enough physical cores.

Run with::

    python examples/distributed_processing.py
"""

from repro.distributed import ScalabilitySweep
from repro.recipes import get_recipe
from repro.synth import stackexchange_like


def main() -> None:
    corpus = stackexchange_like(num_samples=400, seed=11)
    recipe = get_recipe("pretrain-stackexchange-refine-en")

    sweep = ScalabilitySweep(process_list=recipe["process"], node_counts=[1, 2, 4])
    points = sweep.run(corpus, backends=("ray", "beam"))

    print(
        f"{'backend':<8} {'nodes':>5} {'wall time (s)':>14} {'cluster sim (s)':>16} "
        f"{'load time (s)':>14} {'kept':>6}"
    )
    for point in points:
        print(
            f"{point.backend:<8} {point.num_nodes:>5} {point.wall_time_s:>14.3f} "
            f"{point.simulated_time_s:>16.3f} {point.load_time_s:>14.3f} "
            f"{point.num_output_samples:>6}"
        )


if __name__ == "__main__":
    main()
