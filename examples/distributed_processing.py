#!/usr/bin/env python3
"""Distributed processing with the Ray-like and Beam-like runners (Figure 10).

Runs the same recipe on a StackExchange-like corpus across an increasing
number of simulated nodes and prints the wall-clock time per back-end: the
Ray-like runner shrinks with the node count while the Beam-like runner stays
nearly flat because of its single-node loading stage.

Run with::

    python examples/distributed_processing.py
"""

from repro.distributed import ScalabilitySweep
from repro.recipes import get_recipe
from repro.synth import stackexchange_like


def main() -> None:
    corpus = stackexchange_like(num_samples=400, seed=11)
    recipe = get_recipe("pretrain-stackexchange-refine-en")

    sweep = ScalabilitySweep(process_list=recipe["process"], node_counts=[1, 2, 4])
    points = sweep.run(corpus, backends=("ray", "beam"))

    print(f"{'backend':<8} {'nodes':>5} {'wall time (s)':>14} {'load time (s)':>14} {'kept':>6}")
    for point in points:
        print(
            f"{point.backend:<8} {point.num_nodes:>5} {point.wall_time_s:>14.3f} "
            f"{point.load_time_s:>14.3f} {point.num_output_samples:>6}"
        )


if __name__ == "__main__":
    main()
