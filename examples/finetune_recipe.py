#!/usr/bin/env python3
"""Fine-tuning recipe construction and pairwise judging (the Table 3 workflow).

Builds a pool of tagged instruction datasets, derives two equal-size training
sets — random sampling versus the Data-Juicer recipe (tag filtering +
refinement + diversity-aware sampling) — fine-tunes a proxy model on each and
compares them with the pairwise judge.

Run with::

    python examples/finetune_recipe.py
"""

from repro.recipes import (
    build_finetune_pool,
    data_juicer_finetune_dataset,
    random_finetune_dataset,
)
from repro.tools.evaluator import PairwiseJudge, ProxyTrainer


def main() -> None:
    pool = build_finetune_pool(num_datasets=8, samples_per_dataset=80, seed=3)
    total = sum(len(dataset) for dataset in pool.values())
    print(f"fine-tuning pool: {len(pool)} datasets, {total} samples")

    num_samples = 200
    random_data = random_finetune_dataset(pool, num_samples=num_samples, seed=3)
    juicer_data = data_juicer_finetune_dataset(pool, num_samples=num_samples, seed=3)
    print(f"random subset: {len(random_data)} samples; Data-Juicer subset: {len(juicer_data)} samples")

    trainer = ProxyTrainer()
    random_model = trainer.train(random_data, name="Random (CFT, EN)")
    juicer_model = trainer.train(juicer_data, name="Data-Juicer (CFT, EN)")

    judge = PairwiseJudge(num_prompts=160)
    result = judge.compare(juicer_model, random_model)
    print(
        f"\npairwise judging over {result.num_prompts} prompts:\n"
        f"  {result.model_a}: {result.wins_a} wins\n"
        f"  {result.model_b}: {result.wins_b} wins\n"
        f"  ties: {result.ties}"
    )


if __name__ == "__main__":
    main()
