#!/usr/bin/env python3
"""The full Data-in-the-LLMdev-Loop feedback showcase (Figure 5 of the paper).

Steps: (1) analyze the original dataset, (2) refine the recipe via HPO on one
filter threshold, (3) process with the refined recipe, (4) analyze again,
(5) train proxy models on the original and refined data, (6) collate results
on the leaderboard against reference models.

Run with::

    python examples/feedback_loop.py
"""

from repro import Analyzer
from repro.api import Pipeline
from repro.recipes import get_recipe
from repro.synth import common_crawl_like
from repro.tools.evaluator import Evaluator, Leaderboard, ProxyTrainer, ReferenceModelRegistry
from repro.tools.hpo import SearchSpace, TPEOptimizer, Uniform, make_op_threshold_objective
from repro.tools.quality_classifier import train_gpt3_like_classifier


def main() -> None:
    original = common_crawl_like(num_samples=150, seed=21, quality=0.45)

    # (1) analyze the original dataset
    analyzer = Analyzer()
    original_probe = analyzer.analyze(original)
    print("original data probe:\n" + original_probe.render() + "\n")

    # (2) refine the recipe: tune the word-repetition threshold with HPO
    classifier = train_gpt3_like_classifier(num_samples=60, num_iterations=150)
    objective = make_op_threshold_objective(
        original, classifier, op_name="word_repetition_filter", param_name="max_ratio"
    )
    optimizer = TPEOptimizer(SearchSpace({"max_ratio": Uniform(0.05, 0.8)}), seed=1)
    best = optimizer.optimize(objective, num_trials=12)
    print(f"HPO-selected word_repetition_filter.max_ratio = {best.params['max_ratio']:.3f}\n")

    recipe = get_recipe("pretrain-common-crawl-refine-en")
    for entry in recipe["process"]:
        if isinstance(entry, dict) and "word_repetition_filter" in entry:
            entry["word_repetition_filter"]["max_ratio"] = round(best.params["max_ratio"], 3)

    # (3) process with the refined recipe (recipes compile to pipelines; the
    # refined parameters are schema-validated before anything runs)
    refined = Pipeline.from_recipe(recipe).collect(original)
    print(f"refined dataset: {len(refined)} of {len(original)} samples kept\n")

    # (4) analyze the refined dataset
    refined_probe = analyzer.analyze(refined)
    print("refined data probe:\n" + refined_probe.render() + "\n")

    # (5) train proxy models and (6) collate on the leaderboard
    trainer = ProxyTrainer()
    evaluator = Evaluator()
    registry = ReferenceModelRegistry()
    leaderboard = Leaderboard()
    for name, dataset in (("original-data", original), ("refined-data", refined)):
        report = evaluator.evaluate(trainer.train(dataset, name=name))
        leaderboard.add(report)
        registry.register_report(report, training_data=name, num_tokens=len(dataset))
    print(leaderboard.render())


if __name__ == "__main__":
    main()
