#!/usr/bin/env python3
"""Quickstart: clean a small noisy web corpus with a zero-code data recipe.

This example mirrors the paper's "novice user" workflow: take a built-in data
recipe, point it at a dataset, run the executor and look at the tracer /
analyzer output — no custom code required.

Run with::

    python examples/quickstart.py
"""

from repro import Analyzer, Executor
from repro.recipes import get_recipe
from repro.synth import common_crawl_like


def main() -> None:
    # 1. a noisy CommonCrawl-like corpus (stands in for raw web data)
    raw = common_crawl_like(num_samples=120, seed=7, quality=0.4)
    print(f"loaded {len(raw)} raw documents")

    # 2. a built-in refinement recipe, with tracing switched on
    recipe = get_recipe("pretrain-common-crawl-refine-en")
    recipe["open_tracer"] = True
    executor = Executor(recipe)

    # 3. run the pipeline
    refined = executor.run(raw)
    print(f"kept {len(refined)} documents after refinement")
    print("\nper-operator effect (tracer):")
    for step in executor.last_report["trace"]:
        print(
            f"  {step['op_name']:<55} {step['input_size']:>5} -> {step['output_size']:>5}"
        )

    # 4. probe the refined data with the analyzer
    probe = Analyzer().analyze(refined)
    print("\n" + probe.render())

    # 5. render one histogram as a quick visual check
    if "text_len" in probe.histograms:
        print("\n" + probe.histograms["text_len"].render())


if __name__ == "__main__":
    main()
