#!/usr/bin/env python3
"""Quickstart: clean a small noisy web corpus with the fluent Pipeline API.

Two workflows in one example, mirroring the paper's user spectrum:

* the *novice* path — take a built-in data recipe and run it unchanged
  (``Pipeline.from_recipe``);
* the *power-user* path — compose the same operators fluently, with
  construction-time parameter validation and planner-driven execution.

Run with::

    python examples/quickstart.py
"""

from repro import Analyzer
from repro.api import Pipeline
from repro.synth import common_crawl_like


def main() -> None:
    # 1. a noisy CommonCrawl-like corpus (stands in for raw web data)
    raw = common_crawl_like(num_samples=120, seed=7, quality=0.4)
    print(f"loaded {len(raw)} raw documents")

    # 2a. novice path: a built-in recipe becomes a pipeline, unchanged
    recipe_pipeline = Pipeline.from_recipe("pretrain-common-crawl-refine-en")
    print(f"built-in recipe as a pipeline: {recipe_pipeline}")

    # 2b. power-user path: compose the chain fluently; every step is
    #     validated against the typed op schemas before anything runs.
    #     use_cache lets the later collect() replay this run's per-op results
    #     instead of recomputing them.
    pipeline = (
        Pipeline.new(open_tracer=True, use_cache=True)
        .map("clean_html_mapper")
        .map("whitespace_normalization_mapper")
        .filter("language_id_score_filter", lang="en", min_score=0.2)
        .filter("text_length_filter", min_len=100)
        .dedup("document_deduplicator", lowercase=True)
    )
    print("\nlogical plan:")
    print(pipeline.describe())

    # 3. run it: the report carries the planner decision and per-op trace
    report = pipeline.run(dataset=raw)
    print(f"\nkept {report['num_output_samples']} documents after refinement")
    print("\nper-operator effect (tracer):")
    for step in report["trace"]:
        print(
            f"  {step['op_name']:<55} {step['input_size']:>5} -> {step['output_size']:>5}"
        )

    # 4. the same pipeline round-trips losslessly through a recipe dict
    rebuilt = Pipeline.from_recipe(pipeline.to_recipe())
    assert rebuilt.op_fingerprint_chain() == pipeline.op_fingerprint_chain()
    print("\nrecipe round-trip preserves the op fingerprint chain")

    # 5. probe the refined data with the analyzer (a pure cache replay of the
    #    run above — same fingerprints, so no operator executes again)
    refined = pipeline.collect(dataset=raw)
    probe = Analyzer().analyze(refined)
    print("\n" + probe.render())

    # 6. render one histogram as a quick visual check
    if "text_len" in probe.histograms:
        print("\n" + probe.histograms["text_len"].render())


if __name__ == "__main__":
    main()
