#!/usr/bin/env python3
"""Pre-training data refinement and proxy evaluation (the Figure 7 workflow).

Builds the RedPajama-like, RedPajama+Pile-like and Data-Juicer-refined
mixtures, trains a proxy model on each at increasing token budgets and prints
the average benchmark score per budget — the same curve the paper reports for
its 1.3B LLaMA runs, reproduced in miniature.

Run with::

    python examples/pretrain_refinement.py
"""

from repro.recipes import build_pretrain_mixture
from repro.tools.evaluator import Evaluator, Leaderboard, ProxyTrainer


def main() -> None:
    corpora = {
        "RedPajama": build_pretrain_mixture(samples_per_component=40, include_pile_like=False),
        "RedPajama+Pile": build_pretrain_mixture(samples_per_component=40, include_pile_like=True),
        "RedPajama+Pile (Data-Juicer)": build_pretrain_mixture(
            samples_per_component=40, include_pile_like=True, refined=True
        ),
    }
    token_budgets = [5_000, 10_000, 20_000]

    trainer = ProxyTrainer()
    evaluator = Evaluator()
    leaderboard = Leaderboard()

    print(f"{'corpus':<32} " + " ".join(f"{budget:>9}" for budget in token_budgets))
    for name, corpus in corpora.items():
        scores = []
        for budget in token_budgets:
            model = trainer.train(corpus, name=f"{name}@{budget}", num_tokens=budget)
            report = evaluator.evaluate(model)
            scores.append(report.average_score)
        leaderboard.add(evaluator.evaluate(trainer.train(corpus, name=name)))
        print(f"{name:<32} " + " ".join(f"{score:>9.2f}" for score in scores))

    print("\n" + leaderboard.render())


if __name__ == "__main__":
    main()
